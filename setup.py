"""Setuptools shim so the package installs in offline environments.

``pip install -e .`` uses PEP 660 editable wheels, which require the ``wheel``
package; environments without network access (and without ``wheel``) can fall
back to ``python setup.py develop``.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
