"""Unit tests for the protocol substrates: crypto, secret sharing, circuits, OT."""

from __future__ import annotations

import random

import pytest

from repro.core.locations import Census
from repro.protocols import circuits, crypto
from repro.protocols.ot import ot2
from repro.protocols.secretshare import (
    make_boolean_shares,
    make_modular_shares,
    reconstruct_boolean,
    reconstruct_modular,
    xor_all,
)
from repro.runtime.central import CentralOp
from repro.runtime.runner import run_choreography


class TestCrypto:
    def test_party_rng_is_deterministic_and_independent(self):
        assert crypto.party_rng(1, "alice").random() == crypto.party_rng(1, "alice").random()
        assert crypto.party_rng(1, "alice").random() != crypto.party_rng(1, "bob").random()
        assert (
            crypto.party_rng(1, "alice", "ctx1").random()
            != crypto.party_rng(1, "alice", "ctx2").random()
        )

    @pytest.mark.parametrize("prime", [2, 3, 5, 97, 65537, 2_147_483_647])
    def test_known_primes(self, prime):
        assert crypto.is_probable_prime(prime)

    @pytest.mark.parametrize("composite", [0, 1, 4, 100, 65536, 561, 41041])
    def test_known_composites_including_carmichael(self, composite):
        assert not crypto.is_probable_prime(composite)

    def test_generate_prime_has_requested_size(self):
        prime = crypto.generate_prime(64, random.Random(3))
        assert prime.bit_length() == 64
        assert crypto.is_probable_prime(prime)

    def test_generate_prime_rejects_tiny_sizes(self):
        with pytest.raises(ValueError):
            crypto.generate_prime(4, random.Random(0))

    def test_rsa_roundtrip_integers(self):
        keys = crypto.generate_rsa_keypair(random.Random(1), bits=128)
        for message in [0, 1, 42, 2**40 + 7]:
            assert keys.decrypt(keys.public.encrypt(message)) == message

    def test_rsa_rejects_out_of_range(self):
        keys = crypto.generate_rsa_keypair(random.Random(1), bits=128)
        with pytest.raises(ValueError):
            keys.public.encrypt(keys.public.modulus)
        with pytest.raises(ValueError):
            keys.decrypt(-1)

    def test_bit_encryption_is_randomised(self):
        keys = crypto.generate_rsa_keypair(random.Random(1), bits=128)
        rng = random.Random(2)
        ciphertexts = {crypto.encrypt_bit(keys.public, True, rng) for _ in range(5)}
        assert len(ciphertexts) == 5
        assert all(crypto.decrypt_bit(keys, ct) for ct in ciphertexts)

    def test_random_public_key_cannot_decrypt(self):
        rng = random.Random(5)
        real = crypto.generate_rsa_keypair(rng, bits=128)
        fake_public = crypto.random_public_key(rng, bits=128)
        ciphertext = crypto.encrypt_bit(fake_public, True, rng)
        # decrypting with an unrelated private key gives garbage far more often
        # than not; at minimum it must not be a reliable channel
        assert fake_public.modulus != real.public.modulus

    def test_commitments(self):
        digest = crypto.commitment(123, 456)
        assert crypto.verify_commitment(digest, 123, 456)
        assert not crypto.verify_commitment(digest, 124, 456)


class TestSecretSharing:
    def test_boolean_roundtrip(self):
        parties = ["a", "b", "c"]
        for secret in (True, False):
            shares = make_boolean_shares(secret, parties, random.Random(1))
            assert reconstruct_boolean(shares) == secret

    def test_single_party_share_is_the_secret(self):
        assert make_boolean_shares(True, ["only"], random.Random(0)) == {"only": True}

    def test_modular_roundtrip(self):
        shares = make_modular_shares(1234, ["a", "b", "c"], 99991, random.Random(2))
        assert reconstruct_modular(shares, 99991) == 1234

    def test_empty_party_list_rejected(self):
        with pytest.raises(ValueError):
            make_boolean_shares(True, [], random.Random(0))
        with pytest.raises(ValueError):
            make_modular_shares(1, [], 7, random.Random(0))
        with pytest.raises(ValueError):
            reconstruct_boolean({})

    def test_bad_modulus_rejected(self):
        with pytest.raises(ValueError):
            make_modular_shares(1, ["a"], 1, random.Random(0))

    def test_xor_all(self):
        assert xor_all([]) is False
        assert xor_all([True, True, False]) is False
        assert xor_all([True, False, False]) is True


class TestCircuits:
    def inputs(self):
        return {"p1": {"x": True}, "p2": {"x": False}, "p3": {"x": True}}

    def test_operators_build_gates(self):
        a = circuits.InputWire("p1", "x")
        b = circuits.InputWire("p2", "x")
        assert isinstance(a & b, circuits.AndGate)
        assert isinstance(a ^ b, circuits.XorGate)
        assert circuits.evaluate_plain(a | b, self.inputs()) is True
        assert circuits.evaluate_plain(~a, self.inputs()) is False

    def test_eq_gate(self):
        a = circuits.InputWire("p1", "x")
        b = circuits.InputWire("p3", "x")
        assert circuits.evaluate_plain(circuits.eq_gate(a, b), self.inputs()) is True

    def test_adders(self):
        a_bits = [circuits.LitWire(bool(int(b))) for b in "101"]  # 5 little-endian -> 1,0,1
        b_bits = [circuits.LitWire(bool(int(b))) for b in "110"]  # 3 little-endian -> 1,1,0
        out = circuits.ripple_adder(a_bits, b_bits)
        value = sum(
            (1 << i) * int(circuits.evaluate_plain(bit, {})) for i, bit in enumerate(out)
        )
        assert value == 5 + 3

    def test_tree_generators(self):
        parties = ["p1", "p2", "p3", "p4", "p5"]
        xor_c = circuits.xor_tree(parties)
        and_c = circuits.and_tree(parties)
        inputs = {p: {"x": True} for p in parties}
        assert circuits.evaluate_plain(xor_c, inputs) == (len(parties) % 2 == 1)
        assert circuits.evaluate_plain(and_c, inputs) is True
        assert circuits.count_gates(xor_c)["xor"] == len(parties) - 1

    def test_alternating_tree_mentions_every_party(self):
        parties = ["p1", "p2", "p3"]
        circuit = circuits.alternating_tree(parties, depth=3)
        assert set(circuits.input_names(circuit)) == set(parties)

    def test_missing_input_is_a_clear_error(self):
        circuit = circuits.InputWire("p1", "x")
        with pytest.raises(KeyError, match="p1"):
            circuits.evaluate_plain(circuit, {"p1": {}})

    def test_balanced_tree_rejects_empty(self):
        with pytest.raises(ValueError):
            circuits.xor_tree([])

    def test_count_and_depth(self):
        circuit = circuits.majority3(
            circuits.InputWire("p1", "x"),
            circuits.InputWire("p2", "x"),
            circuits.InputWire("p3", "x"),
        )
        counts = circuits.count_gates(circuit)
        assert counts == {"input": 6, "literal": 0, "and": 3, "xor": 2}
        assert circuits.circuit_depth(circuit) == 3


class TestObliviousTransfer:
    CENSUS = ["sender", "receiver", "other"]

    @pytest.mark.parametrize("b0", [False, True])
    @pytest.mark.parametrize("b1", [False, True])
    @pytest.mark.parametrize("select", [False, True])
    def test_receiver_learns_exactly_the_selected_bit(self, b0, b1, select):
        def chor(op):
            pair = op.locally("sender", lambda _un: (b0, b1))
            choice = op.locally("receiver", lambda _un: select)
            result = op.conclave_to(
                ["sender", "receiver"],
                ["receiver"],
                lambda sub: ot2(sub, "sender", "receiver", pair, choice, seed=9, rsa_bits=128),
            )
            return result

        op = CentralOp(self.CENSUS)
        outcome = chor(op)
        assert outcome.peek() == (b1 if select else b0)

    def test_projected_execution_matches_and_excludes_third_party(self):
        def chor(op):
            pair = op.locally("sender", lambda _un: (False, True))
            choice = op.locally("receiver", lambda _un: True)
            result = op.conclave_to(
                ["sender", "receiver"],
                ["receiver"],
                lambda sub: ot2(sub, "sender", "receiver", pair, choice, seed=3, rsa_bits=128),
            )
            return result

        outcome = run_choreography(chor, self.CENSUS)
        assert outcome.value_at("receiver") is True
        assert outcome.stats.messages_involving("other") == 0
        # OT is two messages: keys over, ciphertexts back
        assert outcome.stats.total_messages == 2
