"""The storage subsystem: WAL framing and repair, snapshots, durable stores.

Everything here runs against real files in pytest's ``tmp_path`` — the
torn-tail and corruption tests damage the bytes on disk exactly the way a
crash or bit-rot would, then check that reopening recovers (or refuses)
correctly.
"""

import os

import pytest

from repro.storage import (
    Durability,
    DurableState,
    SnapshotStore,
    WalCorruption,
    WriteAheadLog,
    apply_catchup,
    apply_op,
    delta_since,
    high_water_of,
    promotion_of,
)
from repro.storage import snapshot as snapshot_mod
from repro.storage import wal as wal_mod


# -- WriteAheadLog --------------------------------------------------------------------


class TestWriteAheadLog:
    def test_append_and_read_back(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal.bin")
        assert log.append(("put", "a", "1")) == 1
        assert log.append(("del", "a")) == 2
        assert log.append(("clear",)) == 3
        assert list(log.records()) == [
            (1, ("put", "a", "1")), (2, ("del", "a")), (3, ("clear",)),
        ]
        assert list(log.records(since=2)) == [(3, ("clear",))]
        log.close()

    def test_reopen_restores_counters(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal.bin") as log:
            for i in range(5):
                log.append(("put", f"k{i}", str(i)))
        reopened = WriteAheadLog(tmp_path / "wal.bin")
        assert reopened.last_seq == 5
        assert reopened.record_count == 5
        assert reopened.append(("put", "next", "x")) == 6
        reopened.close()

    def test_explicit_seq_jump_and_monotonicity(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal.bin")
        log.append(("put", "a", "1"))
        assert log.append(("seal",), seq=10) == 10
        assert log.append(("put", "b", "2")) == 11
        with pytest.raises(ValueError, match="not after"):
            log.append(("put", "c", "3"), seq=5)
        log.close()

    @pytest.mark.parametrize("chop", [1, 3, 5])
    def test_torn_tail_is_truncated(self, tmp_path, chop):
        path = tmp_path / "wal.bin"
        with WriteAheadLog(path) as log:
            log.append(("put", "a", "1"))
            log.append(("put", "b", "longer-value-to-chop"))
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - chop)
        reopened = WriteAheadLog(path)
        assert reopened.record_count == 1
        assert list(reopened.records()) == [(1, ("put", "a", "1"))]
        # The torn bytes are gone from disk; appending continues cleanly.
        assert reopened.append(("put", "c", "3")) == 2
        reopened.close()
        final = WriteAheadLog(path)
        assert list(final.records()) == [(1, ("put", "a", "1")), (2, ("put", "c", "3"))]
        final.close()

    def test_tail_checksum_damage_is_truncated(self, tmp_path):
        path = tmp_path / "wal.bin"
        with WriteAheadLog(path) as log:
            log.append(("put", "a", "1"))
            log.append(("put", "b", "2"))
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip a payload byte of the last record
        path.write_bytes(bytes(data))
        reopened = WriteAheadLog(path)
        assert list(reopened.records()) == [(1, ("put", "a", "1"))]
        reopened.close()

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "wal.bin"
        with WriteAheadLog(path) as log:
            first_end = None
            log.append(("put", "a", "1"))
            log.sync()
            first_end = os.path.getsize(path)
            log.append(("put", "b", "2"))
        data = bytearray(path.read_bytes())
        data[first_end - 1] ^= 0xFF  # damage the FIRST record, intact data follows
        path.write_bytes(bytes(data))
        with pytest.raises(WalCorruption):
            WriteAheadLog(path)

    def test_bad_magic_refused(self, tmp_path):
        path = tmp_path / "wal.bin"
        path.write_bytes(b"NOTAWAL!" + b"\x00" * 16)
        with pytest.raises(WalCorruption, match="magic"):
            WriteAheadLog(path)

    def test_truncated_magic_restarts_fresh(self, tmp_path):
        path = tmp_path / "wal.bin"
        path.write_bytes(wal_mod.MAGIC[:4])  # crash while writing the header
        log = WriteAheadLog(path)
        assert log.record_count == 0
        assert log.append(("put", "a", "1")) == 1
        log.close()

    def test_fsync_policy_validation(self, tmp_path):
        for policy in ("always", "batch", "never"):
            WriteAheadLog(tmp_path / f"{policy}.bin", fsync=policy).close()
        with pytest.raises(ValueError, match="fsync policy"):
            WriteAheadLog(tmp_path / "bad.bin", fsync="sometimes")

    def test_reset_keeps_sequence_numbers(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal.bin")
        for i in range(4):
            log.append(("put", f"k{i}", str(i)))
        log.reset(log.last_seq)
        assert log.record_count == 0
        assert list(log.records()) == []
        assert log.append(("put", "later", "x")) == 5
        log.close()

    def test_append_after_close_raises(self, tmp_path):
        log = WriteAheadLog(tmp_path / "wal.bin")
        log.close()
        log.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            log.append(("put", "a", "1"))


# -- SnapshotStore --------------------------------------------------------------------


class TestSnapshotStore:
    def test_roundtrip_and_overwrite(self, tmp_path):
        store = SnapshotStore(tmp_path)
        assert store.load() == (0, {})
        store.save(7, {"a": "1", "b": "2"})
        assert store.load() == (7, {"a": "1", "b": "2"})
        store.save(12, {"c": "3"})
        assert store.load() == (12, {"c": "3"})

    def test_no_temp_file_left_behind(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(1, {"a": "1"})
        assert not os.path.exists(store.path + ".tmp")
        assert os.path.exists(store.path)

    def test_corrupt_snapshot_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(3, {"a": "1"})
        data = bytearray(open(store.path, "rb").read())
        data[-1] ^= 0xFF
        open(store.path, "wb").write(bytes(data))
        with pytest.raises(WalCorruption, match="checksum"):
            store.load()

    def test_bad_magic_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        open(store.path, "wb").write(b"garbage-here")
        with pytest.raises(WalCorruption, match="magic"):
            store.load()

    def test_truncated_payload_raises(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(3, {"a": "1"})
        data = open(store.path, "rb").read()
        open(store.path, "wb").write(data[:-2])
        with pytest.raises(WalCorruption, match="truncated"):
            store.load()

    def test_magic_is_distinct_from_wal(self):
        assert snapshot_mod.MAGIC != wal_mod.MAGIC


# -- DurableState ---------------------------------------------------------------------


class TestDurableState:
    def test_reopen_equals_original(self, tmp_path):
        state = DurableState(tmp_path / "r0")
        state["a"] = "1"
        state["b"] = "2"
        del state["a"]
        state.update({"c": "3", "d": "4"})
        state.pop("d")
        state.setdefault("e", "5")
        state.setdefault("e", "IGNORED")
        expected = dict(state)
        state.close()
        reopened = DurableState(tmp_path / "r0")
        assert dict(reopened) == expected == {"b": "2", "c": "3", "e": "5"}
        assert reopened.replayed_records == 7
        assert reopened.high_water == 7
        reopened.close()

    def test_missing_key_paths_do_not_log(self, tmp_path):
        state = DurableState(tmp_path / "r0")
        with pytest.raises(KeyError):
            del state["absent"]
        with pytest.raises(KeyError):
            state.pop("absent")
        assert state.pop("absent", "dflt") == "dflt"
        with pytest.raises(KeyError):
            state.popitem()
        assert state.high_water == 0  # nothing was written to the WAL
        state.close()

    def test_clear_and_popitem_replay(self, tmp_path):
        state = DurableState(tmp_path / "r0")
        state.update({"a": "1", "b": "2", "c": "3"})
        state.clear()
        state["x"] = "9"
        state["y"] = "8"
        assert state.popitem() == ("y", "8")
        state.close()
        reopened = DurableState(tmp_path / "r0")
        assert dict(reopened) == {"x": "9"}
        reopened.close()

    def test_snapshot_compaction_bounds_replay(self, tmp_path):
        state = DurableState(tmp_path / "r0", snapshot_every=10)
        for i in range(35):
            state[f"k{i}"] = str(i)
        assert state.wal.record_count < 10  # compaction ran
        expected = dict(state)
        state.close()
        reopened = DurableState(tmp_path / "r0", snapshot_every=10)
        assert dict(reopened) == expected
        assert reopened.replayed_records < 10  # replay is the suffix only
        assert reopened.high_water == 35
        reopened.close()

    def test_torn_tail_loses_only_unsynced_suffix(self, tmp_path):
        state = DurableState(tmp_path / "r0")
        state["kept"] = "yes"
        state["torn"] = "this-record-gets-chopped"
        state.close()
        wal_path = tmp_path / "r0" / "wal.bin"
        size = os.path.getsize(wal_path)
        with open(wal_path, "r+b") as handle:
            handle.truncate(size - 4)
        reopened = DurableState(tmp_path / "r0")
        assert dict(reopened) == {"kept": "yes"}
        assert reopened.high_water == 1
        reopened.close()

    def test_ops_since_and_compaction_fallback(self, tmp_path):
        state = DurableState(tmp_path / "r0", snapshot_every=1000)
        state["a"] = "1"
        mark = state.high_water
        state["b"] = "2"
        state["c"] = "3"
        delta = state.ops_since(mark)
        assert delta == [(2, ("put", "b", "2")), (3, ("put", "c", "3"))]
        state.snapshot()  # compacts the whole log
        assert state.ops_since(mark) is None  # range folded into the snapshot
        assert state.ops_since(state.high_water) == []
        state.close()

    def test_apply_record_is_idempotent(self, tmp_path):
        state = DurableState(tmp_path / "r0")
        state["a"] = "1"
        state.apply_record(1, ("put", "a", "SKIPPED"))  # at high-water: ignored
        assert state["a"] == "1"
        state.apply_record(5, ("put", "b", "2"))
        assert state.high_water == 5 and state["b"] == "2"
        state.seal(9)
        assert state.high_water == 9
        state.seal(4)  # behind: no-op
        assert state.high_water == 9
        state.close()

    def test_install_replaces_store_atomically(self, tmp_path):
        state = DurableState(tmp_path / "r0")
        state["old"] = "gone"
        state.install({"new": "here"}, 42)
        assert dict(state) == {"new": "here"}
        assert state.high_water == 42
        state.close()
        reopened = DurableState(tmp_path / "r0")
        assert dict(reopened) == {"new": "here"}
        assert reopened.high_water == 42
        assert reopened.replayed_records == 0  # install is a snapshot, not a log
        reopened.close()


# -- the catch-up bridge --------------------------------------------------------------


class TestCatchupBridge:
    def test_plain_dict_degrades_to_full(self):
        plain = {"a": "1"}
        assert high_water_of(plain) == 0
        assert delta_since(plain, 0) is None
        applied = apply_catchup(plain, "full", {"b": "2"}, 10)
        assert plain == {"b": "2"} and applied == 1

    def test_delta_between_durable_stores(self, tmp_path):
        primary = DurableState(tmp_path / "p")
        follower = DurableState(tmp_path / "f")
        primary.update({"a": "1", "b": "2"})
        apply_catchup(follower, "full", dict(primary), primary.high_water)
        assert follower.high_water == primary.high_water
        primary["c"] = "3"
        del primary["a"]
        delta = delta_since(primary, follower.high_water)
        applied = apply_catchup(follower, "delta", delta, primary.high_water)
        assert applied == 2
        assert dict(follower) == dict(primary)
        assert follower.high_water == primary.high_water
        primary.close()
        follower.close()

    def test_apply_op_shapes(self):
        store = {}
        apply_op(store, ("put", "a", "1"))
        apply_op(store, ("seal",))
        assert store == {"a": "1"}
        apply_op(store, ("del", "a"))
        apply_op(store, ("del", "a"))  # deleting a missing key is tolerated
        apply_op(store, ("put", "b", "2"))
        apply_op(store, ("clear",))
        assert store == {}
        with pytest.raises(ValueError, match="unknown"):
            apply_op(store, ("frobnicate",))

    def test_unknown_catchup_mode_raises(self):
        with pytest.raises(ValueError, match="mode"):
            apply_catchup({}, "partial", [], 0)


# -- promotion records ----------------------------------------------------------------


class TestPromotionRecords:
    def test_log_promotion_survives_reopen(self, tmp_path):
        state = DurableState(tmp_path / "r0")
        assert promotion_of(state) == (0, None)
        state["k"] = "v"
        state.log_promotion(2, "shard0.r1")
        assert (state.shard_epoch, state.promoted_head) == (2, "shard0.r1")
        state.close()
        reopened = DurableState(tmp_path / "r0")
        assert promotion_of(reopened) == (2, "shard0.r1")
        assert dict(reopened) == {"k": "v"}
        reopened.close()

    def test_stale_promotion_is_a_noop(self, tmp_path):
        state = DurableState(tmp_path / "r0")
        state.log_promotion(3, "shard0.r2")
        before = state.wal.record_count
        state.log_promotion(3, "shard0.r1")  # equal epoch: fenced out
        state.log_promotion(1, "shard0.r0")  # lower epoch: fenced out
        assert state.wal.record_count == before  # nothing was written
        assert promotion_of(state) == (3, "shard0.r2")
        state.close()
        reopened = DurableState(tmp_path / "r0")
        assert promotion_of(reopened) == (3, "shard0.r2")
        reopened.close()

    def test_epoch_survives_snapshot_compaction(self, tmp_path):
        # Compaction rewrites the WAL from the snapshot; the promotion
        # record must ride along in the snapshot metadata or a cold
        # restart would forget who the head is.
        state = DurableState(tmp_path / "r0", snapshot_every=10)
        state.log_promotion(1, "shard0.r1")
        for i in range(35):
            state[f"k{i}"] = str(i)
        assert state.wal.record_count < 10  # compaction ran past the record
        state.close()
        reopened = DurableState(tmp_path / "r0", snapshot_every=10)
        assert promotion_of(reopened) == (1, "shard0.r1")
        reopened.close()

    def test_plain_dict_has_no_promotion(self):
        assert promotion_of({"a": "1"}) == (0, None)

    def test_snapshot_meta_roundtrip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save(7, {"a": "1"}, meta={"epoch": 2, "head": "shard0.r1"})
        assert store.load_with_meta() == (
            7,
            {"a": "1"},
            {"epoch": 2, "head": "shard0.r1"},
        )
        assert store.load() == (7, {"a": "1"})  # legacy surface unchanged
        store.save(9, {"b": "2"})  # meta-less save drops the metadata
        assert store.load_with_meta() == (9, {"b": "2"}, {})


# -- Durability configuration ---------------------------------------------------------


class TestDurability:
    def test_layout_and_open(self, tmp_path):
        config = Durability(root=str(tmp_path), fsync="never", snapshot_every=8)
        assert config.state_dir("shard0", "shard0.r1") == str(
            tmp_path / "shard0" / "shard0.r1"
        )
        state = config.open_state("shard0", "shard0.r1")
        state["k"] = "v"
        state.close()
        reopened = config.open_state("shard0", "shard0.r1")
        assert dict(reopened) == {"k": "v"}
        reopened.close()

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            Durability(root=str(tmp_path), fsync="bogus")
        with pytest.raises(ValueError, match="snapshot_every"):
            Durability(root=str(tmp_path), snapshot_every=0)
