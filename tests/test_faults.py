"""Chaos suite, part 1: the deterministic fault-injection subsystem.

Every test here asserts one of the three promises ``repro.faults`` makes:

1. **Determinism** — identical seeds reproduce identical injected schedules
   (and identical :class:`ChannelStats`), on fresh transports, every time.
2. **Invariant preservation** — injected chaos never breaks the guarantees
   the transports owe the choreographies: per-pair FIFO survives reordering,
   held frames are released before any blocking receive (no injected
   deadlock), and message accounting stays exact across injected retries.
3. **Loud failure** — a crashed location fails its instance with a typed,
   diagnosable error (:class:`CrashFault` at the crash site,
   :class:`ChoreoTimeout` at the peers it strands) and the engine's Futures
   always resolve; nothing hangs.

``CHAOS_SEED`` (comma-separated ints) widens the seed sweep; the CI ``chaos``
job runs three fixed seeds.  See ``docs/testing.md`` for the conventions.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import ChoreoEngine, choreography
from repro.core.errors import ChoreographyRuntimeError, ChoreoTimeout, TransportError
from repro.faults import CrashFault, FaultPlan, FaultyEndpoint
from repro.runtime.engine import _TeeStats
from repro.runtime.simulated import SimulatedNetworkTransport
from repro.runtime.stats import ChannelStats
from repro.runtime.tcp import TCPTransport

#: Seeds the schedule-determinism tests sweep; the CI chaos job overrides
#: this through the environment to cover three fixed seeds per backend.
CHAOS_SEEDS = [int(raw) for raw in os.environ.get("CHAOS_SEED", "7").split(",")]


@choreography(census=["a", "b"])
def echo(op, token):
    """a → b → a round trip; the minimal two-message workload."""
    located = op.locally("a", lambda _un: token)
    at_b = op.comm("a", "b", located)
    reply = op.locally("b", lambda un: un(at_b) + "!")
    return op.comm("b", "a", reply)


@choreography(census=["a", "b", "c"])
def fan_round(op, count):
    """a sends ``count`` sequenced messages alternately to b and c, then
    gathers one digest from each — lots of independent-channel traffic."""
    digests = {}
    for peer in ["b", "c"]:
        for index in range(count):
            payload = op.locally("a", lambda _un, _i=index, _p=peer: (_p, _i))
            at_peer = op.comm("a", peer, payload)
            op.locally(peer, lambda un, _p=peer: digests.setdefault(_p, []).append(un(at_peer)))
    checks = {}
    for peer in ["b", "c"]:
        summary = op.locally(
            peer, lambda un, _p=peer: digests.get(_p) == [(_p, i) for i in range(count)]
        )
        at_a = op.comm(peer, "a", summary)
        op.locally("a", lambda un, _p=peer: checks.setdefault(_p, un(at_a)))
    return op.locally("a", lambda _un: dict(checks))


# ---------------------------------------------------------------------------- DSL --


class TestFaultPlanDSL:
    def test_builder_chains(self):
        plan = (
            FaultPlan(seed=7)
            .delay(jitter=0.5, rate=0.3)
            .reorder(rate=0.2, span=3)
            .crash("b", after_ops=10)
            .flaky_connect("a", "b", failures=2)
        )
        assert len(plan.delays) == 1
        assert len(plan.reorders) == 1
        assert plan.crash_rule_for("b").after_ops == 10
        assert plan.flaky_rule_for("a", "b").failures == 2
        assert "seed=7" in repr(plan)

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, rate):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultPlan().delay(jitter=1.0, rate=rate)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultPlan().reorder(rate=rate)

    def test_delay_rejects_negative_jitter(self):
        with pytest.raises(ValueError, match="jitter"):
            FaultPlan().delay(jitter=-1.0)

    def test_reorder_rejects_nonpositive_span(self):
        with pytest.raises(ValueError, match="span"):
            FaultPlan().reorder(rate=0.5, span=0)

    def test_crash_needs_exactly_one_trigger(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultPlan().crash("a")
        with pytest.raises(ValueError, match="exactly one"):
            FaultPlan().crash("a", after_ops=1, at_time=2.0)

    def test_crash_rejects_wildcard_and_duplicates(self):
        with pytest.raises(ValueError, match="wildcard"):
            FaultPlan().crash("*", after_ops=1)
        plan = FaultPlan().crash("a", after_ops=1)
        with pytest.raises(ValueError, match="already"):
            plan.crash("a", after_ops=2)

    def test_flaky_validation(self):
        with pytest.raises(ValueError, match="failures"):
            FaultPlan().flaky_connect(failures=0)
        with pytest.raises(ValueError, match="max_retries"):
            FaultPlan().flaky_connect(max_retries=-1)

    def test_wildcards_match_any_channel(self):
        plan = FaultPlan(seed=1).delay(jitter=1.0, rate=1.0)
        assert plan.delay_for("x", "y", 0) > 0
        assert plan.delay_for("p", "q", 3) > 0

    def test_concrete_patterns_only_match_their_channel(self):
        plan = FaultPlan(seed=1).delay("a", "b", jitter=1.0, rate=1.0)
        assert plan.delay_for("a", "b", 0) > 0
        assert plan.delay_for("b", "a", 0) == 0.0
        assert plan.delay_for("a", "c", 0) == 0.0

    def test_decisions_are_pure_functions_of_seed_and_index(self):
        one = FaultPlan(seed=9).delay(jitter=1.0, rate=0.5).reorder(rate=0.5, span=4)
        two = FaultPlan(seed=9).delay(jitter=1.0, rate=0.5).reorder(rate=0.5, span=4)
        for index in range(50):
            assert one.delay_for("a", "b", index) == two.delay_for("a", "b", index)
            assert one.reorder_hold("a", "b", index) == two.reorder_hold("a", "b", index)

    def test_different_seeds_draw_different_decisions(self):
        one = FaultPlan(seed=1).delay(jitter=1.0, rate=0.5)
        two = FaultPlan(seed=2).delay(jitter=1.0, rate=0.5)
        draws = [(one.delay_for("a", "b", i), two.delay_for("a", "b", i)) for i in range(64)]
        assert any(x != y for x, y in draws)

    def test_sessions_do_not_share_logs(self):
        plan = FaultPlan(seed=1)
        first, second = plan.session(), plan.session()
        first.record("delay", "a", "b", 1, 0.5)
        assert len(first.events) == 1
        assert second.events == ()


# ------------------------------------------------------------------- mechanics --


def run_fan_round(plan, *, count=12, backend="simulated", timeout=5.0):
    with ChoreoEngine(["a", "b", "c"], backend=backend, faults=plan, timeout=timeout) as engine:
        result = engine.run(fan_round, args=(count,))
        return result, engine.transport.faults, engine.stats.snapshot()


class TestInjectionMechanics:
    def test_delay_advances_virtual_clock_not_wall_clock(self):
        heavy = FaultPlan(seed=3).delay(jitter=5.0, rate=1.0)
        started = time.perf_counter()
        with ChoreoEngine(["a", "b"], backend="simulated", faults=heavy) as engine:
            engine.run(echo, args=("hi",))
            jittered = engine.transport.critical_path
        assert time.perf_counter() - started < 3.0  # no real sleeping
        with ChoreoEngine(["a", "b"], backend="simulated") as engine:
            engine.run(echo, args=("hi",))
            baseline = engine.transport.critical_path
        assert jittered > baseline

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_reorder_preserves_per_pair_fifo(self, seed):
        plan = FaultPlan(seed=seed).reorder(rate=0.6, span=4)
        result, session, _stats = run_fan_round(plan)
        # The choreography itself checks sequence numbers at each receiver.
        assert result.value_at("a") == {"b": True, "c": True}
        assert any(event.kind == "reorder" for event in session.events)

    def test_reorder_releases_before_blocking_recv(self):
        # Hold *every* a→b send back as far as possible: if held frames were
        # not released before a blocks receiving b's reply, this would
        # deadlock until the timeout instead of completing.
        plan = FaultPlan(seed=1).reorder("a", "b", rate=1.0, span=10)
        with ChoreoEngine(["a", "b"], backend="simulated", faults=plan, timeout=3.0) as engine:
            result = engine.run(echo, args=("ping",))
        assert result.value_at("a") == "ping!"

    def test_crash_after_ops_kills_every_later_op(self):
        plan = FaultPlan(seed=1).crash("b", after_ops=0)
        transport = SimulatedNetworkTransport(["a", "b"], faults=plan)
        endpoint = transport.endpoint("b")
        assert isinstance(endpoint, FaultyEndpoint)
        assert not endpoint.crashed
        with pytest.raises(CrashFault):
            endpoint.send("a", "boom")
        assert endpoint.crashed
        with pytest.raises(CrashFault):
            endpoint.recv("a")
        endpoint.flush()  # a dead location's flush is a safe no-op
        transport.close()

    def test_crash_at_time_uses_the_virtual_clock(self):
        plan = FaultPlan(seed=1).crash("b", at_time=4.0)
        transport = SimulatedNetworkTransport(["a", "b"], faults=plan, latency=1.0)
        b = transport.endpoint("b")
        transport.advance_clock("b", 10.0)
        with pytest.raises(CrashFault):
            b.send("a", "too late")
        transport.close()

    def test_crash_at_time_requires_a_clock(self):
        plan = FaultPlan(seed=1).crash("b", at_time=4.0)
        with pytest.raises(ValueError, match="simulated"):
            TCPTransport(["a", "b"], faults=plan).endpoint("b")

    def test_flaky_connect_is_transparent_within_budget(self):
        plan = FaultPlan(seed=5).flaky_connect("a", "b", failures=2, max_retries=3)
        with ChoreoEngine(["a", "b"], backend="simulated", faults=plan) as engine:
            result = engine.run(echo, args=("ok",))
            events = engine.transport.faults.events
        assert result.value_at("a") == "ok!"
        assert [event.kind for event in events] == ["connect-fail", "connect-fail"]

    def test_flaky_connect_surfaces_past_budget_then_recovers(self):
        plan = FaultPlan(seed=5).flaky_connect("a", "b", failures=1, max_retries=0)
        with ChoreoEngine(["a", "b"], backend="simulated", faults=plan, timeout=0.3) as engine:
            with pytest.raises(ChoreographyRuntimeError) as failure:
                engine.run(echo, args=("first",))
            assert isinstance(failure.value.original, TransportError)
            assert "transient connect failure" in str(failure.value.original)
            # The planned failures are spent; the channel works from now on.
            assert engine.run(echo, args=("second",)).value_at("a") == "second!"

    def test_stats_stay_exact_across_injected_retries(self):
        flaky = FaultPlan(seed=5).flaky_connect(failures=3, max_retries=5)
        with ChoreoEngine(["a", "b"], backend="simulated", faults=flaky) as engine:
            engine.run(echo, args=("x",))
            with_faults = engine.stats.snapshot()
        with ChoreoEngine(["a", "b"], backend="simulated") as engine:
            engine.run(echo, args=("x",))
            clean = engine.stats.snapshot()
        # A retried message is recorded once, by the attempt that lands.
        assert with_faults == clean


# ---------------------------------------------------------------- determinism --


class TestScheduleDeterminism:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_identical_seed_identical_schedule_and_stats(self, seed):
        def once():
            plan = (
                FaultPlan(seed=seed)
                .delay(jitter=0.3, rate=0.5)
                .reorder(rate=0.3, span=3)
                .flaky_connect("a", "b", failures=1, max_retries=2)
            )
            result, session, stats = run_fan_round(plan)
            assert result.value_at("a") == {"b": True, "c": True}
            return session.schedule(), stats

        first_schedule, first_stats = once()
        second_schedule, second_stats = once()
        assert first_schedule == second_schedule
        assert len(first_schedule) > 0
        assert first_stats == second_stats

    def test_different_seed_different_schedule(self):
        _result, session_a, _stats = run_fan_round(
            FaultPlan(seed=1).delay(jitter=0.3, rate=0.5), count=16
        )
        _result, session_b, _stats = run_fan_round(
            FaultPlan(seed=2).delay(jitter=0.3, rate=0.5), count=16
        )
        assert session_a.schedule() != session_b.schedule()

    def test_schedule_is_canonical_across_log_arrival_order(self):
        plan = FaultPlan(seed=3)
        session = plan.session()
        session.record("delay", "b", "a", 2, 0.1)
        session.record("delay", "a", "b", 1, 0.2)
        other = plan.session()
        other.record("delay", "a", "b", 1, 0.2)
        other.record("delay", "b", "a", 2, 0.1)
        assert session.schedule() == other.schedule()
        assert session.events != other.events  # arrival order differs
        assert [event.step for event in session.events_at("a")] == [1]


# -------------------------------------------------------------- engine behaviour --


class TestFaultsThroughTheEngine:
    def test_tcp_backend_accepts_the_same_plan(self):
        plan = (
            FaultPlan(seed=11)
            .delay(jitter=0.002, rate=0.4)
            .flaky_connect("a", "b", failures=1, max_retries=2)
        )
        with ChoreoEngine(["a", "b", "c"], backend="tcp", faults=plan, timeout=5.0) as engine:
            result = engine.run(fan_round, args=(6,))
            assert result.value_at("a") == {"b": True, "c": True}
            assert engine.transport.faults is not None

    def test_asyncio_backend_accepts_the_same_plan(self):
        """The event-loop backend takes the identical FaultPlan; its injected
        delays ride ``loop.call_later`` timers instead of ``time.sleep``."""
        plan = (
            FaultPlan(seed=11)
            .delay(jitter=0.002, rate=0.4)
            .flaky_connect("a", "b", failures=1, max_retries=2)
        )
        with ChoreoEngine(
            ["a", "b", "c"], backend="asyncio", faults=plan, timeout=5.0
        ) as engine:
            result = engine.run(fan_round, args=(6,))
            assert result.value_at("a") == {"b": True, "c": True}
            assert engine.transport.faults is not None

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_asyncio_chaos_sweep_is_deterministic(self, seed):
        """The seed sweep extends to the asyncio backend: per-channel fault
        decisions are pure functions of (seed, channel, index), so two runs
        under the same seed inject the same canonical schedule and the
        choreography's results survive the chaos."""

        def once():
            plan = (
                FaultPlan(seed=seed)
                .delay(jitter=0.005, rate=0.5)
                .reorder(rate=0.3, span=3)
            )
            result, session, stats = run_fan_round(
                plan, count=5, backend="asyncio"
            )
            assert result.value_at("a") == {"b": True, "c": True}
            return session.schedule(), stats

        first_schedule, first_stats = once()
        second_schedule, second_stats = once()
        assert first_schedule == second_schedule
        assert len(first_schedule) > 0
        assert first_stats == second_stats

    def test_crash_fails_loudly_with_crash_root_cause(self):
        plan = FaultPlan(seed=1).crash("b", after_ops=1)
        with ChoreoEngine(["a", "b"], backend="simulated", faults=plan, timeout=0.3) as engine:
            future = engine.submit(echo, args=("x",))
            with pytest.raises(ChoreographyRuntimeError) as failure:
                future.result(timeout=5.0)  # resolves well before this
        assert failure.value.location == "b"
        assert isinstance(failure.value.original, CrashFault)

    def test_crash_failure_bundle_names_every_location(self):
        plan = FaultPlan(seed=1).crash("b", after_ops=0)
        with ChoreoEngine(["a", "b"], backend="simulated", faults=plan, timeout=0.3) as engine:
            with pytest.raises(ChoreographyRuntimeError) as failure:
                engine.run(echo, args=("x",))
        bundle = failure.value.failures
        assert isinstance(bundle["b"], CrashFault)
        assert isinstance(bundle["a"], ChoreoTimeout)
        assert bundle["a"].waiter == "a"
        assert bundle["a"].peer == "b"

    def test_recv_timeout_is_typed(self):
        @choreography(census=["a", "b"])
        def b_is_slow(op, seconds):
            op.locally("b", lambda _un: time.sleep(seconds))
            payload = op.locally("b", lambda _un: "late")
            return op.comm("b", "a", payload)

        with ChoreoEngine(["a", "b"], backend="local", timeout=0.2) as engine:
            with pytest.raises(ChoreographyRuntimeError) as failure:
                engine.run(b_is_slow, args=(0.6,))
        timeout = failure.value.original
        assert isinstance(timeout, ChoreoTimeout)
        assert isinstance(timeout, TransportError)  # old handlers still match
        assert (timeout.waiter, timeout.peer, timeout.seconds) == ("a", "b", 0.2)

    def test_futures_resolve_after_crash_and_engine_stays_usable(self):
        # Pipeline several instances across a crash: every Future must
        # resolve (success before the crash, failure after), and none may
        # hang — the "fails loudly, never hangs" contract.
        plan = FaultPlan(seed=1).crash("b", after_ops=4)
        with ChoreoEngine(["a", "b"], backend="simulated", faults=plan, timeout=0.3) as engine:
            futures = [engine.submit(echo, args=(f"m{i}",)) for i in range(5)]
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(timeout=10.0).value_at("a"))
                except ChoreographyRuntimeError:
                    outcomes.append("failed")
        assert outcomes[0] == "m0!"  # 4 ops = two clean round trips at b
        assert outcomes[1] == "m1!"
        assert outcomes[2:] == ["failed", "failed", "failed"]


# ----------------------------------------------------- stats & tee edge cases --


class TestChannelStatsEdgeCases:
    def test_merge_all_of_nothing_is_empty(self):
        merged = ChannelStats.merge_all([])
        assert merged.total_messages == 0
        assert merged.total_bytes == 0
        assert merged.snapshot() == {}

    def test_merge_disjoint_pairs_is_a_union(self):
        left, right = ChannelStats(), ChannelStats()
        left.record("a", "b", 10)
        right.record("c", "d", 20)
        merged = left.merge(right)
        assert merged.snapshot() == {("a", "b"): 1, ("c", "d"): 1}
        assert merged.payload_bytes == {("a", "b"): 10, ("c", "d"): 20}
        # Sources are untouched.
        assert left.snapshot() == {("a", "b"): 1}
        assert right.snapshot() == {("c", "d"): 1}

    def test_nested_tees_reach_every_sink(self):
        a, b, c = ChannelStats(), ChannelStats(), ChannelStats()
        tee = _TeeStats(a, _TeeStats(b, c))
        tee.record("x", "y", 5)
        tee.record_broadcast("x", ["y", "z"], 7)
        expected = {("x", "y"): 2, ("x", "z"): 1}
        for sink in (a, b, c):
            assert sink.snapshot() == expected
            assert sink.total_bytes == 5 + 7 + 7

    def test_use_stats_reattributes_a_wrapped_endpoint(self):
        plan = FaultPlan(seed=1)  # no rules: pure pass-through wrapper
        transport = SimulatedNetworkTransport(["a", "b"], faults=plan)
        endpoint = transport.endpoint("a")
        assert isinstance(endpoint, FaultyEndpoint)
        private = ChannelStats()
        endpoint.use_stats(private)
        endpoint.send("b", "hello")
        endpoint.flush()
        assert transport.stats.total_messages == 0
        assert private.snapshot() == {("a", "b"): 1}
        endpoint.use_stats(transport.stats)
        endpoint.send("b", "again")
        endpoint.flush()
        assert transport.stats.snapshot() == {("a", "b"): 1}
        assert private.snapshot() == {("a", "b"): 1}
        transport.close()
