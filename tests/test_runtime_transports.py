"""Tests for the transport substrates and message accounting."""

from __future__ import annotations

import struct
import threading

import pytest

from repro.core.errors import TransportError
from repro.runtime import wire
from repro.runtime.local import LocalTransport
from repro.runtime.stats import ChannelStats
from repro.runtime.tcp import TCPTransport
from repro.runtime.transport import deserialize, serialize


class TestSerialization:
    def test_roundtrip(self):
        for payload in [1, "x", {"a": [1, 2]}, (True, None), {"nested": {"deep": 3}}]:
            assert deserialize(serialize(payload)) == payload

    def test_rejects_unpicklable(self):
        with pytest.raises(TransportError):
            serialize(lambda x: x)


class TestChannelStats:
    def test_record_and_totals(self):
        stats = ChannelStats()
        stats.record("a", "b", 10)
        stats.record("a", "b", 5)
        stats.record("b", "c", 1)
        assert stats.total_messages == 3
        assert stats.total_bytes == 16
        assert stats.snapshot() == {("a", "b"): 2, ("b", "c"): 1}

    def test_per_location_views(self):
        stats = ChannelStats()
        stats.record("a", "b", 1)
        stats.record("c", "a", 1)
        assert stats.messages_sent_by("a") == 1
        assert stats.messages_received_by("a") == 1
        assert stats.messages_involving("a") == 2
        assert stats.messages_sent_by("z") == 0

    def test_merge(self):
        first = ChannelStats()
        first.record("a", "b", 1)
        second = ChannelStats()
        second.record("a", "b", 2)
        second.record("b", "a", 3)
        merged = first.merge(second)
        assert merged.total_messages == 3
        assert merged.payload_bytes[("a", "b")] == 3

    def test_reset(self):
        stats = ChannelStats()
        stats.record("a", "b", 1)
        stats.reset()
        assert stats.total_messages == 0

    def test_channels(self):
        stats = ChannelStats()
        stats.record("a", "b", 1)
        assert ("a", "b") in stats.channels()

    def test_thread_safety_under_contention(self):
        stats = ChannelStats()

        def hammer():
            for _ in range(500):
                stats.record("a", "b", 1)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.total_messages == 2000


class TestLocalTransport:
    def test_send_and_receive(self):
        transport = LocalTransport(["a", "b"], timeout=2.0)
        transport.endpoint("a").send("b", {"k": 1})
        transport.endpoint("a").flush()  # raw endpoint use: drain deferred sends
        assert transport.endpoint("b").recv("a") == {"k": 1}

    def test_fifo_per_channel(self):
        transport = LocalTransport(["a", "b"], timeout=2.0)
        sender = transport.endpoint("a")
        sender.send("b", 1)
        sender.send("b", 2)
        sender.flush()
        receiver = transport.endpoint("b")
        assert receiver.recv("a") == 1
        assert receiver.recv("a") == 2

    def test_channels_are_isolated_by_direction(self):
        transport = LocalTransport(["a", "b"], timeout=2.0)
        transport.endpoint("a").send("b", "from-a")
        transport.endpoint("b").send("a", "from-b")
        transport.endpoint("a").flush()
        transport.endpoint("b").flush()
        assert transport.endpoint("a").recv("b") == "from-b"
        assert transport.endpoint("b").recv("a") == "from-a"

    def test_payloads_are_isolated_copies(self):
        transport = LocalTransport(["a", "b"], timeout=2.0)
        original = {"list": [1]}
        transport.endpoint("a").send("b", original)
        transport.endpoint("a").flush()
        # mutation after send must not be visible: payloads serialize at send
        # time, before they ever sit in a write buffer
        original["list"].append(2)
        assert transport.endpoint("b").recv("a") == {"list": [1]}

    def test_timeout_raises(self):
        transport = LocalTransport(["a", "b"], timeout=0.05)
        with pytest.raises(TransportError, match="timed out"):
            transport.endpoint("b").recv("a")

    def test_unknown_peer_raises(self):
        transport = LocalTransport(["a", "b"], timeout=1.0)
        with pytest.raises(TransportError):
            transport.endpoint("a").send("z", 1)
        with pytest.raises(TransportError):
            transport.endpoint("a").recv("z")

    def test_stats_record_message_sizes(self):
        transport = LocalTransport(["a", "b"], timeout=1.0)
        transport.endpoint("a").send("b", "x" * 100)
        assert transport.stats.total_messages == 1
        assert transport.stats.total_bytes >= 100

    def test_endpoint_requires_census_member(self):
        transport = LocalTransport(["a", "b"], timeout=1.0)
        with pytest.raises(Exception):
            transport.endpoint("z")

    def test_context_manager(self):
        with LocalTransport(["a", "b"], timeout=1.0) as transport:
            transport.endpoint("a").send("b", 1)
            transport.endpoint("a").flush()
            assert transport.endpoint("b").recv("a") == 1


class TestTCPTransport:
    def test_send_and_receive_over_loopback(self):
        with TCPTransport(["a", "b"], timeout=5.0) as transport:
            transport.endpoint("a")
            transport.endpoint("b")
            transport.endpoint("a").send("b", {"payload": [1, 2, 3]})
            transport.endpoint("a").flush()
            assert transport.endpoint("b").recv("a") == {"payload": [1, 2, 3]}

    def test_bidirectional_traffic(self):
        with TCPTransport(["a", "b"], timeout=5.0) as transport:
            a, b = transport.endpoint("a"), transport.endpoint("b")
            a.send("b", "ping")
            a.flush()
            assert b.recv("a") == "ping"
            b.send("a", "pong")
            b.flush()
            assert a.recv("b") == "pong"

    def test_fifo_per_sender(self):
        with TCPTransport(["a", "b"], timeout=5.0) as transport:
            a, b = transport.endpoint("a"), transport.endpoint("b")
            for index in range(10):
                a.send("b", index)
            a.flush()  # the ten coalesced frames travel as one writev
            assert [b.recv("a") for _ in range(10)] == list(range(10))

    def test_three_party_demultiplexing(self):
        with TCPTransport(["a", "b", "c"], timeout=5.0) as transport:
            endpoints = {name: transport.endpoint(name) for name in "abc"}
            endpoints["a"].send("c", "from-a")
            endpoints["b"].send("c", "from-b")
            endpoints["a"].flush()
            endpoints["b"].flush()
            assert endpoints["c"].recv("b") == "from-b"
            assert endpoints["c"].recv("a") == "from-a"

    def test_timeout(self):
        with TCPTransport(["a", "b"], timeout=0.1) as transport:
            transport.endpoint("a")
            with pytest.raises(TransportError, match="timed out"):
                transport.endpoint("b").recv("a")

    def test_stats_recorded(self):
        with TCPTransport(["a", "b"], timeout=5.0) as transport:
            transport.endpoint("a")
            transport.endpoint("b")
            transport.endpoint("a").send("b", "hello")
            transport.endpoint("a").flush()
            transport.endpoint("b").recv("a")
            assert transport.stats.total_messages == 1


class _SpySocket:
    """Captures the buffers an endpoint hands to ``sendmsg``."""

    def __init__(self):
        self.captured = b""

    def sendmsg(self, buffers):
        self.captured += b"".join(bytes(buffer) for buffer in buffers)
        return sum(len(buffer) for buffer in buffers)

    def sendall(self, data):  # pragma: no cover - short-write fallback
        self.captured += bytes(data)

    def close(self):
        pass


def _parse_tcp_frame(raw: bytes):
    """Split a captured TCP frame into (sender, instance, payload bytes)."""
    (frame_length,) = struct.unpack_from("!I", raw)
    frame = raw[4:4 + frame_length]
    assert len(frame) == frame_length, "frame shorter than its length prefix"
    (sender_length,) = struct.unpack_from("!H", frame)
    sender = wire.decode(frame[2:2 + sender_length])
    instance, body_start = wire.read_uvarint(frame, 2 + sender_length)
    return sender, instance, frame[body_start:]


class TestSerializeOnceAccounting:
    """Bytes recorded in ChannelStats must equal the bytes actually framed."""

    CENSUS = ["a", "b", "c", "d"]
    PAYLOAD = {"shares": [True, False, True], "round": 3}

    def test_local_send_records_exact_serialized_bytes(self):
        transport = LocalTransport(["a", "b"], timeout=2.0)
        transport.endpoint("a").send("b", self.PAYLOAD)
        # accounting happens at send time, before the deferred flush
        assert transport.stats.payload_bytes[("a", "b")] == len(serialize(self.PAYLOAD))
        transport.endpoint("a").flush()
        assert transport.endpoint("b").recv("a") == self.PAYLOAD

    def test_local_send_many_records_per_receiver(self):
        transport = LocalTransport(self.CENSUS, timeout=2.0)
        receivers = ["b", "c", "d"]
        transport.endpoint("a").send_many(receivers, self.PAYLOAD)
        transport.endpoint("a").flush()
        expected = len(serialize(self.PAYLOAD))
        for receiver in receivers:
            assert transport.stats.messages[("a", receiver)] == 1
            assert transport.stats.payload_bytes[("a", receiver)] == expected
            assert transport.endpoint(receiver).recv("a") == self.PAYLOAD
        assert transport.stats.total_bytes == expected * len(receivers)

    def test_local_send_many_rejects_unknown_receiver(self):
        transport = LocalTransport(["a", "b"], timeout=1.0)
        with pytest.raises(TransportError):
            transport.endpoint("a").send_many(["b", "z"], 1)
        # the bad batch must not have been partially delivered or recorded
        assert transport.stats.total_messages == 0

    def test_tcp_send_many_rejects_unknown_receiver_before_sending(self):
        with TCPTransport(["a", "b"], timeout=2.0) as transport:
            transport.endpoint("a")
            transport.endpoint("b")
            with pytest.raises(TransportError):
                transport.endpoint("a").send_many(["b", "z"], 1)
            # all-or-nothing, matching LocalTransport: no partial broadcast
            assert transport.stats.total_messages == 0

    def test_tcp_framed_payload_bytes_match_stats(self):
        with TCPTransport(["a", "b"], timeout=5.0) as transport:
            sender = transport.endpoint("a")
            transport.endpoint("b")
            spy = _SpySocket()
            sender._out_sockets["b"] = spy  # intercept the wire
            sender.send("b", self.PAYLOAD)
            sender.flush()
            origin, instance, payload = _parse_tcp_frame(spy.captured)
            assert origin == "a"
            assert instance == 0  # one-shot sends carry instance 0
            assert payload == serialize(self.PAYLOAD)
            assert transport.stats.payload_bytes[("a", "b")] == len(payload)

    def test_tcp_send_many_frames_one_serialization(self):
        with TCPTransport(self.CENSUS, timeout=5.0) as transport:
            sender = transport.endpoint("a")
            for name in self.CENSUS:
                transport.endpoint(name)
            spies = {receiver: _SpySocket() for receiver in ["b", "c", "d"]}
            sender._out_sockets.update(spies)
            sender.send_many(["b", "c", "d"], self.PAYLOAD)
            sender.flush()
            expected = serialize(self.PAYLOAD)
            for receiver, spy in spies.items():
                origin, _instance, payload = _parse_tcp_frame(spy.captured)
                assert origin == "a"
                assert payload == expected
                assert transport.stats.payload_bytes[("a", receiver)] == len(expected)

    def test_tcp_broadcast_end_to_end(self):
        with TCPTransport(self.CENSUS, timeout=5.0) as transport:
            for name in self.CENSUS:
                transport.endpoint(name)
            transport.endpoint("a").send_many(["b", "c", "d"], self.PAYLOAD)
            transport.endpoint("a").flush()
            for receiver in ["b", "c", "d"]:
                assert transport.endpoint(receiver).recv("a") == self.PAYLOAD

    @pytest.mark.parametrize("transport_cls", [LocalTransport, TCPTransport])
    def test_scoped_sends_keep_payload_bytes_exact(self, transport_cls):
        """The instance tag rides in the framing: a 1-byte boolean share is
        recorded as 1 byte whatever instance it belongs to."""
        with transport_cls(["a", "b"], timeout=5.0) as transport:
            sender = transport.endpoint("a")
            receiver = transport.endpoint("b")
            sender.send_scoped("b", 7, True)
            sender.send_many_scoped(["b"], 300, self.PAYLOAD)
            sender.flush()
            assert receiver.recv_scoped("a") == (7, True)
            assert receiver.recv_scoped("a") == (300, self.PAYLOAD)
            assert transport.stats.payload_bytes[("a", "b")] == (
                len(serialize(True)) + len(serialize(self.PAYLOAD))
            )

    def test_recv_many_collects_one_message_per_sender(self):
        transport = LocalTransport(self.CENSUS, timeout=2.0)
        for sender in ["b", "c", "d"]:
            transport.endpoint(sender).send("a", f"from-{sender}")
            transport.endpoint(sender).flush()
        received = transport.endpoint("a").recv_many(["b", "c", "d"])
        assert received == {"b": "from-b", "c": "from-c", "d": "from-d"}


class TestLazyChannels:
    def test_channels_created_on_first_use_only(self):
        census = [f"n{i}" for i in range(50)]
        transport = LocalTransport(census, timeout=1.0)
        assert len(transport._channels) == 0
        transport.endpoint("n0").send("n1", 1)
        transport.endpoint("n0").flush()
        assert transport.endpoint("n1").recv("n0") == 1
        # one channel for the touched pair, not 50*49 for the census
        assert len(transport._channels) == 1

    def test_concurrent_first_use_yields_one_queue_per_channel(self):
        transport = LocalTransport(["a", "b"], timeout=2.0)
        endpoint = transport.endpoint("a")
        threads = [
            threading.Thread(target=endpoint.send, args=("b", index)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        endpoint.flush()
        receiver = transport.endpoint("b")
        assert sorted(receiver.recv("a") for _ in range(8)) == list(range(8))
