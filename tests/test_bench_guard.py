"""Tier-1 hook for the benchmark bitrot guard.

The benchmark files use the ``bench_*.py`` naming convention, so default
pytest discovery never collects them; this wrapper pulls the guard tests from
``benchmarks/bench_guard.py`` into the regular suite.  Each guard test imports
every benchmark module and runs one tiny, untimed iteration of the modules
that expose ``smoke()`` — enough to catch API drift in bench code without
paying for the timing sweeps.
"""

from __future__ import annotations

import pathlib
import sys

_BENCH_DIR = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
if str(_BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCH_DIR))

import bench_guard  # noqa: E402


def test_benchmark_modules_import_cleanly():
    bench_guard.test_benchmark_modules_import_cleanly()


def test_benchmark_smoke_iterations():
    bench_guard.test_benchmark_smoke_iterations()
