"""Tests for the census-polymorphic operator layer (parallel, fan-out/in, scatter, gather).

These operators are *derived* from the primitives (the paper argues no new
primitives are needed); the tests run them under the centralized reference
semantics, where every facet is observable, and additionally check the
projected message pattern where it matters.
"""

from __future__ import annotations

import pytest

from repro.core.errors import CensusError, OwnershipError
from repro.core.located import Faceted, Located, Quire
from repro.runtime.central import CentralOp
from repro.runtime.runner import run_choreography


def central(census):
    return CentralOp(census)


PARTIES = ["p1", "p2", "p3", "p4"]


class TestParallel:
    def test_each_member_computes_its_own_facet(self):
        op = central(PARTIES)
        faceted = op.parallel(PARTIES, lambda loc, _un: loc.upper())
        assert faceted.to_quire().to_dict() == {p: p.upper() for p in PARTIES}

    def test_subset_of_census(self):
        op = central(PARTIES)
        faceted = op.parallel(["p2", "p4"], lambda loc, _un: 1)
        assert list(faceted.owners) == ["p2", "p4"]

    def test_members_must_be_in_census(self):
        op = central(PARTIES)
        with pytest.raises(CensusError):
            op.parallel(["p1", "zz"], lambda loc, _un: 1)

    def test_computation_can_read_own_facets(self):
        op = central(PARTIES)
        base = op.parallel(PARTIES, lambda loc, _un: len(loc))
        doubled = op.parallel(PARTIES, lambda loc, un: un(base) * 2)
        assert doubled.to_quire().values() == (4, 4, 4, 4)

    def test_results_may_diverge(self):
        op = central(PARTIES)
        faceted = op.parallel(PARTIES, lambda loc, _un: loc)
        values = set(faceted.to_quire().values())
        assert len(values) == len(PARTIES)


class TestFanOut:
    def test_collects_one_facet_per_location(self):
        op = central(PARTIES)
        faceted = op.fanout(PARTIES, lambda q: op.locally(q, lambda _un: q + "!"))
        assert faceted.to_quire().to_dict() == {p: p + "!" for p in PARTIES}

    def test_body_must_return_located(self):
        op = central(PARTIES)
        with pytest.raises(OwnershipError, match="Located"):
            op.fanout(PARTIES, lambda q: "oops")

    def test_common_owners_recorded(self):
        op = central(PARTIES)
        faceted = op.fanout(
            ["p2", "p3"],
            lambda q: op.multicast("p1", [q, "p1"], op.locally("p1", lambda _un: 0)),
            common=["p1"],
        )
        assert list(faceted.common) == ["p1"]

    def test_whole_census_participates_in_each_iteration(self):
        """fanout does not conclave its body: a cross-party comm inside works."""

        def chor(op):
            return op.fanout(
                ["p2", "p3"],
                lambda q: op.comm("p1", q, op.locally("p1", lambda _un: q)),
            )

        result = run_choreography(chor, PARTIES)
        assert result.stats.total_messages == 2


class TestFanIn:
    def test_aggregates_into_a_quire_at_the_recipients(self):
        op = central(PARTIES)
        collected = op.fanin(
            PARTIES, ["p1"], lambda q: op.comm(q, "p1", op.locally(q, lambda _un: len(q)))
        )
        assert isinstance(collected.peek(), Quire)
        assert collected.peek().to_dict() == {p: 2 for p in PARTIES}
        assert list(collected.owners) == ["p1"]

    def test_multiple_recipients(self):
        op = central(PARTIES)
        collected = op.fanin(
            ["p3", "p4"],
            ["p1", "p2"],
            lambda q: op.multicast(q, ["p1", "p2"], op.locally(q, lambda _un: q)),
        )
        assert list(collected.owners) == ["p1", "p2"]
        assert collected.peek().to_dict() == {"p3": "p3", "p4": "p4"}

    def test_body_must_return_located(self):
        op = central(PARTIES)
        with pytest.raises(OwnershipError, match="Located"):
            op.fanin(PARTIES, ["p1"], lambda q: 3)

    def test_projected_non_recipient_gets_placeholder(self):
        def chor(op):
            return op.fanin(
                PARTIES, ["p1"], lambda q: op.comm(q, "p1", op.locally(q, lambda _un: 1))
            )

        result = run_choreography(chor, PARTIES)
        assert result.returns["p1"].is_present()
        assert not result.returns["p2"].is_present()


class TestScatterGather:
    def test_scatter_delivers_one_entry_per_recipient(self):
        op = central(PARTIES)
        quire = op.locally("p1", lambda _un: Quire(PARTIES, {p: p.upper() for p in PARTIES}))
        faceted = op.scatter("p1", PARTIES, quire)
        assert faceted.to_quire().to_dict() == {p: p.upper() for p in PARTIES}

    def test_scatter_sender_is_common_owner(self):
        op = central(PARTIES)
        quire = op.locally("p1", lambda _un: Quire(PARTIES, {p: 0 for p in PARTIES}))
        faceted = op.scatter("p1", PARTIES, quire)
        assert list(faceted.common) == ["p1"]

    def test_scatter_message_count_excludes_self(self):
        def chor(op):
            quire = op.locally("p1", lambda _un: Quire(PARTIES, {p: 0 for p in PARTIES}))
            op.scatter("p1", PARTIES, quire)

        result = run_choreography(chor, PARTIES)
        assert result.stats.total_messages == len(PARTIES) - 1

    def test_gather_collects_every_facet(self):
        op = central(PARTIES)
        faceted = op.parallel(PARTIES, lambda loc, _un: len(loc))
        gathered = op.gather(PARTIES, ["p2"], faceted)
        assert gathered.peek().to_dict() == {p: 2 for p in PARTIES}

    def test_gather_message_count(self):
        def chor(op):
            faceted = op.parallel(PARTIES, lambda loc, _un: 1)
            op.gather(PARTIES, ["p1"], faceted)

        result = run_choreography(chor, PARTIES)
        # every party except the recipient sends one message
        assert result.stats.total_messages == len(PARTIES) - 1

    def test_scatter_then_gather_roundtrip(self):
        def chor(op):
            quire = op.locally(
                "p1", lambda _un: Quire(PARTIES, {p: i for i, p in enumerate(PARTIES)})
            )
            faceted = op.scatter("p1", PARTIES, quire)
            gathered = op.gather(PARTIES, ["p4"], faceted)
            total = op.locally("p4", lambda un: sum(un(gathered).values()))
            return op.broadcast("p4", total)

        result = run_choreography(chor, PARTIES)
        assert set(result.returns.values()) == {sum(range(len(PARTIES)))}


class TestForgetCommon:
    def test_drops_common_owners_and_foreign_facets(self):
        def chor(op):
            quire = op.locally("p1", lambda _un: Quire(PARTIES, {p: p for p in PARTIES}))
            dealt = op.scatter("p1", PARTIES, quire)
            private = op.forget_common(dealt)
            return private

        result = run_choreography(chor, PARTIES)
        at_dealer = result.returns["p1"]
        assert list(at_dealer.common) == []
        # the dealer keeps only its own facet after forgetting
        assert list(at_dealer.visible_facets()) == ["p1"]
        at_other = result.returns["p3"]
        assert list(at_other.visible_facets()) == ["p3"]

    def test_centralized_keeps_every_facet_for_analysis(self):
        op = central(PARTIES)
        quire = op.locally("p1", lambda _un: Quire(PARTIES, {p: 1 for p in PARTIES}))
        dealt = op.scatter("p1", PARTIES, quire)
        private = op.forget_common(dealt)
        assert private.to_quire().values() == (1, 1, 1, 1)

    def test_requires_faceted(self):
        op = central(PARTIES)
        with pytest.raises(OwnershipError):
            op.forget_common(Located(["p1"], 3))


class TestCensusPolymorphismScaling:
    """The same choreography works for any census size (the paper's headline feature)."""

    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
    def test_gather_sum_for_any_number_of_parties(self, size):
        members = [f"w{i}" for i in range(size)]

        def chor(op):
            facets = op.parallel(members, lambda loc, _un: int(loc[1:]) + 1)
            gathered = op.gather(members, [members[0]], facets)
            total = op.locally(members[0], lambda un: sum(un(gathered).values()))
            return op.broadcast(members[0], total)

        result = run_choreography(chor, members)
        expected = sum(range(1, size + 1))
        assert all(value == expected for value in result.returns.values())
        assert result.stats.total_messages == 2 * (size - 1)
