"""Documentation health: intra-repo links resolve, doc examples execute.

Two failure modes rot documentation silently: a renamed file breaks the
links pointing at it, and an API change breaks the fenced examples.  This
module closes both — it is what the CI ``docs`` job runs, and it rides in
tier-1 so breakage is caught before a PR even reaches CI.
"""

from __future__ import annotations

import doctest
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Markdown files whose links must resolve: everything under docs/ plus the
#: repo-root notes that reference files.
LINKED_DOCS = sorted(REPO_ROOT.glob("docs/*.md")) + [REPO_ROOT / "ROADMAP.md"]

#: Documents whose ``>>>`` examples must execute (the PYTHONPATH=src test
#: environment makes ``repro`` importable, exactly as in CI).
DOCTESTED_DOCS = [
    REPO_ROOT / "docs" / "api.md",
    REPO_ROOT / "docs" / "architecture.md",
    REPO_ROOT / "docs" / "durability.md",
    REPO_ROOT / "docs" / "gateway.md",
    REPO_ROOT / "docs" / "testing.md",
]

#: ``[text](target)`` pairs, ignoring images; fenced code is stripped first.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_FENCE = re.compile(r"```.*?```", re.DOTALL)


def intra_repo_links(markdown: str):
    """Every relative (intra-repo) link target in ``markdown``.

    External links (``http(s)://``, ``mailto:``) and pure same-page anchors
    (``#section``) are not intra-repo and are skipped; fenced code blocks
    are stripped so example code cannot register false links.
    """
    prose = _FENCE.sub("", markdown)
    for match in _LINK.finditer(prose):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        yield target


@pytest.mark.parametrize("path", LINKED_DOCS, ids=lambda p: p.name)
def test_intra_repo_markdown_links_resolve(path):
    broken = []
    for target in intra_repo_links(path.read_text(encoding="utf-8")):
        relative = target.split("#", 1)[0]  # file.md#anchor -> file.md
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{path.name} has broken intra-repo links: {broken}"


def test_docs_contain_expected_files():
    """The documentation set this repo promises actually exists."""
    for name in ["api.md", "architecture.md", "benchmarks.md", "durability.md",
                 "gateway.md", "performance.md", "testing.md"]:
        assert (REPO_ROOT / "docs" / name).is_file(), f"docs/{name} missing"


@pytest.mark.parametrize("path", DOCTESTED_DOCS, ids=lambda p: p.name)
def test_doc_examples_execute(path):
    """Run every ``>>>`` example in the document, as ``python -m doctest`` would."""
    failures, tests = doctest.testfile(
        str(path), module_relative=False, verbose=False,
        optionflags=doctest.ELLIPSIS,
    )
    assert tests > 0, f"{path.name} has no doctest examples; add at least one"
    assert failures == 0, f"{path.name}: {failures} of {tests} doc examples failed"
