"""Chaos suite, part 5: cross-shard transactions — choreographic 2PC.

The promises under test:

* :meth:`~repro.cluster.ClusterEngine.submit_txn` is **atomic across
  shards**: every write in the set applies, or the caller gets the typed
  :class:`~repro.cluster.TxnConflict` / :class:`~repro.cluster.TxnAborted`
  and *nothing* was applied anywhere — no partial transfer is ever visible;
* prepares park per-key **write intents** on every replica (WAL-first on
  durable clusters) and refuse conflicting transactions and failed
  ``expects`` guards; a decide — commit or rollback — always drops the
  intent, so no committed or aborted transaction leaves one dangling;
* the **coordinator decision log** is written before any participant learns
  a commit: a coordinator crash after the log entry is finished forward by
  :meth:`~repro.cluster.ClusterEngine.recover_in_doubt` on restart, a crash
  before it is presumed abort — the in-doubt participant rolls back (and a
  live one expires the intent after :data:`~repro.storage.TXN_INTENT_TTL`
  later prepares, so a dead coordinator cannot block a key forever);
* participant crashes and primary promotions mid-transaction heal through
  the ordinary failover machinery — prepare and decide replay against the
  re-bound group, idempotently;
* the client surface honours the retry contract: ``batch`` and ``txn`` are
  never auto-retried (only idempotent reads are), and a retried quorum
  ``get`` still costs the client side exactly two messages per attempt;
* the acceptance bar: a concurrent bank-transfer workload **conserves the
  total balance** under seeded participant crashes, coordinator crashes,
  and mid-run promotions, leaves no dangling intents, and — because an
  abort applies nothing and transfers commute — converges byte-identically
  with the fault-free same-seed twin.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ClusterClient, ClusterEngine, FaultPlan, TxnAborted, TxnConflict
from repro.core.errors import ChoreographyRuntimeError
from repro.protocols.kvs import Request
from repro.storage import TXN_INTENT_TTL, txns_of
from tests.test_cluster_failover import BACKEND, CHAOS_SEEDS, TIMEOUT
from tests.test_cluster_promotion import durable_cluster

ACCOUNTS = 8
OPENING = 100


# ---------------------------------------------------------------------- helpers --


def open_accounts(kvs, count: int = ACCOUNTS) -> None:
    """Seed ``count`` accounts, each holding the OPENING balance."""
    for index in range(count):
        kvs.put(f"acct{index:02d}", str(OPENING))


def balances(kvs) -> dict:
    return {key: int(value) for key, value in kvs.scan("acct")}


def transfer(kvs, src: str, dst: str, amount: int, *, attempts: int = 50) -> str:
    """One guarded transfer, retried as a *fresh* transaction until it commits.

    Each attempt re-reads both balances and guards the write set with
    ``expects`` — the read-modify-write shape transactions exist for.  An
    abort applied nothing, so retrying from a re-read is always safe; the
    committed effect is "move ``amount`` from src to dst" exactly once.
    """
    for _ in range(attempts):
        source, target = int(kvs.get(src)), int(kvs.get(dst))
        try:
            result = kvs.txn(
                [
                    Request.put(src, str(source - amount)),
                    Request.put(dst, str(target + amount)),
                ],
                expects={src: str(source), dst: str(target)},
            )
        except (TxnAborted, ChoreographyRuntimeError):
            continue
        return result.txn_id
    raise AssertionError(f"transfer {src}->{dst} never committed")


def transfer_plan(count: int, *, seed: int):
    """A deterministic list of (src, dst, amount) transfers for ``seed``."""
    import random

    rng = random.Random(seed)
    plan = []
    for _ in range(count):
        src, dst = rng.sample(range(ACCOUNTS), 2)
        plan.append((f"acct{src:02d}", f"acct{dst:02d}", rng.randint(1, 9)))
    return plan


def assert_no_dangling_intents(cluster) -> None:
    """No *live* replica facet holds a parked write intent."""
    for shard_id, health in cluster.health().items():
        session = cluster.session(shard_id)
        for replica, state in health.replicas.items():
            if state != "up":
                continue  # a crashed facet resolves on rejoin/restart
            facet = session.state.facet_for(replica)
            assert txns_of(facet) == {}, (
                f"{shard_id}/{replica} still holds intents: {txns_of(facet)}"
            )


def settle(cluster, *, timeout: float = 30.0) -> None:
    """Wait for every in-flight submit to resolve (bounded)."""
    import time

    deadline = time.monotonic() + timeout
    while cluster.pending and time.monotonic() < deadline:
        time.sleep(0.01)
    assert cluster.pending == 0


# ----------------------------------------------------------------------- basics --


class TestTxnBasics:
    def test_cross_shard_commit_applies_everywhere(self):
        with ClusterClient(
            shards=2, replication=2, backend=BACKEND, timeout=TIMEOUT
        ) as kvs:
            result = kvs.txn(
                [Request.put("alice", "50"), Request.put("bob", "150")]
            )
            assert result.committed
            assert result.txn_id == "txn-1"
            assert len(result.shards) == len(
                {kvs.cluster.shard_for("alice"), kvs.cluster.shard_for("bob")}
            )
            assert kvs.get("alice") == "50"
            assert kvs.get("bob") == "150"
            assert kvs.cluster.in_doubt() == {}
            assert_no_dangling_intents(kvs.cluster)

    def test_delete_rides_the_write_set(self):
        with ClusterClient(
            shards=2, replication=2, backend=BACKEND, timeout=TIMEOUT
        ) as kvs:
            kvs.put("alice", "50")
            kvs.txn([Request.delete("alice"), Request.put("bob", "200")])
            assert kvs.get("alice") is None
            assert kvs.get("bob") == "200"
            assert_no_dangling_intents(kvs.cluster)

    def test_failed_expects_guard_aborts_with_the_keys(self):
        with ClusterClient(
            shards=2, replication=2, backend=BACKEND, timeout=TIMEOUT
        ) as kvs:
            kvs.put("alice", "50")
            with pytest.raises(TxnConflict) as failure:
                kvs.txn(
                    [Request.put("alice", "0"), Request.put("bob", "50")],
                    expects={"alice": "999"},
                )
            assert failure.value.keys == ("alice",)
            assert failure.value.txn_id
            # Atomicity: the guarded shard refused, so the *other* shard's
            # write must not have landed either.
            assert kvs.get("alice") == "50"
            assert kvs.get("bob") is None
            assert_no_dangling_intents(kvs.cluster)

    def test_parked_intent_refuses_a_conflicting_transaction(self):
        with ClusterEngine(
            shards=1, replication=2, backend=BACKEND, timeout=TIMEOUT
        ) as cluster:
            # Park an intent by stalling the decide phase for one txn.
            real_decide = cluster._decide_phase
            cluster._decide_phase = lambda *args: None
            cluster.submit_txn([Request.put("hot", "1")], txn_id="parked")
            settle(cluster)
            cluster._decide_phase = real_decide
            with pytest.raises(TxnConflict) as failure:
                cluster.submit_txn([Request.put("hot", "2")]).result(timeout=30.0)
            assert failure.value.keys == ("hot",)
            # A disjoint write set sails through.
            cluster.submit_txn([Request.put("cold", "3")]).result(timeout=30.0)
            session = cluster.session("shard0")
            assert session.state.facet_for(session.primary)["cold"] == "3"

    def test_validation_rejects_reads_and_empty_sets(self):
        with ClusterEngine(shards=1, replication=1, backend=BACKEND) as cluster:
            with pytest.raises(ValueError):
                cluster.submit_txn([])
            with pytest.raises(ValueError):
                cluster.submit_txn([Request.get("alice")])

    def test_intent_expires_after_ttl_prepares(self):
        # A coordinator that dies before logging its decision must not block
        # its keys forever: the parked intent is presumed aborted once
        # TXN_INTENT_TTL later prepares have advanced the shard's txn clock.
        with ClusterEngine(
            shards=1, replication=2, backend=BACKEND, timeout=TIMEOUT
        ) as cluster:
            real_decide = cluster._decide_phase
            cluster._decide_phase = lambda *args: None  # coordinator "dies"
            cluster.submit_txn([Request.put("hot", "1")], txn_id="orphan")
            settle(cluster)
            cluster._decide_phase = real_decide
            with pytest.raises(TxnConflict):
                cluster.submit_txn([Request.put("hot", "2")]).result(timeout=30.0)
            # Every prepare — grants and refusals alike — ticks the clock.
            for index in range(TXN_INTENT_TTL):
                cluster.submit_txn(
                    [Request.put(f"fill{index}", "x")]
                ).result(timeout=30.0)
            result = cluster.submit_txn(
                [Request.put("hot", "2")]
            ).result(timeout=30.0)
            assert result.committed
            session = cluster.session("shard0")
            head = session.state.facet_for(session.primary)
            assert head["hot"] == "2"
            assert head.get("orphan") is None  # the orphan applied nothing
            assert_no_dangling_intents(cluster)


# ----------------------------------------------------------- client retry pins --


class TestClientRetryContract:
    """``retries=`` applies to idempotent reads only — pinned, not assumed."""

    def _failing(self, counter, exc):
        def fail(*_args, **_kwargs):
            counter[0] += 1
            raise exc

        return fail

    def test_get_is_retried_but_txn_and_batch_are_not(self):
        boom = ChoreographyRuntimeError("shard0.r0", RuntimeError("flake"))
        with ClusterClient(
            shards=1, replication=1, backend=BACKEND, retries=3
        ) as kvs:
            calls = [0]
            kvs.cluster.submit_get = self._failing(calls, boom)
            with pytest.raises(ChoreographyRuntimeError):
                kvs.get("k")
            assert calls[0] == 4  # retries + the final surfaced attempt

            calls = [0]
            kvs.cluster.submit_txn = self._failing(calls, boom)
            with pytest.raises(ChoreographyRuntimeError):
                kvs.txn([Request.put("k", "v")])
            assert calls[0] == 1  # never auto-retried

            calls = [0]
            kvs.cluster.submit_batch = self._failing(calls, boom)
            with pytest.raises(ChoreographyRuntimeError):
                kvs.batch([Request.put("k", "v")])
            assert calls[0] == 1  # never auto-retried

    def test_retried_quorum_get_still_costs_two_client_messages(self):
        # The docstring's promise: a quorum get is two client-side messages
        # per attempt (key out, majority answer back) — the voting stays
        # inside the replica conclave.  A client-level retry re-issues the
        # attempt; it must not multiply the per-attempt client cost.
        with ClusterClient(
            shards=1, replication=3, backend=BACKEND, retries=2
        ) as kvs:
            kvs.put("k", "v")

            def client_messages() -> int:
                return sum(
                    count
                    for (sender, receiver), count in kvs.stats.messages.items()
                    if "client" in (sender, receiver)
                )

            before = client_messages()
            assert kvs.get("k", quorum=True) == "v"
            assert client_messages() - before == 2

            # Fail the first attempt before any message moves; the retry's
            # single re-issue is the only client traffic.
            real = kvs.cluster.submit_get
            state = {"failed": False}

            def flaky(*args, **kwargs):
                if not state["failed"]:
                    state["failed"] = True
                    raise ChoreographyRuntimeError(
                        "shard0.r0", RuntimeError("flake")
                    )
                return real(*args, **kwargs)

            kvs.cluster.submit_get = flaky
            before = client_messages()
            assert kvs.get("k", quorum=True) == "v"
            assert state["failed"]
            assert client_messages() - before == 2


# ----------------------------------------------------------- coordinator crash --


class TestCoordinatorCrash:
    """The classic 2PC windows, exercised through the durable decision log."""

    def _arm_crash(self, cluster, *, after_log: bool):
        """Make the next decide phase die (optionally after logging commit)."""
        real = cluster._decide_phase

        def dying(txn_id, participants, writes_by_shard, votes, failures, outer):
            cluster._decide_phase = real  # one-shot
            granted = not failures and all(
                vote.value == txn_id for vote in votes.values()
            )
            if after_log and granted:
                with cluster._lock:
                    cluster._txn_log[txn_id] = "commit"
            # ...and the coordinator dies before any decide is fanned out.

        cluster._decide_phase = dying

    def test_crash_after_logging_commit_is_finished_forward(self, tmp_path):
        with durable_cluster(tmp_path, shards=2) as cluster:
            kvs = ClusterClient(cluster)
            open_accounts(kvs, 2)
            self._arm_crash(cluster, after_log=True)
            cluster.submit_txn(
                [Request.put("acct00", "40"), Request.put("acct01", "160")],
                txn_id="inflight",
            )
            settle(cluster)
            # The intents are parked: both participants are in doubt.
            assert any(
                "inflight" in table for table in cluster.in_doubt().values()
            )

        # Restart: recover_in_doubt runs in __init__ and, finding the
        # commit record, finishes the transaction forward.
        with durable_cluster(tmp_path, shards=2) as reopened:
            kvs = ClusterClient(reopened)
            assert kvs.get("acct00") == "40"
            assert kvs.get("acct01") == "160"
            assert reopened.in_doubt() == {}
            assert_no_dangling_intents(reopened)

    def test_crash_before_logging_is_presumed_abort(self, tmp_path):
        with durable_cluster(tmp_path, shards=2) as cluster:
            kvs = ClusterClient(cluster)
            open_accounts(kvs, 2)
            self._arm_crash(cluster, after_log=False)
            cluster.submit_txn(
                [Request.put("acct00", "40"), Request.put("acct01", "160")],
                txn_id="doomed",
            )
            settle(cluster)

        with durable_cluster(tmp_path, shards=2) as reopened:
            kvs = ClusterClient(reopened)
            # No decision record -> presumed abort: nothing applied, and the
            # rolled-back keys serve new transactions immediately.
            assert kvs.get("acct00") == str(OPENING)
            assert kvs.get("acct01") == str(OPENING)
            assert reopened.in_doubt() == {}
            assert_no_dangling_intents(reopened)
            result = kvs.txn([Request.put("acct00", "70")])
            assert result.committed
            assert kvs.get("acct00") == "70"

    def test_recovery_is_idempotent_and_reports_verdicts(self, tmp_path):
        with durable_cluster(tmp_path, shards=2) as cluster:
            kvs = ClusterClient(cluster)
            open_accounts(kvs, 2)
            self._arm_crash(cluster, after_log=True)
            cluster.submit_txn(
                [Request.put("acct00", "40"), Request.put("acct01", "160")],
                txn_id="inflight",
            )
            settle(cluster)

        with durable_cluster(tmp_path, shards=2) as reopened:
            # __init__ already recovered; an explicit re-run finds nothing.
            assert reopened.recover_in_doubt() == {}
            assert ClusterClient(reopened).get("acct00") == "40"


# ------------------------------------------------------------------ concurrency --


class TestConcurrentTransfers:
    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(
        moves=st.lists(
            st.tuples(
                st.integers(0, ACCOUNTS - 1),
                st.integers(0, ACCOUNTS - 1),
                st.integers(1, 9),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_pipelined_transfers_conserve_the_total_balance(self, moves):
        # All transfers are submitted concurrently with *pre-read* guards,
        # so overlapping write sets race for the same intents: some commit,
        # the rest abort with TxnConflict.  The invariant is that every
        # outcome is atomic — the total balance never drifts.
        with ClusterClient(
            shards=2, replication=2, backend=BACKEND, timeout=TIMEOUT
        ) as kvs:
            open_accounts(kvs)
            books = balances(kvs)
            futures = []
            for src_i, dst_i, amount in moves:
                if src_i == dst_i:
                    continue
                src, dst = f"acct{src_i:02d}", f"acct{dst_i:02d}"
                futures.append(
                    kvs.txn_async(
                        [
                            Request.put(src, str(books[src] - amount)),
                            Request.put(dst, str(books[dst] + amount)),
                        ],
                        expects={src: str(books[src]), dst: str(books[dst])},
                    )
                )
            committed = 0
            for future in futures:
                try:
                    assert future.result(timeout=30.0).committed
                    committed += 1
                except TxnAborted:
                    pass  # lost the race; applied nothing
            final = balances(kvs)
            assert sum(final.values()) == ACCOUNTS * OPENING
            if committed == 0:
                assert final == books
            assert kvs.cluster.in_doubt() == {}
            assert_no_dangling_intents(kvs.cluster)


# ------------------------------------------------------------------- acceptance --


def run_transfers_under_faults(seed: int, plan: FaultPlan, transfers: int = 25):
    """Drive the transfer workload under ``plan``; return the evidence."""
    with ClusterClient(
        shards=2, replication=3, backend=BACKEND, timeout=TIMEOUT, faults=plan
    ) as kvs:
        open_accounts(kvs)
        for src, dst, amount in transfer_plan(transfers, seed=seed):
            transfer(kvs, src, dst, amount)
        final = balances(kvs)
        assert sum(final.values()) == ACCOUNTS * OPENING
        assert kvs.cluster.in_doubt() == {}
        assert_no_dangling_intents(kvs.cluster)
        schedules = {
            shard_id: kvs.cluster.session(shard_id).engine.transport.faults.schedule()
            for shard_id in kvs.shards
        }
        return final, schedules, list(kvs.cluster.promotions)


class TestAcceptance:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_participant_crash_mid_prepare_conserves_balance(self, seed):
        plan = FaultPlan(seed=seed).crash("shard0.r1", after_ops=15)
        final, schedules, _promotions = run_transfers_under_faults(seed, plan)
        assert any(
            event[2] == "crash" for shard in schedules.values() for event in shard
        )
        assert sum(final.values()) == ACCOUNTS * OPENING

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_primary_promotion_mid_transaction_conserves_balance(self, seed):
        plan = FaultPlan(seed=seed).crash("shard0.r0", after_ops=20)
        final, _schedules, promotions = run_transfers_under_faults(seed, plan)
        assert promotions  # the head actually fell mid-workload
        assert sum(final.values()) == ACCOUNTS * OPENING

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_faulty_run_converges_with_the_fault_free_twin(self, seed):
        # Transfers commute and aborts apply nothing, so retry-until-commit
        # makes the final books a pure function of the transfer plan: the
        # crashed run must land byte-identical to the clean one.
        plan = FaultPlan(seed=seed).crash("shard0.r1", after_ops=15)
        faulty, _schedules, _promotions = run_transfers_under_faults(seed, plan)
        with ClusterClient(
            shards=2, replication=3, backend=BACKEND, timeout=TIMEOUT
        ) as clean:
            open_accounts(clean)
            for src, dst, amount in transfer_plan(25, seed=seed):
                transfer(clean, src, dst, amount)
            assert balances(clean) == faulty

    def test_identical_seed_reproduces_the_identical_run(self):
        seed = CHAOS_SEEDS[0]
        plan = lambda: FaultPlan(seed=seed).crash("shard0.r1", after_ops=15)  # noqa: E731
        first = run_transfers_under_faults(seed, plan(), transfers=12)
        second = run_transfers_under_faults(seed, plan(), transfers=12)
        assert first[0] == second[0]  # final books
        assert first[1] == second[1]  # injected fault schedules

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_coordinator_crash_mid_workload_loses_no_committed_transfer(
        self, seed, tmp_path
    ):
        # Half the plan commits normally; then the coordinator dies after
        # logging a commit decision for an in-flight transfer.  The restart
        # must finish that transfer forward and conserve the total balance.
        moves = transfer_plan(12, seed=seed)
        with durable_cluster(tmp_path, shards=2, replication=2) as cluster:
            kvs = ClusterClient(cluster)
            open_accounts(kvs)
            for src, dst, amount in moves[:6]:
                transfer(kvs, src, dst, amount)
            books = balances(kvs)
            src, dst, amount = moves[6]  # transfer_plan never picks src == dst
            real = cluster._decide_phase

            def dying(txn_id, participants, writes_by_shard, votes, failures, outer):
                cluster._decide_phase = real
                granted = not failures and all(
                    vote.value == txn_id for vote in votes.values()
                )
                assert granted  # pre-read guards: nothing contends
                with cluster._lock:
                    cluster._txn_log[txn_id] = "commit"

            cluster._decide_phase = dying
            cluster.submit_txn(
                [
                    Request.put(src, str(books[src] - amount)),
                    Request.put(dst, str(books[dst] + amount)),
                ],
                expects={src: str(books[src]), dst: str(books[dst])},
            )
            settle(cluster)

        with durable_cluster(tmp_path, shards=2, replication=2) as reopened:
            kvs = ClusterClient(reopened)
            final = balances(kvs)
            # The logged commit was finished forward on restart...
            assert final[src] == books[src] - amount
            assert final[dst] == books[dst] + amount
            # ...and nothing anywhere was lost or double-applied.
            assert sum(final.values()) == ACCOUNTS * OPENING
            assert reopened.in_doubt() == {}
            assert_no_dangling_intents(reopened)
