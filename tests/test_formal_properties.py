"""Metatheory checkers on hand-written λC programs (progress, preservation,
EPP soundness/completeness, deadlock freedom)."""

from __future__ import annotations

import pytest

from repro.formal.generators import program_corpus, random_program, value_of
from repro.formal.properties import (
    check_all,
    check_deadlock_freedom,
    check_preservation,
    check_progress,
    check_projection,
)
from repro.formal.syntax import (
    App,
    Case,
    Com,
    Inl,
    Inr,
    Lam,
    Pair,
    ProdData,
    SumData,
    TData,
    Unit,
    UnitData,
    Var,
    parties,
)
from repro.formal.typecheck import typecheck

UNIT = UnitData()


def kvs_like_choreography():
    """A small λC analogue of the KVS: the client sends a request (a sum) to the
    servers, who branch on it together inside a conclave; the branch result is
    located at s1 only, and s1 replies to the client *after* the conclave."""
    client_request = Inl(Unit(parties("client")), UNIT)
    shared = App(Com("client", parties("s1", "s2")), client_request)
    # Each branch narrows the (multiply-located) request down to s1 alone.
    left = App(Com("s1", parties("s1")), Var("req"))
    right = Unit(parties("s1"))
    handled = Case(parties("s1", "s2"), shared, "req", left, "req", right)
    return App(Com("s1", parties("client")), handled)


def broadcast_then_branch():
    """One party multicasts a boolean-like sum; the recipients branch and the
    chosen branch does a further communication among themselves only."""
    scrutinee = App(Com("a", parties("b", "c", "d")), Inr(Unit(parties("a")), UNIT))
    left = Unit(parties("d"))
    right = App(Com("b", parties("d")), Var("x"))
    return Case(parties("b", "c", "d"), scrutinee, "x", left, "x", right)


def higher_order_example():
    """A located function applied to communicated data.

    The lambda's owners form a conclave of {b, c}; its body forwards the
    argument from b to c, so applying it to data that a sent to b chains two
    communications through a function abstraction.
    """
    lam = Lam(
        "x",
        TData(UNIT, parties("b")),
        App(Com("b", parties("c")), Var("x")),
        parties("b", "c"),
    )
    argument = App(Com("a", parties("b")), Unit(parties("a")))
    return App(lam, argument)


EXAMPLES = {
    "kvs-like": (parties("client", "s1", "s2"), kvs_like_choreography()),
    "broadcast-branch": (parties("a", "b", "c", "d"), broadcast_then_branch()),
    "higher-order": (parties("a", "b", "c"), higher_order_example()),
}


@pytest.mark.parametrize("name", sorted(EXAMPLES))
class TestHandWrittenPrograms:
    def test_typechecks(self, name):
        census, program = EXAMPLES[name]
        typecheck(census, program)

    def test_progress(self, name):
        census, program = EXAMPLES[name]
        assert check_progress(census, program)

    def test_preservation(self, name):
        census, program = EXAMPLES[name]
        report = check_preservation(census, program)
        assert report, report.details

    def test_projection_agrees_with_central_semantics(self, name):
        census, program = EXAMPLES[name]
        report = check_projection(census, program, schedules=4)
        assert report, report.details

    def test_deadlock_freedom(self, name):
        census, program = EXAMPLES[name]
        report = check_deadlock_freedom(census, program, schedules=4)
        assert report, report.details


class TestCheckersRejectBadInput:
    def test_ill_typed_program_is_reported_not_crashed(self):
        census = parties("a", "b")
        bad = App(Com("a", parties("z")), Unit(parties("a")))
        assert not check_progress(census, bad)
        assert not check_preservation(census, bad)
        assert not check_projection(census, bad)
        assert not check_deadlock_freedom(census, bad)

    def test_check_all_covers_every_property(self):
        census, program = EXAMPLES["kvs-like"]
        reports = check_all(census, program)
        assert set(reports) == {"preservation", "progress", "projection", "deadlock_freedom"}
        assert all(reports.values())


class TestGenerators:
    def test_random_program_is_deterministic_per_seed(self):
        assert random_program(7) == random_program(7)
        assert random_program(7) != random_program(8)

    def test_corpus_programs_typecheck(self):
        for census, program in program_corpus(25, depth=3):
            typecheck(census, program)

    def test_corpus_has_varied_shapes(self):
        kinds = {type(program).__name__ for _census, program in program_corpus(40, depth=3)}
        assert len(kinds) >= 2

    def test_value_of_builds_values_of_requested_type(self):
        owners = parties("a", "b")
        data = ProdData(SumData(UNIT, UNIT), UNIT)
        value = value_of(data, owners)
        observed = typecheck(owners, value)
        assert observed == TData(data, owners)


class TestCorpusMetatheory:
    """The executable counterpart of the paper's Theorems 2–5 and Corollary 1,
    over a reproducible random corpus (the hypothesis suite widens this)."""

    CORPUS = program_corpus(30, depth=3)

    @pytest.mark.parametrize("index", range(0, 30, 3))
    def test_all_properties_hold(self, index):
        census, program = self.CORPUS[index]
        reports = check_all(census, program, seed=index)
        failed = {name: report.details for name, report in reports.items() if not report}
        assert not failed, failed
