"""Tests for the DPrio lottery case study (App. C)."""

from __future__ import annotations

import pytest

from repro.core.errors import ChoreographyRuntimeError
from repro.protocols.dprio import DEFAULT_FIELD, CommitmentError, LotteryOutcome, lottery
from repro.runtime.central import CentralOp, run_centralized
from repro.runtime.runner import run_choreography

SERVERS = ["sv1", "sv2", "sv3"]
CLIENTS = ["c1", "c2", "c3", "c4"]
ANALYST = "analyst"
CENSUS = [ANALYST] + SERVERS + CLIENTS
SECRETS = {"c1": 101, "c2": 202, "c3": 303, "c4": 404}


def run_lottery(seed=0, servers=SERVERS, clients=CLIENTS, secrets=SECRETS, timeout=30.0, **kwargs):
    census = [ANALYST] + list(servers) + list(clients)

    def chor(op):
        return lottery(
            op, servers, clients, ANALYST, client_secrets=secrets, seed=seed, **kwargs
        )

    return run_choreography(chor, census, timeout=timeout)


class TestLotteryCorrectness:
    def test_analyst_reconstructs_exactly_one_client_secret(self):
        result = run_lottery(seed=1)
        outcome = result.value_at(ANALYST)
        assert isinstance(outcome, LotteryOutcome)
        assert outcome.value in SECRETS.values()
        assert outcome.field == DEFAULT_FIELD

    def test_only_the_analyst_learns_the_outcome(self):
        result = run_lottery(seed=1)
        for location in SERVERS + CLIENTS:
            assert result.value_at(location) is None

    def test_different_seeds_can_choose_different_clients(self):
        winners = {run_lottery(seed=seed).value_at(ANALYST).value for seed in range(8)}
        assert len(winners) > 1
        assert winners <= set(SECRETS.values())

    def test_deterministic_per_seed(self):
        assert (
            run_lottery(seed=3).value_at(ANALYST).value
            == run_lottery(seed=3).value_at(ANALYST).value
        )

    @pytest.mark.parametrize("n_servers,n_clients", [(2, 2), (2, 5), (4, 3)])
    def test_census_polymorphism_over_group_sizes(self, n_servers, n_clients):
        servers = [f"s{i}" for i in range(n_servers)]
        clients = [f"c{i}" for i in range(n_clients)]
        secrets = {client: 1000 + index for index, client in enumerate(clients)}
        result = run_lottery(seed=2, servers=servers, clients=clients, secrets=secrets)
        assert result.value_at(ANALYST).value in secrets.values()

    def test_random_secrets_when_none_supplied(self):
        result = run_lottery(seed=5, secrets=None)
        outcome = result.value_at(ANALYST)
        assert 0 <= outcome.value < DEFAULT_FIELD

    def test_centralized_run_matches_projected_run(self):
        projected = run_lottery(seed=4).value_at(ANALYST)
        central = run_centralized(
            lambda op: lottery(op, SERVERS, CLIENTS, ANALYST, client_secrets=SECRETS, seed=4),
            CENSUS,
        )
        assert central.peek() == projected


class TestLotterySecurityShape:
    def test_clients_never_talk_to_the_analyst_directly(self):
        result = run_lottery(seed=1)
        for client in CLIENTS:
            assert result.stats.messages.get((client, ANALYST), 0) == 0

    def test_analyst_receives_exactly_one_share_per_server(self):
        result = run_lottery(seed=1)
        for server in SERVERS:
            assert result.stats.messages.get((server, ANALYST), 0) == 1

    def test_each_client_sends_one_share_per_server(self):
        result = run_lottery(seed=1)
        for client in CLIENTS:
            assert result.stats.messages_sent_by(client) == len(SERVERS)

    def test_commit_before_reveal_ordering(self):
        """Servers exchange 3 rounds of server↔server traffic: commitments,
        salts, and openings — i.e. 3·s·(s−1) messages among servers."""
        result = run_lottery(seed=1)
        server_to_server = sum(
            count
            for (src, dst), count in result.stats.snapshot().items()
            if src in SERVERS and dst in SERVERS
        )
        s = len(SERVERS)
        assert server_to_server == 3 * s * (s - 1)

    def test_cheating_server_is_detected(self):
        with pytest.raises(ChoreographyRuntimeError) as err:
            run_lottery(seed=1, cheating_server="sv2", timeout=2.0)
        assert isinstance(err.value.original, CommitmentError)

    def test_honest_run_raises_nothing_even_with_adversarial_seed_sweep(self):
        for seed in range(5):
            run_lottery(seed=seed)


class TestLotteryFairness:
    def test_winner_distribution_is_roughly_uniform(self):
        """With at least one honest server the chosen index is uniform; over
        many seeds every client should win at least once and no client should
        dominate."""
        clients = ["c1", "c2", "c3"]
        secrets = {"c1": 1, "c2": 2, "c3": 3}
        wins = {value: 0 for value in secrets.values()}
        runs = 30
        for seed in range(runs):
            outcome = run_centralized(
                lambda op, _seed=seed: lottery(
                    op, ["s1", "s2"], clients, ANALYST, client_secrets=secrets, seed=_seed
                ),
                [ANALYST, "s1", "s2"] + clients,
            )
            wins[outcome.peek().value] += 1
        assert all(count > 0 for count in wins.values())
        assert max(wins.values()) < 0.7 * runs
