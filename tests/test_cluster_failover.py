"""Chaos suite, part 2: cluster failover under injected faults.

The promise under test: with a seeded :class:`FaultPlan` killing replicas and
shaking the network, every workload against the sharded KVS either completes
with **correct final contents** or fails with a **diagnosable, typed error**
— and never hangs.  Concretely:

* a dead *backup* is detected (via the crash report or the chain of
  :class:`ChoreoTimeout` blames), demoted, and routed around through the
  zero-backup degradation path; in-flight submits are replayed and resolve;
* ``cluster.health()`` reports the degraded replica, ``probe()`` detects it
  actively through :func:`~repro.protocols.kvs.kvs_ping`;
* a dead *primary* is failed over: the senior surviving backup is promoted
  under a bumped, fenced shard epoch, in-flight submits are replayed, and
  the promotion lands in the ``promotions`` audit trail (only a shard whose
  *last* replica dies still fails loudly — see
  ``tests/test_cluster_promotion.py`` for the full promotion suite);
* the whole thing is reproducible: the same seed yields the same injected
  schedule on the simulated backend, twice in a row.

Timeouts here are deliberately short (a fraction of a second): a failover
test pays one receive timeout per detection, and the suite must stay cheap
enough to ride in tier-1.  ``CHAOS_SEED`` widens the seed sweep in CI.
"""

from __future__ import annotations

import os
import random

import pytest

from repro import ClusterClient, ClusterEngine, FaultPlan
from repro.core.errors import ChoreographyRuntimeError, ChoreoTimeout
from repro.protocols.kvs import Request, ResponseKind

CHAOS_SEEDS = [int(raw) for raw in os.environ.get("CHAOS_SEED", "7").split(",")]

#: Backends the failover suite sweeps.  ``simulated`` is the deterministic
#: workhorse; ``tcp`` gets a smoke pass in its own test below.
BACKEND = "simulated"

#: Short receive timeout: detection latency is one timeout in the worst case.
TIMEOUT = 0.3


def ycsb_a(op_count: int, *, seed: int, keys: int = 64):
    """A YCSB-A-shaped op stream: 50/50 read/update over a zipfish keyset."""
    rng = random.Random(seed)
    ranks = list(range(keys))
    weights = [1.0 / (rank + 1) ** 0.99 for rank in ranks]  # zipfian-ish skew
    ops = []
    for index in range(op_count):
        key = f"user:{rng.choices(ranks, weights)[0]:04d}"
        if rng.random() < 0.5:
            ops.append(("put", key, f"v{index}"))
        else:
            ops.append(("get", key))
    return ops


def drive(client: ClusterClient, ops, model: "dict | None" = None) -> dict:
    """Run an op stream through the blocking client, tracking a model dict.

    Pass ``model`` to resume a run mid-stream (the recovery suite pauses a
    workload to re-join a replica, then drives the second half).
    """
    if model is None:
        model = {}
    for op in ops:
        if op[0] == "put":
            _kind, key, value = op
            client.put(key, value)
            model[key] = value
        else:
            _kind, key = op
            assert client.get(key) == model.get(key), f"stale read at {key}"
    return model


# --------------------------------------------------------------- health & ping --


class TestHealthAndProbe:
    def test_health_starts_all_up(self):
        with ClusterEngine(shards=2, replication=2, backend=BACKEND) as cluster:
            health = cluster.health()
            assert set(health) == {"shard0", "shard1"}
            for shard in health.values():
                assert not shard.degraded
                assert shard.down == ()
                assert set(shard.replicas.values()) == {"up"}

    def test_probe_reports_live_replicas(self):
        with ClusterEngine(shards=1, replication=3, backend=BACKEND) as cluster:
            report = cluster.probe()
            assert report == {
                "shard0": {"shard0.r0": True, "shard0.r1": True, "shard0.r2": True}
            }
            assert not cluster.health()["shard0"].degraded

    def test_probe_detects_and_demotes_a_crashed_backup(self):
        plan = FaultPlan(seed=3).crash("shard0.r1", after_ops=0)
        with ClusterEngine(
            shards=1, replication=3, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as cluster:
            report = cluster.probe("shard0")
            assert report["shard0"]["shard0.r1"] is False
            assert report["shard0"]["shard0.r0"] is True
            health = cluster.health()["shard0"]
            assert health.degraded
            assert health.down == ("shard0.r1",)
            assert health.replicas["shard0.r1"] == "down"
            # Detection is sticky and probe stays idempotent.
            assert cluster.probe("shard0")["shard0"]["shard0.r1"] is False
            assert cluster.failovers == [("shard0", "shard0.r1")]

    def test_probe_does_not_demote_on_client_side_failures(self):
        # The client's link to r1 is broken, but r1 itself is healthy: the
        # probe must report it unreachable *without* kicking it out of the
        # replica group — the blame chain sinks at the client, not at r1.
        plan = FaultPlan(seed=3).flaky_connect(
            "client", "shard0.r1", failures=10, max_retries=0
        )
        with ClusterEngine(
            shards=1, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as cluster:
            report = cluster.probe("shard0")
            assert report["shard0"]["shard0.r1"] is False  # honest: unreachable
            assert not cluster.health()["shard0"].degraded  # but not demoted
            assert cluster.failovers == []

    def test_probe_promotes_past_a_crashed_primary(self):
        plan = FaultPlan(seed=3).crash("shard0.r0", after_ops=0)
        with ClusterEngine(
            shards=1, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as cluster:
            report = cluster.probe("shard0")
            assert report["shard0"]["shard0.r0"] is False
            health = cluster.health()["shard0"]
            assert health.replicas["shard0.r0"] == "down"
            assert health.primary == "shard0.r1"  # the senior surviving backup
            assert health.epoch == 1
            assert health.roles["shard0.r1"] == "primary"
            assert cluster.failovers == [("shard0", "shard0.r0")]
            assert [p.new_primary for p in cluster.promotions] == ["shard0.r1"]


# -------------------------------------------------------------------- failover --


class TestBackupFailover:
    def test_puts_survive_a_backup_crash(self):
        plan = FaultPlan(seed=7).crash("shard0.r1", after_ops=10)
        with ClusterClient(
            shards=1, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as kvs:
            model = {}
            for index in range(20):
                key, value = f"k{index % 6}", f"v{index}"
                kvs.put(key, value)
                model[key] = value
            assert kvs.scan() == sorted(model.items())
            assert kvs.health()["shard0"].down == ("shard0.r1",)
            assert kvs.cluster.failovers == [("shard0", "shard0.r1")]

    def test_gets_survive_a_backup_crash(self):
        plan = FaultPlan(seed=7).crash("shard0.r1", after_ops=11)
        with ClusterClient(
            shards=1, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as kvs:
            kvs.put("stable", "value")
            for _ in range(12):  # the crash lands under one of these reads
                assert kvs.get("stable") == "value"
            assert kvs.health()["shard0"].degraded

    def test_degraded_shard_stops_talking_to_the_dead_backup(self):
        plan = FaultPlan(seed=7).crash("shard0.r1", after_ops=6)
        with ClusterClient(
            shards=1, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as kvs:
            for index in range(8):
                kvs.put(f"k{index}", "x")
            stats = kvs.cluster.per_shard_stats()["shard0"]
            to_dead_before = stats.snapshot().get(("shard0.r0", "shard0.r1"), 0)
            for index in range(8):
                kvs.put(f"post{index}", "y")
            to_dead_after = stats.snapshot().get(("shard0.r0", "shard0.r1"), 0)
            assert to_dead_after == to_dead_before  # degraded binding skips it

    def test_inflight_pipelined_submits_are_replayed(self):
        plan = FaultPlan(seed=7).crash("shard0.r1", after_ops=4)
        with ClusterEngine(
            shards=1, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as cluster:
            futures = [cluster.submit_put(f"key{i}", f"value{i}") for i in range(5)]
            for index, future in enumerate(futures):
                response = cluster.response_of(future.result(timeout=30.0))
                assert response.kind in (ResponseKind.FOUND, ResponseKind.NOT_FOUND)
            primary_state = cluster.session("shard0").state.facet_for("shard0.r0")
            assert {f"key{i}": f"value{i}" for i in range(5)} == dict(primary_state)
            assert cluster.health()["shard0"].degraded

    def test_quorum_reads_work_on_the_degraded_shard(self):
        plan = FaultPlan(seed=7).crash("shard0.r1", after_ops=8)
        with ClusterClient(
            shards=1, replication=3, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as kvs:
            for index in range(6):
                kvs.put(f"q{index}", f"v{index}")
            assert kvs.health()["shard0"].down == ("shard0.r1",)
            # Quorum now votes over primary + the surviving backup only.
            for index in range(6):
                assert kvs.get(f"q{index}", quorum=True) == f"v{index}"

    def test_batches_survive_a_backup_crash(self):
        plan = FaultPlan(seed=7).crash("shard0.r1", after_ops=5)
        with ClusterClient(
            shards=2, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as kvs:
            requests = []
            for index in range(30):
                requests.append(Request.put(f"b{index}", f"v{index}"))
                requests.append(Request.get(f"b{index}"))
            responses = kvs.batch(requests)
            assert len(responses) == 60
            for index in range(30):
                assert responses[2 * index + 1].value == f"v{index}"

    def test_replication_three_degrades_twice(self):
        plan = (
            FaultPlan(seed=7)
            .crash("shard0.r1", after_ops=6)
            .crash("shard0.r2", after_ops=30)
        )
        with ClusterClient(
            shards=1, replication=3, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as kvs:
            model = {}
            for index in range(25):
                key, value = f"k{index % 7}", f"v{index}"
                kvs.put(key, value)
                model[key] = value
            assert kvs.scan() == sorted(model.items())
            health = kvs.health()["shard0"]
            assert set(health.down) == {"shard0.r1", "shard0.r2"}
            assert health.replicas["shard0.r0"] == "up"

    def test_primary_crash_fails_over_and_spares_other_shards(self):
        plan = FaultPlan(seed=7).crash("shard1.r0", after_ops=0)
        with ClusterClient(
            shards=2, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan,
            retries=0,
        ) as kvs:
            doomed = healthy = None
            for index in range(40):
                shard = kvs.cluster.shard_for(f"probe{index}")
                if shard == "shard1" and doomed is None:
                    doomed = f"probe{index}"
                if shard == "shard0" and healthy is None:
                    healthy = f"probe{index}"
            # The put pays the detection timeout, then the surviving backup
            # is promoted and the submit is replayed against the new head.
            kvs.put(doomed, "x")
            assert kvs.get(doomed) == "x"
            assert ("shard1", "shard1.r0") in kvs.cluster.failovers
            promotion = kvs.cluster.promotions[0]
            assert promotion.shard_id == "shard1"
            assert promotion.old_primary == "shard1.r0"
            assert promotion.new_primary == "shard1.r1"
            assert promotion.epoch == 1
            # The other shard is untouched.
            kvs.put(healthy, "ok")
            assert kvs.get(healthy) == "ok"
            health = kvs.health()
            assert health["shard1"].primary == "shard1.r1"
            assert health["shard0"].primary == "shard0.r0"
            assert health["shard0"].epoch == 0

    def test_client_retries_transient_reads(self):
        # The first two client→primary sends fail outright (no internal
        # retry budget): without client-side retry the get would surface a
        # TransportError; with retries=2 the third attempt lands.
        plan = FaultPlan(seed=7).flaky_connect(
            "client", "shard0.r0", failures=2, max_retries=0
        )
        with ClusterClient(
            shards=1, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan,
            retries=2,
        ) as kvs:
            assert kvs.get("missing") is None
            assert kvs.scan() == []

    def test_client_retry_budget_zero_surfaces_the_failure(self):
        plan = FaultPlan(seed=7).flaky_connect(
            "client", "shard0.r0", failures=2, max_retries=0
        )
        with ClusterClient(
            shards=1, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan,
            retries=0,
        ) as kvs:
            with pytest.raises(ChoreographyRuntimeError):
                kvs.get("missing")

    def test_client_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            ClusterClient(retries=-1, shards=1, replication=1)


# ------------------------------------------------------------------ acceptance --


def run_ycsb_with_crash(seed: int, op_count: int = 1000):
    """The acceptance workload: YCSB-A with one backup crashing mid-run."""
    plan = FaultPlan(seed=seed).crash("shard0.r1", after_ops=60)
    with ClusterClient(
        shards=2, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan
    ) as kvs:
        model = drive(kvs, ycsb_a(op_count, seed=seed))
        scan = kvs.scan()
        health = kvs.health()
        schedules = {
            shard_id: kvs.cluster.session(shard_id).engine.transport.faults.schedule()
            for shard_id in kvs.shards
        }
        failovers = list(kvs.cluster.failovers)
    return model, scan, health, schedules, failovers


class TestAcceptance:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_ycsb_a_with_backup_crash_stays_correct_and_reports_degraded(self, seed):
        model, scan, health, schedules, failovers = run_ycsb_with_crash(seed)
        assert scan == sorted(model.items())
        assert health["shard0"].degraded
        assert health["shard0"].replicas["shard0.r1"] == "down"
        assert ("shard0", "shard0.r1") in failovers
        assert any(
            event[2] == "crash" for shard in schedules.values() for event in shard
        )

    def test_identical_seed_reproduces_the_identical_schedule(self):
        seed = CHAOS_SEEDS[0]
        first = run_ycsb_with_crash(seed, op_count=200)
        second = run_ycsb_with_crash(seed, op_count=200)
        assert first[3] == second[3]  # injected schedules, per shard
        assert first[1] == second[1]  # final contents
        assert first[4] == second[4]  # failover audit trail


# ------------------------------------------------------------------ tcp backend --


class TestTCPFailover:
    def test_backup_crash_failover_over_sockets(self):
        plan = FaultPlan(seed=11).delay(jitter=0.002, rate=0.3).crash(
            "shard0.r1", after_ops=8
        )
        with ClusterClient(
            shards=1, replication=2, backend="tcp", timeout=0.5, faults=plan
        ) as kvs:
            model = {}
            for index in range(12):
                key, value = f"k{index % 4}", f"v{index}"
                kvs.put(key, value)
                model[key] = value
            assert kvs.scan() == sorted(model.items())
            assert kvs.health()["shard0"].down == ("shard0.r1",)
