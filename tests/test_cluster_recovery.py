"""Chaos suite, part 3: durability and full recovery (crash → restart → re-join).

PR 5 proved the cluster *degrades* correctly; this suite proves it *heals*.
The promises under test:

* with ``durability=`` on, every acknowledged mutation survives a cluster
  close/reopen — and a replica's store survives its own crash, because the
  WAL was written ahead of memory;
* a crashed, demoted backup can be re-admitted:
  :meth:`~repro.cluster.ClusterEngine.rejoin_backup` restarts it (reviving
  its transport endpoints and replaying its on-disk state), catches it up to
  the primary through the hash-verified
  :func:`~repro.protocols.kvs.kvs_catchup` choreography, and re-binds the
  shard — after which the backup replicates new writes again and
  ``health()`` reports the shard non-degraded;
* the acceptance bar: a 1k-op YCSB-A run with a mid-workload backup crash
  followed by restart + re-join converges to the **byte-identical** final
  state of the fault-free run with the same seed;
* racing submits against the control plane fail with *typed* errors
  (:class:`~repro.cluster.ClusterClosed`,
  :class:`~repro.cluster.ClusterRebalancing`) instead of hanging;
* ``add_shard``'s copy-then-delete claim holds under injected faults: a
  crash mid-migration leaves every moved key intact at its old home.

Like the failover suite, everything runs on the deterministic ``simulated``
backend with deliberately short timeouts; ``CHAOS_SEED`` widens the seed
sweep in CI.
"""

from __future__ import annotations

import os

import pytest

from repro import (
    ClusterClient,
    ClusterClosed,
    ClusterEngine,
    ClusterRebalancing,
    FaultPlan,
    RejoinError,
    rejoin_backup,
)
from repro.core.errors import ChoreographyRuntimeError
from tests.test_cluster_failover import BACKEND, CHAOS_SEEDS, TIMEOUT, drive, ycsb_a


def durable_cluster(root, **overrides):
    options = dict(
        shards=1, replication=2, backend=BACKEND, timeout=TIMEOUT,
        durability=str(root),
    )
    options.update(overrides)
    return ClusterEngine(**options)


# ------------------------------------------------------------------- durability --


class TestDurableCluster:
    def test_writes_survive_close_and_reopen(self, tmp_path):
        with durable_cluster(tmp_path) as cluster:
            kvs = ClusterClient(cluster)
            model = {f"k{i}": f"v{i}" for i in range(24)}
            for key, value in model.items():
                kvs.put(key, value)
        with durable_cluster(tmp_path) as reopened:
            assert ClusterClient(reopened).scan() == sorted(model.items())

    def test_deletes_and_overwrites_survive(self, tmp_path):
        with durable_cluster(tmp_path) as cluster:
            kvs = ClusterClient(cluster)
            kvs.put("keep", "v1")
            kvs.put("keep", "v2")  # overwrite
            kvs.put("drop", "x")
            assert kvs.delete("drop") == "x"  # replicated data-plane delete
        with durable_cluster(tmp_path) as reopened:
            assert ClusterClient(reopened).scan() == [("keep", "v2")]

    def test_delete_wal_records_replay_on_every_replica(self, tmp_path):
        # The delete must be WAL-logged on primary *and* backup: after a
        # cold restart both replicas replay to the post-delete state, so a
        # failover cannot resurrect the dropped key.
        with durable_cluster(tmp_path) as cluster:
            kvs = ClusterClient(cluster)
            for index in range(8):
                kvs.put(f"k{index}", f"v{index}")
            for index in range(0, 8, 2):
                kvs.delete(f"k{index}")
        with durable_cluster(tmp_path) as reopened:
            session = reopened.session("shard0")
            survivors = sorted(f"k{i}" for i in range(1, 8, 2))
            for replica in session.servers:
                facet = session.state.facet_for(replica)
                assert sorted(facet) == survivors

    def test_delete_then_reput_survives_restart(self, tmp_path):
        # WAL replay is order-sensitive: del then put must net out to the
        # re-put value, not the delete.
        with durable_cluster(tmp_path) as cluster:
            kvs = ClusterClient(cluster)
            kvs.put("k", "first")
            kvs.delete("k")
            kvs.put("k", "second")
        with durable_cluster(tmp_path) as reopened:
            assert ClusterClient(reopened).get("k") == "second"

    def test_durability_accepts_config_object(self, tmp_path):
        from repro.storage import Durability

        config = Durability(root=str(tmp_path), fsync="never", snapshot_every=4)
        with durable_cluster(tmp_path, durability=config) as cluster:
            kvs = ClusterClient(cluster)
            for i in range(12):  # crosses several snapshot boundaries
                kvs.put(f"k{i}", str(i))
            assert cluster.durability.snapshot_every == 4
        with durable_cluster(tmp_path, durability=config) as reopened:
            assert len(ClusterClient(reopened).scan()) == 12

    def test_replica_directories_follow_the_layout(self, tmp_path):
        with durable_cluster(tmp_path) as cluster:
            ClusterClient(cluster).put("k", "v")
        for replica in ("shard0.r0", "shard0.r1"):
            assert (tmp_path / "shard0" / replica / "wal.bin").exists()


# ----------------------------------------------------------------------- rejoin --


def crash_then_detect(cluster, kvs, *, ops=30):
    """Drive puts until the planned backup crash is detected and demoted."""
    model = {}
    for index in range(ops):
        key, value = f"k{index % 8}", f"v{index}"
        kvs.put(key, value)
        model[key] = value
        if cluster.failovers:
            return model
    raise AssertionError("planned crash was never detected")


class TestRejoin:
    def test_rejoin_restores_replication(self, tmp_path):
        plan = FaultPlan(seed=11).crash("shard0.r1", after_ops=40)
        with durable_cluster(tmp_path, faults=plan) as cluster:
            kvs = ClusterClient(cluster)
            model = crash_then_detect(cluster, kvs, ops=60)
            assert cluster.health()["shard0"].replicas["shard0.r1"] == "down"

            report = cluster.rejoin_backup("shard0", "shard0.r1")
            assert report.replica == "shard0.r1"
            assert report.mode == "delta"  # WAL replay left only a small gap
            assert not report.fell_back
            assert report.replayed_records > 0
            assert report.replay_seconds >= 0 and report.catchup_seconds >= 0

            health = cluster.health()["shard0"]
            assert not health.degraded
            assert health.replicas["shard0.r1"] == "up"
            assert health.down == ()
            assert cluster.rejoins == [report]

            # The rejoined backup replicates new writes again.
            for index in range(10):
                key, value = f"post{index}", f"pv{index}"
                kvs.put(key, value)
                model[key] = value
            session = cluster.session("shard0")
            primary = dict(session.state.facet_for("shard0.r0"))
            backup = dict(session.state.facet_for("shard0.r1"))
            assert primary == backup == model
            assert kvs.scan() == sorted(model.items())

    def test_rejoin_without_durability_uses_full_transfer(self):
        plan = FaultPlan(seed=11).crash("shard0.r1", after_ops=40)
        with ClusterEngine(
            shards=1, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as cluster:
            kvs = ClusterClient(cluster)
            model = crash_then_detect(cluster, kvs, ops=60)
            report = rejoin_backup(cluster, "shard0", "shard0.r1")
            assert report.mode == "full"  # no WAL: nothing to replay or delta
            assert report.replayed_records == 0
            assert not cluster.health()["shard0"].degraded
            kvs.put("after", "rejoin")
            model["after"] = "rejoin"
            session = cluster.session("shard0")
            assert dict(session.state.facet_for("shard0.r1")) == model

    def test_rejoin_logs_restart_in_the_fault_schedule(self, tmp_path):
        plan = FaultPlan(seed=11).crash("shard0.r1", after_ops=40)
        with durable_cluster(tmp_path, faults=plan) as cluster:
            kvs = ClusterClient(cluster)
            crash_then_detect(cluster, kvs, ops=60)
            cluster.rejoin_backup("shard0", "shard0.r1")
            kinds = [
                event[2]
                for event in cluster.session("shard0").engine.transport.faults.schedule()
            ]
            assert "crash" in kinds and "restart" in kinds

    def test_rejoining_is_a_visible_health_state(self, tmp_path):
        plan = FaultPlan(seed=11).crash("shard0.r1", after_ops=40)
        with durable_cluster(tmp_path, faults=plan) as cluster:
            kvs = ClusterClient(cluster)
            crash_then_detect(cluster, kvs, ops=60)
            session = cluster.session("shard0")
            session.begin_rejoin("shard0.r1")  # the window rejoin_backup holds open
            health = session.health()
            assert health.replicas["shard0.r1"] == "rejoining"
            assert health.degraded  # not serving replicated yet
            session.finish_rejoin("shard0.r1")
            assert session.health().replicas["shard0.r1"] == "up"

    def test_rejoin_rejects_bad_targets(self, tmp_path):
        with durable_cluster(tmp_path) as cluster:
            with pytest.raises(RejoinError, match="primary"):
                cluster.rejoin_backup("shard0", "shard0.r0")
            with pytest.raises(RejoinError, match="not demoted"):
                cluster.rejoin_backup("shard0", "shard0.r1")
            with pytest.raises(KeyError):
                cluster.rejoin_backup("nope", "nope.r1")

    def test_rejoin_on_closed_cluster_raises_typed(self, tmp_path):
        cluster = durable_cluster(tmp_path)
        cluster.close()
        with pytest.raises(ClusterClosed):
            cluster.rejoin_backup("shard0", "shard0.r1")

    def test_failed_rejoin_returns_the_replica_to_down(self, tmp_path):
        plan = FaultPlan(seed=11).crash("shard0.r1", after_ops=40)
        with durable_cluster(tmp_path, faults=plan) as cluster:
            kvs = ClusterClient(cluster)
            crash_then_detect(cluster, kvs, ops=60)
            # Sabotage the catch-up: break the client link to the rejoiner so
            # the report never arrives.  The rejoin must fail loudly and put
            # the replica back in the demoted state, cluster still serving.
            session = cluster.session("shard0")
            original_run = session.engine.run

            def failing_run(*args, **kwargs):
                raise ChoreographyRuntimeError("catch-up transfer failed", {})

            session.engine.run = failing_run
            try:
                with pytest.raises(ChoreographyRuntimeError):
                    cluster.rejoin_backup("shard0", "shard0.r1")
            finally:
                session.engine.run = original_run
            health = cluster.health()["shard0"]
            assert health.replicas["shard0.r1"] == "down"
            assert cluster.rejoins == []
            kvs.put("still", "serving")
            assert kvs.get("still") == "serving"


# ----------------------------------------------------------------- typed errors --


class TestTypedErrors:
    def test_submit_after_close_raises_cluster_closed(self):
        cluster = ClusterEngine(shards=1, replication=1, backend=BACKEND)
        cluster.close()
        with pytest.raises(ClusterClosed):
            cluster.submit_put("k", "v")
        # Back-compat: pre-PR 6 callers caught the untyped error.
        assert issubclass(ClusterClosed, RuntimeError)
        assert issubclass(ClusterRebalancing, RuntimeError)
        assert issubclass(RejoinError, RuntimeError)

    def test_submit_during_control_op_raises_rebalancing(self):
        with ClusterEngine(shards=1, replication=1, backend=BACKEND) as cluster:
            with cluster._lock:
                cluster._control_op = "a shard rebalance"
            try:
                with pytest.raises(ClusterRebalancing, match="busy"):
                    cluster.submit_put("k", "v")
                with pytest.raises(ClusterRebalancing):
                    cluster.add_shard()
                with pytest.raises(ClusterRebalancing):
                    cluster.rejoin_backup("shard0", "shard0.r1")
            finally:
                with cluster._lock:
                    cluster._control_op = None
            # The window closes: the same submit now succeeds.
            assert cluster.submit_put("k", "v").result(timeout=30.0)

    def test_add_shard_still_requires_quiescence_with_legacy_error(self):
        with ClusterEngine(shards=1, replication=1, backend=BACKEND) as cluster:
            futures = [cluster.submit_put(f"k{i}", "v") for i in range(4)]
            try:
                if cluster.pending:
                    with pytest.raises(RuntimeError, match="quiescent"):
                        cluster.add_shard()
            finally:
                for future in futures:
                    future.result(timeout=30.0)


# ------------------------------------------------- migration under injected faults --


class TestMigrationUnderFaults:
    def test_crash_mid_migration_leaves_moved_keys_at_their_old_home(self):
        # The new shard's primary is dead on arrival, so every migration
        # re-put fails; add_shard's copy-then-delete contract says the old
        # shard must still hold every key (the comment in engine.py asserted
        # this; this test pins it).
        plan = FaultPlan(seed=5).crash("shard1.r0", after_ops=0)
        with ClusterEngine(
            shards=1, replication=1, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as cluster:
            kvs = ClusterClient(cluster)
            model = {f"mig{i}": f"v{i}" for i in range(32)}
            for key, value in model.items():
                kvs.put(key, value)
            with pytest.raises(ChoreographyRuntimeError):
                cluster.add_shard("shard1")
            old_primary = dict(cluster.session("shard0").state.facet_for("shard0.r0"))
            assert old_primary == model  # nothing was destroyed
            # The failed rebalance released the control plane: submits that
            # route to the surviving shard still serve.
            survivors = [key for key in model if cluster.shard_for(key) == "shard0"]
            assert survivors
            assert kvs.get(survivors[0]) == model[survivors[0]]

    def test_clean_migration_still_moves_and_deletes(self):
        with ClusterEngine(shards=1, replication=1, backend=BACKEND) as cluster:
            kvs = ClusterClient(cluster)
            model = {f"mig{i}": f"v{i}" for i in range(32)}
            for key, value in model.items():
                kvs.put(key, value)
            cluster.add_shard("shard1")
            moved = [key for key in model if cluster.shard_for(key) == "shard1"]
            assert moved  # the ring took something
            old_primary = cluster.session("shard0").state.facet_for("shard0.r0")
            assert not any(key in old_primary for key in moved)
            assert kvs.scan() == sorted(model.items())


# ------------------------------------------------------------------- acceptance --


def run_ycsb_with_recovery(seed: int, root, op_count: int = 1000):
    """The acceptance workload: YCSB-A, a mid-run backup crash, then re-join."""
    plan = FaultPlan(seed=seed).crash("shard0.r1", after_ops=60)
    ops = ycsb_a(op_count, seed=seed)
    half = op_count // 2
    with ClusterClient(
        shards=2, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan,
        durability=str(root),
    ) as kvs:
        cluster = kvs.cluster
        model = drive(kvs, ops[:half])
        assert ("shard0", "shard0.r1") in cluster.failovers  # crash landed
        report = cluster.rejoin_backup("shard0", "shard0.r1")
        model = drive(kvs, ops[half:], model)
        scan = kvs.scan()
        health = kvs.health()
        schedules = {
            shard_id: cluster.session(shard_id).engine.transport.faults.schedule()
            for shard_id in kvs.shards
        }
    return model, scan, health, report, schedules


class TestAcceptance:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_crash_restart_rejoin_converges_to_the_fault_free_state(
        self, seed, tmp_path
    ):
        model, scan, health, report, _schedules = run_ycsb_with_recovery(
            seed, tmp_path / "faulty"
        )
        # The fault-free twin: same seed, same op stream, no faults.
        with ClusterClient(shards=2, replication=2, backend=BACKEND) as clean:
            clean_model = drive(clean, ycsb_a(1000, seed=seed))
            clean_scan = clean.scan()
        assert scan == clean_scan  # byte-identical final contents
        assert model == clean_model
        # The healed shard is non-degraded and the replica is up again.
        assert not health["shard0"].degraded
        assert health["shard0"].replicas["shard0.r1"] == "up"
        # The re-join did real recovery work.
        assert report.replayed_records > 0
        assert report.mode in ("delta", "full")

    def test_identical_seed_reproduces_the_identical_recovery(self, tmp_path):
        seed = CHAOS_SEEDS[0]
        first = run_ycsb_with_recovery(seed, tmp_path / "a", op_count=300)
        second = run_ycsb_with_recovery(seed, tmp_path / "b", op_count=300)
        assert first[1] == second[1]  # final contents
        assert first[4] == second[4]  # fault schedules, restart events included
        assert first[3].mode == second[3].mode

    def test_recovered_state_survives_a_full_cluster_restart(self, tmp_path):
        seed = CHAOS_SEEDS[0]
        model, scan, _health, _report, _schedules = run_ycsb_with_recovery(
            seed, tmp_path, op_count=300
        )
        with ClusterClient(
            shards=2, replication=2, backend=BACKEND, durability=str(tmp_path)
        ) as reopened:
            assert reopened.scan() == scan == sorted(model.items())
