"""Tests for λC's centralized semantics, EPP, λL, and the λN network semantics."""

from __future__ import annotations

import random

import pytest

from repro.formal.local_lang import (
    BOTTOM,
    LApp,
    LBottom,
    LCase,
    LInl,
    LLam,
    LPair,
    LRecv,
    LSend,
    LUnit,
    LVar,
    LVec,
    LocalStuckError,
    find_redex,
    floor,
    is_local_value,
)
from repro.formal.network import apply_step, enabled_steps, run_network
from repro.formal.projection import project, project_network
from repro.formal.semantics import StuckError, evaluate, step, substitute, trace
from repro.formal.syntax import (
    App,
    Case,
    Com,
    Fst,
    Inl,
    Inr,
    Lam,
    Lookup,
    Pair,
    Snd,
    TData,
    Unit,
    UnitData,
    Var,
    Vec,
    parties,
)

A = parties("a")
AB = parties("a", "b")
ABC = parties("a", "b", "c")
UNIT = UnitData()


def unit_at(*names):
    return Unit(parties(*names))


class TestCentralSemantics:
    def test_values_do_not_step(self):
        assert step(unit_at("a")) is None
        assert step(Pair(unit_at("a"), unit_at("a"))) is None

    def test_identity_application(self):
        lam = Lam("x", TData(UNIT, AB), Var("x"), AB)
        expr = App(lam, unit_at("a", "b", "c"))
        assert evaluate(expr) == unit_at("a", "b")  # masked to the lambda's owners

    def test_projection_operators(self):
        pair = Pair(unit_at("a", "b"), Inl(unit_at("a", "b")))
        assert evaluate(App(Fst(A), pair)) == unit_at("a")
        assert evaluate(App(Snd(A), pair)) == Inl(unit_at("a"))
        vec = Vec((unit_at("a", "b"), Inr(unit_at("a", "b"))))
        assert evaluate(App(Lookup(1, AB), vec)) == Inr(unit_at("a", "b"))

    def test_communication_retargets_ownership(self):
        expr = App(Com("a", parties("b", "c")), unit_at("a"))
        assert evaluate(expr) == unit_at("b", "c")

    def test_communication_of_structured_data(self):
        payload = Pair(Inl(unit_at("a")), unit_at("a"))
        expr = App(Com("a", parties("b")), payload)
        assert evaluate(expr) == Pair(Inl(unit_at("b")), unit_at("b"))

    def test_case_left_and_right(self):
        left = Case(AB, Inl(unit_at("a", "b")), "x", Var("x"), "y", unit_at("a"))
        assert evaluate(left) == unit_at("a", "b")
        right = Case(AB, Inr(unit_at("a", "b")), "x", unit_at("a"), "y", Var("y"))
        assert evaluate(right) == unit_at("a", "b")

    def test_nested_reduction_order(self):
        inner = App(Com("a", parties("b")), unit_at("a"))
        outer = App(Com("b", parties("c")), inner)
        states = trace(outer)
        # the argument reduces before the outer com fires
        assert states[-1] == unit_at("c")
        assert len(states) == 3

    def test_stuck_expression_raises(self):
        with pytest.raises(StuckError):
            evaluate(App(unit_at("a"), unit_at("a")))

    def test_masked_substitution_respects_conclaves(self):
        # Substituting a value owned by {a} into a lambda owned by {b} is a no-op.
        lam = Lam("y", TData(UNIT, parties("b")), Var("x"), parties("b"))
        substituted = substitute(lam, "x", unit_at("a"))
        assert substituted == lam

    def test_substitution_masks_at_conclave_boundary(self):
        lam = Lam("y", TData(UNIT, A), Var("x"), A)
        substituted = substitute(lam, "x", unit_at("a", "b"))
        assert substituted == Lam("y", TData(UNIT, A), unit_at("a"), A)

    def test_substitution_shadowing(self):
        lam = Lam("x", TData(UNIT, A), Var("x"), A)
        assert substitute(lam, "x", unit_at("a")) == lam


class TestFloorAndLocalLanguage:
    def test_floor_removes_bottom_applications(self):
        assert floor(LApp(BOTTOM, LUnit())) == BOTTOM
        # a non-value argument keeps the application alive
        pending = LApp(BOTTOM, LApp(LRecv("a"), BOTTOM))
        assert isinstance(floor(pending), LApp)

    def test_floor_collapses_bottom_structures(self):
        assert floor(LPair(BOTTOM, BOTTOM)) == BOTTOM
        assert floor(LInl(BOTTOM)) == BOTTOM
        assert floor(LVec((BOTTOM, BOTTOM))) == BOTTOM
        assert floor(LCase(BOTTOM, "x", LUnit(), "y", LUnit())) == BOTTOM

    def test_floor_preserves_partial_structures(self):
        assert floor(LPair(LUnit(), BOTTOM)) == LPair(LUnit(), BOTTOM)

    def test_floor_is_idempotent(self):
        exprs = [
            LApp(BOTTOM, LUnit()),
            LPair(BOTTOM, BOTTOM),
            LLam("x", LApp(BOTTOM, LVar("x"))),
        ]
        for expr in exprs:
            assert floor(floor(expr)) == floor(expr)

    def test_find_redex_on_values_is_none(self):
        assert find_redex(LUnit()) is None
        assert find_redex(BOTTOM) is None

    def test_find_redex_beta(self):
        redex = find_redex(LApp(LLam("x", LVar("x")), LUnit()))
        assert redex.kind == "local"
        assert redex.reduce_local() == LUnit()

    def test_find_redex_send_and_recv(self):
        send = find_redex(LApp(LSend(frozenset({"b"})), LUnit()))
        assert send.kind == "send" and send.recipients == frozenset({"b"})
        recv = find_redex(LApp(LRecv("a"), BOTTOM))
        assert recv.kind == "recv" and recv.sender == "a"

    def test_find_redex_stuck(self):
        with pytest.raises(LocalStuckError):
            find_redex(LApp(LUnit(), LUnit()))


class TestProjection:
    def test_com_projection_shapes(self):
        expr = Com("a", parties("a", "b"))
        assert project(expr, "a") == LSend(frozenset({"b"}), keep_self=True)
        assert project(expr, "b") == LRecv("a")
        assert project(expr, "c") == BOTTOM
        plain = Com("a", parties("b"))
        assert project(plain, "a") == LSend(frozenset({"b"}), keep_self=False)

    def test_unit_projection(self):
        expr = unit_at("a", "b")
        assert project(expr, "a") == LUnit()
        assert project(expr, "c") == BOTTOM

    def test_case_projection_for_non_owner_is_skippable(self):
        expr = Case(AB, Inl(unit_at("a", "b")), "x", Var("x"), "y", unit_at("a"))
        assert project(expr, "c") == BOTTOM

    def test_application_projection_floors(self):
        expr = App(Com("a", parties("b")), unit_at("a"))
        assert project(expr, "c") == BOTTOM

    def test_project_network_covers_all_roles(self):
        expr = App(Com("a", parties("b", "c")), unit_at("a"))
        network = project_network(expr)
        assert set(network) == {"a", "b", "c"}


class TestNetworkSemantics:
    def choreography(self):
        scrutinee = App(Com("a", parties("b", "c")), Inl(unit_at("a")))
        return Case(
            parties("b", "c"),
            scrutinee,
            "x",
            App(Com("b", parties("c")), Var("x")),
            "y",
            unit_at("c"),
        )

    def test_network_runs_to_completion(self):
        run = run_network(project_network(self.choreography()))
        assert run.completed
        assert run.message_count == 3  # multicast to two parties + b→c forward

    def test_network_final_state_matches_projection_of_central_value(self):
        expr = self.choreography()
        value = evaluate(expr)
        run = run_network(project_network(expr))
        for party in ("a", "b", "c"):
            assert run.network[party] == project(value, party)

    def test_randomised_schedules_agree(self):
        expr = self.choreography()
        value = evaluate(expr)
        for seed in range(5):
            run = run_network(project_network(expr), rng=random.Random(seed))
            assert run.completed
            assert run.network["c"] == project(value, "c")

    def test_enabled_steps_require_matching_receivers(self):
        network = {
            "a": LApp(LSend(frozenset({"b"})), LUnit()),
            "b": LUnit(),  # b is not ready to receive
        }
        assert enabled_steps(network) == []

    def test_comm_step_delivers_payload(self):
        network = {
            "a": LApp(LSend(frozenset({"b"})), LUnit()),
            "b": LApp(LRecv("a"), BOTTOM),
        }
        steps = enabled_steps(network)
        assert len(steps) == 1 and steps[0].kind == "comm"
        after = apply_step(network, steps[0])
        assert after["a"] == BOTTOM
        assert after["b"] == LUnit()

    def test_deadlocked_network_is_reported(self):
        network = {
            "a": LApp(LRecv("b"), BOTTOM),
            "b": LApp(LRecv("a"), BOTTOM),
        }
        run = run_network(network, max_steps=10)
        assert run.status == "deadlock"

    def test_send_star_keeps_value_at_sender(self):
        network = {
            "a": LApp(LSend(frozenset({"b"}), keep_self=True), LUnit()),
            "b": LApp(LRecv("a"), BOTTOM),
        }
        run = run_network(network)
        assert run.network["a"] == LUnit()
        assert run.network["b"] == LUnit()
