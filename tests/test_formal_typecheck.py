"""Tests for the λC typing rules."""

from __future__ import annotations

import pytest

from repro.formal.syntax import (
    App,
    Case,
    Com,
    Fst,
    Inl,
    Inr,
    Lam,
    Lookup,
    Pair,
    ProdData,
    Snd,
    SumData,
    TData,
    TFun,
    TVec,
    Unit,
    UnitData,
    Var,
    Vec,
    parties,
)
from repro.formal.typecheck import FormalTypeError, typecheck

A = parties("a")
AB = parties("a", "b")
ABC = parties("a", "b", "c")
UNIT = UnitData()


class TestValueTyping:
    def test_unit(self):
        assert typecheck(ABC, Unit(AB)) == TData(UNIT, AB)

    def test_unit_outside_census_rejected(self):
        with pytest.raises(FormalTypeError, match="TUnit"):
            typecheck(A, Unit(AB))

    def test_empty_census_rejected(self):
        with pytest.raises(FormalTypeError, match="census"):
            typecheck(frozenset(), Unit(A))

    def test_injections(self):
        assert typecheck(AB, Inl(Unit(AB), UNIT)) == TData(SumData(UNIT, UNIT), AB)
        assert typecheck(AB, Inr(Unit(AB), UNIT)) == TData(SumData(UNIT, UNIT), AB)

    def test_injection_annotation_fixes_other_branch(self):
        annotated = Inl(Unit(AB), ProdData(UNIT, UNIT))
        assert typecheck(AB, annotated) == TData(SumData(UNIT, ProdData(UNIT, UNIT)), AB)

    def test_pair_intersects_owners(self):
        pair = Pair(Unit(ABC), Unit(AB))
        assert typecheck(ABC, pair) == TData(ProdData(UNIT, UNIT), AB)

    def test_pair_with_disjoint_owners_rejected(self):
        pair = Pair(Unit(parties("a")), Unit(parties("b")))
        with pytest.raises(FormalTypeError, match="TPair"):
            typecheck(AB, pair)

    def test_vector(self):
        vec = Vec((Unit(AB), Inl(Unit(AB))))
        observed = typecheck(AB, vec)
        assert isinstance(observed, TVec) and len(observed.items) == 2

    def test_lambda_types_body_in_conclave(self):
        lam = Lam("x", TData(UNIT, A), Var("x"), A)
        assert typecheck(ABC, lam) == TFun(TData(UNIT, A), TData(UNIT, A), A)

    def test_lambda_param_type_must_be_masked(self):
        lam = Lam("x", TData(UNIT, AB), Var("x"), A)
        with pytest.raises(FormalTypeError, match="TLambda"):
            typecheck(ABC, lam)

    def test_lambda_owners_must_be_in_census(self):
        lam = Lam("x", TData(UNIT, AB), Var("x"), AB)
        with pytest.raises(FormalTypeError, match="TLambda"):
            typecheck(A, lam)

    def test_lambda_body_cannot_use_parties_outside_conclave(self):
        body = App(Com("a", parties("b")), Var("x"))
        lam = Lam("x", TData(UNIT, A), body, A)
        with pytest.raises(FormalTypeError, match="TCom"):
            typecheck(AB, lam)

    def test_free_variable_rejected(self):
        with pytest.raises(FormalTypeError, match="unbound"):
            typecheck(AB, Var("x"))

    def test_variable_masked_by_census(self):
        lam = Lam("x", TData(UNIT, AB), Var("x"), AB)
        app = App(lam, Unit(AB))
        assert typecheck(AB, app) == TData(UNIT, AB)

    def test_operator_values_are_ambiguous_standalone(self):
        with pytest.raises(FormalTypeError, match="schematic"):
            typecheck(AB, Fst(AB))


class TestCommunicationTyping:
    def test_multicast_retargets_owners(self):
        expr = App(Com("a", parties("b", "c")), Unit(A))
        assert typecheck(ABC, expr) == TData(UNIT, parties("b", "c"))

    def test_sender_must_own_payload(self):
        expr = App(Com("a", parties("b")), Unit(parties("b")))
        with pytest.raises(FormalTypeError, match="must own"):
            typecheck(AB, expr)

    def test_participants_must_be_in_census(self):
        expr = App(Com("a", parties("c")), Unit(A))
        with pytest.raises(FormalTypeError, match="TCom"):
            typecheck(AB, expr)

    def test_only_data_can_be_communicated(self):
        lam = Lam("x", TData(UNIT, A), Var("x"), A)
        expr = App(Com("a", parties("b")), lam)
        with pytest.raises(FormalTypeError, match="data"):
            typecheck(AB, expr)

    def test_self_multicast_is_legal(self):
        expr = App(Com("a", A), Unit(A))
        assert typecheck(AB, expr) == TData(UNIT, A)


class TestCaseTyping:
    def scrutinee(self, owners):
        return Inl(Unit(owners), UNIT)

    def test_well_typed_case(self):
        expr = Case(AB, self.scrutinee(AB), "x", Var("x"), "y", Unit(AB))
        assert typecheck(ABC, expr) == TData(UNIT, AB)

    def test_branch_types_must_agree(self):
        expr = Case(AB, self.scrutinee(AB), "x", Unit(A), "y", Unit(AB))
        with pytest.raises(FormalTypeError, match="same type"):
            typecheck(ABC, expr)

    def test_owners_must_be_in_census(self):
        expr = Case(ABC, self.scrutinee(ABC), "x", Var("x"), "y", Unit(ABC))
        with pytest.raises(FormalTypeError):
            typecheck(AB, expr)

    def test_scrutinee_must_mask_to_sum_at_owners(self):
        expr = Case(AB, Unit(AB), "x", Unit(AB), "y", Unit(AB))
        with pytest.raises(FormalTypeError, match="TCase"):
            typecheck(ABC, expr)

    def test_branches_are_conclaved(self):
        # Inside the branches only {a, b} exist, so sending to c is an error.
        body = App(Com("a", parties("c")), Var("x"))
        expr = Case(AB, self.scrutinee(AB), "x", body, "y", Unit(parties("c")))
        with pytest.raises(FormalTypeError):
            typecheck(ABC, expr)

    def test_scrutinee_owned_by_superset_is_fine(self):
        expr = Case(AB, self.scrutinee(ABC), "x", Var("x"), "y", Unit(AB))
        assert typecheck(ABC, expr) == TData(UNIT, AB)


class TestApplicationAndProjections:
    def test_identity_application(self):
        lam = Lam("x", TData(UNIT, AB), Var("x"), AB)
        assert typecheck(ABC, App(lam, Unit(ABC))) == TData(UNIT, AB)

    def test_argument_must_mask_to_parameter(self):
        lam = Lam("x", TData(UNIT, AB), Var("x"), AB)
        with pytest.raises(FormalTypeError, match="TApp"):
            typecheck(ABC, App(lam, Unit(parties("c"))))

    def test_non_function_application_rejected(self):
        with pytest.raises(FormalTypeError, match="TApp"):
            typecheck(AB, App(Unit(AB), Unit(AB)))

    def test_fst_and_snd(self):
        pair = Pair(Unit(AB), Inl(Unit(AB)))
        assert typecheck(AB, App(Fst(A), pair)) == TData(UNIT, A)
        assert typecheck(AB, App(Snd(A), pair)) == TData(SumData(UNIT, UNIT), A)

    def test_fst_requires_pair(self):
        with pytest.raises(FormalTypeError, match="TProj"):
            typecheck(AB, App(Fst(A), Unit(AB)))

    def test_lookup(self):
        vec = Vec((Unit(AB), Inl(Unit(AB))))
        assert typecheck(AB, App(Lookup(1, AB), vec)) == TData(SumData(UNIT, UNIT), AB)

    def test_lookup_out_of_range(self):
        vec = Vec((Unit(AB),))
        with pytest.raises(FormalTypeError, match="range"):
            typecheck(AB, App(Lookup(3, AB), vec))

    def test_lookup_requires_tuple(self):
        with pytest.raises(FormalTypeError, match="TProjN"):
            typecheck(AB, App(Lookup(0, AB), Unit(AB)))
