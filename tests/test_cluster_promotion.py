"""Chaos suite, part 4: primary failover — promotion, fencing, and re-join.

The failover suite (part 2) proved a dead *backup* is demoted and routed
around; this suite proves a dead *primary* is survivable.  The promises
under test:

* when the blame chain sinks at the shard's head, the **senior surviving
  backup** (first in census order — authoritative by ack-before-apply) is
  promoted: the shard epoch is bumped, stamped into every surviving durable
  replica's WAL, and the data plane re-binds around the new head;
* every binding made under the old epoch is **fenced**: it fails with the
  typed :class:`~repro.protocols.kvs.StaleEpoch` at every location before a
  single message moves, so a deposed head can never serve (no split brain)
  — and the cluster layer treats the fence as replayable, re-dispatching
  the submit against the current-epoch binding;
* the promotion lands in the ``promotions`` audit trail as a
  :class:`~repro.cluster.PromotionReport` (plus the usual ``failovers``
  entry), and ``health()`` reports the new head, the epoch, and per-replica
  roles;
* cascading crashes degrade shard by shard down to an unreplicated head;
  only the death of the *last* replica still fails loudly;
* the deposed primary **re-joins as a backup** through the ordinary
  :meth:`~repro.cluster.ClusterEngine.rejoin_backup` path, catching up from
  its usurper;
* with durability on, a full cluster restart recovers the *promoted* head
  from the WAL promotion records — not census-order ``r0``;
* the acceptance bar: a 1k-op YCSB-A run with a mid-workload **primary**
  crash loses no acknowledged write and converges byte-identically with
  the fault-free same-seed run.

Timeout-blame attribution is deliberately conservative but not clairvoyant:
under heavy pipelining a live-but-lagging new head can be *falsely*
suspected and deposed in turn.  That is safe — epoch fencing keeps every
stale binding from serving, the false suspect can re-join — so the
pipelined tests here assert safety (typed errors, no lost acked writes, no
hangs), not that every future succeeds.
"""

from __future__ import annotations

import pytest

from repro import ClusterClient, ClusterEngine, FaultPlan
from repro.core.errors import ChoreographyError, ChoreographyRuntimeError
from repro.protocols.kvs import ResponseKind, ShardEpoch, StaleEpoch
from tests.test_cluster_failover import BACKEND, CHAOS_SEEDS, TIMEOUT, drive, ycsb_a


def durable_cluster(root, **overrides):
    options = dict(
        shards=1, replication=2, backend=BACKEND, timeout=TIMEOUT,
        durability=str(root),
    )
    options.update(overrides)
    return ClusterEngine(**options)


def drive_until_promoted(kvs, *, ops=60, prefix="k"):
    """Serial blocking puts until the planned primary crash is failed over."""
    model = {}
    for index in range(ops):
        key, value = f"{prefix}{index % 8}", f"v{index}"
        kvs.put(key, value)
        model[key] = value
        if kvs.cluster.promotions:
            return model
    raise AssertionError("planned primary crash was never detected")


# -------------------------------------------------------------- fence semantics --


class TestEpochFence:
    def test_fence_cell_is_monotone_and_typed(self):
        fence = ShardEpoch(0)
        fence.advance(2)
        fence.advance(1)  # promotions only ever raise the epoch
        assert fence.value == 2
        fence.require(2)  # current binding passes
        fence.require(None)  # an unfenced binding always passes
        with pytest.raises(StaleEpoch) as failure:
            fence.require(1)
        assert failure.value.bound_epoch == 1
        assert failure.value.current_epoch == 2
        assert isinstance(failure.value, ChoreographyError)
        assert "stale shard epoch" in str(failure.value)

    def test_stale_binding_is_fenced_at_every_location(self):
        # White-box: force a promotion with no crash at all, then run a
        # binding captured under the old epoch.  Every location must raise
        # StaleEpoch — deterministically, before any message moves.
        with ClusterEngine(shards=1, replication=2, backend=BACKEND) as cluster:
            session = cluster.session("shard0")
            stale_put = session.put  # bound under epoch 0
            assert cluster._mark_primary_down("shard0", "shard0.r0")
            assert session.epoch == 1
            with pytest.raises(ChoreographyRuntimeError) as failure:
                session.engine.run(stale_put, args=("k", "v"))
            roots = failure.value.failures
            assert roots  # the bundle names the fenced locations
            assert all(isinstance(exc, StaleEpoch) for exc in roots.values())
            # The current-epoch binding (via the engine) still serves: the
            # replay path picks it up and the op lands on the new head.
            result = cluster.submit_put("k", "v").result(timeout=30.0)
            assert cluster.response_of(result).kind is ResponseKind.NOT_FOUND
            head = session.state.facet_for("shard0.r1")
            assert head["k"] == "v"

    def test_forced_promotion_is_idempotent(self):
        with ClusterEngine(shards=1, replication=3, backend=BACKEND) as cluster:
            assert cluster._mark_primary_down("shard0", "shard0.r0")
            # A racing settle calling in with the already-deposed head must
            # replay without promoting a second time.
            assert cluster._mark_primary_down("shard0", "shard0.r0")
            assert len(cluster.promotions) == 1
            assert cluster.promotions[0].survivors == ("shard0.r1", "shard0.r2")
            # ...and a stale suspicion of a non-primary does not promote.
            assert not cluster._mark_primary_down("shard0", "shard0.r2")
            assert cluster.session("shard0").epoch == 1


# ------------------------------------------------------------- promotion basics --


class TestPromotion:
    def test_traffic_detects_and_promotes_the_senior_backup(self):
        plan = FaultPlan(seed=7).crash("shard0.r0", after_ops=12)
        with ClusterClient(
            shards=1, replication=3, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as kvs:
            model = drive_until_promoted(kvs)
            cluster = kvs.cluster
            promotion = cluster.promotions[0]
            assert promotion.shard_id == "shard0"
            assert promotion.old_primary == "shard0.r0"
            assert promotion.new_primary == "shard0.r1"  # senior in census order
            assert promotion.epoch == 1
            assert promotion.survivors == ("shard0.r1", "shard0.r2")
            assert promotion.promote_seconds >= 0
            assert ("shard0", "shard0.r0") in cluster.failovers
            health = kvs.health()["shard0"]
            assert health.primary == "shard0.r1"
            assert health.epoch == 1
            assert health.replicas["shard0.r0"] == "down"
            assert health.roles == {
                "shard0.r0": "backup",
                "shard0.r1": "primary",
                "shard0.r2": "backup",
            }
            # The shard keeps serving writes and reads on the new head.
            for index in range(10):
                key, value = f"post{index}", f"pv{index}"
                kvs.put(key, value)
                model[key] = value
            assert kvs.scan() == sorted(model.items())
            # An active probe exercises the new head and stays idempotent.
            report = cluster.probe("shard0")
            assert report["shard0"]["shard0.r1"] is True
            assert report["shard0"]["shard0.r0"] is False
            assert len(cluster.promotions) == 1

    def test_writes_replicate_to_the_survivors_after_promotion(self):
        plan = FaultPlan(seed=7).crash("shard0.r0", after_ops=12)
        with ClusterClient(
            shards=1, replication=3, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as kvs:
            model = drive_until_promoted(kvs)
            for index in range(8):
                key, value = f"rep{index}", f"rv{index}"
                kvs.put(key, value)
                model[key] = value
            session = kvs.cluster.session("shard0")
            head = dict(session.state.facet_for("shard0.r1"))
            backup = dict(session.state.facet_for("shard0.r2"))
            assert head == model  # the promoted head holds everything acked
            for key in (f"rep{i}" for i in range(8)):
                assert backup[key] == model[key]  # new writes replicate again
            # Quorum reads vote over the post-promotion replica group.
            for index in range(8):
                assert kvs.get(f"rep{index}", quorum=True) == f"rv{index}"

    def test_cascading_crashes_degrade_to_an_unreplicated_head(self):
        plan = (
            FaultPlan(seed=7)
            .crash("shard0.r0", after_ops=0)
            .crash("shard0.r1", after_ops=20)
            .crash("shard0.r2", after_ops=80)
        )
        with ClusterClient(
            shards=1, replication=3, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as kvs:
            cluster = kvs.cluster
            failure = None
            model = {}
            for index in range(200):
                key, value = f"k{index % 8}", f"v{index}"
                try:
                    kvs.put(key, value)
                    model[key] = value
                except ChoreographyRuntimeError as exc:
                    failure = exc
                    break
            # Two promotions rode out two head crashes...
            assert [p.new_primary for p in cluster.promotions] == [
                "shard0.r1",
                "shard0.r2",
            ]
            assert [p.epoch for p in cluster.promotions] == [1, 2]
            assert cluster.promotions[1].survivors == ("shard0.r2",)
            # ...but the last replica's death fails loudly: no successor, no
            # masking, and no third promotion.
            assert failure is not None
            health = kvs.health()["shard0"]
            assert health.primary == "shard0.r2"
            assert health.epoch == 2
            assert set(health.down) == {"shard0.r0", "shard0.r1"}
            assert len(cluster.promotions) == 2

    def test_replication_one_primary_crash_still_fails_loudly(self):
        plan = FaultPlan(seed=7).crash("shard0.r0", after_ops=0)
        with ClusterClient(
            shards=1, replication=1, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as kvs:
            with pytest.raises(ChoreographyRuntimeError):
                kvs.put("k", "v")
            assert kvs.cluster.promotions == []
            assert kvs.cluster.failovers == []


# ---------------------------------------------------------------- races & close --


class TestPromotionRaces:
    def test_pipelined_submits_across_a_promotion_stay_safe(self):
        plan = FaultPlan(seed=7).crash("shard0.r0", after_ops=8)
        with ClusterEngine(
            shards=1, replication=3, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as cluster:
            futures = [
                cluster.submit_put(f"key{i}", f"value{i}") for i in range(10)
            ]
            acked = {}
            for index, future in enumerate(futures):
                try:
                    result = future.result(timeout=30.0)  # bounded: never hangs
                except ChoreographyRuntimeError:
                    continue  # surfaced typed after the bounded replay budget
                assert cluster.response_of(result).kind in (
                    ResponseKind.FOUND,
                    ResponseKind.NOT_FOUND,
                )
                acked[f"key{index}"] = f"value{index}"
            assert cluster.promotions  # the crash landed mid-pipeline
            session = cluster.session("shard0")
            head = session.state.facet_for(session.primary)
            for key, value in acked.items():
                assert head[key] == value  # zero lost acked writes
            # The shard still serves after the storm settles.
            result = cluster.submit_put("settled", "yes").result(timeout=30.0)
            assert cluster.response_of(result).kind is ResponseKind.NOT_FOUND
            assert head["settled"] == "yes"

    def test_promotion_racing_a_rejoin_fences_the_catchup(self, tmp_path):
        plan = FaultPlan(seed=11).crash("shard0.r1", after_ops=20)
        with durable_cluster(tmp_path, replication=3, faults=plan) as cluster:
            kvs = ClusterClient(cluster)
            model = {}
            for index in range(40):
                key, value = f"k{index % 8}", f"v{index}"
                kvs.put(key, value)
                model[key] = value
                if cluster.failovers:
                    break
            assert cluster.health()["shard0"].replicas["shard0.r1"] == "down"
            session = cluster.session("shard0")
            real_run = session.engine.run

            def run_with_racing_promotion(*args, **kwargs):
                # The race: a promotion lands between the catch-up's bind
                # and its run, so the rejoin's binding is now a stale-epoch
                # zombie.  The fence must fail it before any state moves.
                session.engine.run = real_run
                assert cluster._mark_primary_down("shard0", session.primary)
                return real_run(*args, **kwargs)

            session.engine.run = run_with_racing_promotion
            with pytest.raises(ChoreographyRuntimeError) as failure:
                cluster.rejoin_backup("shard0", "shard0.r1")
            assert any(
                isinstance(exc, StaleEpoch)
                for exc in failure.value.failures.values()
            )
            # The failed rejoin put the replica back to down; the promoted
            # head serves on.
            health = cluster.health()["shard0"]
            assert health.replicas["shard0.r1"] == "down"
            assert health.primary == "shard0.r2"
            assert health.epoch == 1
            assert cluster.rejoins == []
            kvs.put("after", "race")
            assert kvs.get("after") == "race"

    def test_close_during_a_promotion_storm_never_hangs(self):
        plan = FaultPlan(seed=7).crash("shard0.r0", after_ops=6)
        cluster = ClusterEngine(
            shards=1, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan
        )
        futures = [cluster.submit_put(f"k{i}", f"v{i}") for i in range(8)]
        cluster.close()  # races the crash detection + replay machinery
        for future in futures:
            try:
                future.result(timeout=30.0)  # resolves either way, bounded
            except Exception:  # noqa: BLE001 - typed failure is acceptable
                pass
        from repro.cluster import ClusterClosed

        with pytest.raises(ClusterClosed):
            cluster.submit_put("late", "x")


# ----------------------------------------------------------------------- rejoin --


class TestDeposedPrimaryRejoin:
    def test_old_primary_rejoins_as_a_backup(self, tmp_path):
        plan = FaultPlan(seed=11).crash("shard0.r0", after_ops=14)
        with durable_cluster(tmp_path, faults=plan) as cluster:
            kvs = ClusterClient(cluster)
            model = drive_until_promoted(kvs)
            assert cluster.health()["shard0"].primary == "shard0.r1"
            # Diverge the survivor past the deposed head's last ack.
            for index in range(10):
                key, value = f"post{index}", f"pv{index}"
                kvs.put(key, value)
                model[key] = value

            report = cluster.rejoin_backup("shard0", "shard0.r0")
            assert report.replica == "shard0.r0"
            assert report.mode in ("delta", "full")

            health = cluster.health()["shard0"]
            assert not health.degraded
            assert health.primary == "shard0.r1"  # the usurper keeps the head
            assert health.roles["shard0.r0"] == "backup"  # deposed, re-admitted
            assert health.replicas["shard0.r0"] == "up"

            # The re-admitted backup replicates new writes again.
            for index in range(6):
                key, value = f"heal{index}", f"hv{index}"
                kvs.put(key, value)
                model[key] = value
            session = cluster.session("shard0")
            assert dict(session.state.facet_for("shard0.r1")) == model
            assert dict(session.state.facet_for("shard0.r0")) == model
            assert kvs.scan() == sorted(model.items())

    def test_epoch_survives_a_full_cluster_restart(self, tmp_path):
        plan = FaultPlan(seed=11).crash("shard0.r0", after_ops=14)
        with durable_cluster(tmp_path, faults=plan) as cluster:
            kvs = ClusterClient(cluster)
            model = drive_until_promoted(kvs)
            for index in range(6):
                key, value = f"post{index}", f"pv{index}"
                kvs.put(key, value)
                model[key] = value
            assert cluster.health()["shard0"].epoch == 1

        # A cold restart must elect the *promoted* head from the WAL
        # promotion records — not census-order r0, whose store is stale.
        with durable_cluster(tmp_path) as reopened:
            health = reopened.health()["shard0"]
            assert health.primary == "shard0.r1"
            assert health.epoch == 1
            assert health.roles["shard0.r1"] == "primary"
            kvs = ClusterClient(reopened)
            assert kvs.scan() == sorted(model.items())
            kvs.put("reborn", "yes")
            assert kvs.get("reborn") == "yes"

    def test_rejoined_old_primary_recovers_the_epoch_after_restart(self, tmp_path):
        # Full transfers install items only; the rejoin path must stamp the
        # rejoiner's WAL with the current epoch so that a later cold restart
        # still elects the promoted head even from the deposed store.
        plan = FaultPlan(seed=11).crash("shard0.r0", after_ops=14)
        with durable_cluster(tmp_path, faults=plan) as cluster:
            kvs = ClusterClient(cluster)
            model = drive_until_promoted(kvs)
            cluster.rejoin_backup("shard0", "shard0.r0")
            kvs.put("sealed", "s")
            model["sealed"] = "s"
        with durable_cluster(tmp_path) as reopened:
            health = reopened.health()["shard0"]
            assert health.primary == "shard0.r1"
            assert health.epoch == 1
            assert ClusterClient(reopened).scan() == sorted(model.items())


# ------------------------------------------------------------------- acceptance --


def run_ycsb_with_primary_crash(seed: int, op_count: int = 1000):
    """The acceptance workload: YCSB-A with the primary crashing mid-run."""
    plan = FaultPlan(seed=seed).crash("shard0.r0", after_ops=60)
    with ClusterClient(
        shards=2, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan
    ) as kvs:
        model = drive(kvs, ycsb_a(op_count, seed=seed))
        scan = kvs.scan()
        health = kvs.health()
        schedules = {
            shard_id: kvs.cluster.session(shard_id).engine.transport.faults.schedule()
            for shard_id in kvs.shards
        }
        promotions = [
            (p.shard_id, p.old_primary, p.new_primary, p.epoch)
            for p in kvs.cluster.promotions
        ]
        failovers = list(kvs.cluster.failovers)
    return model, scan, health, schedules, promotions, failovers


class TestAcceptance:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_ycsb_a_with_primary_crash_loses_nothing(self, seed):
        model, scan, health, schedules, promotions, failovers = (
            run_ycsb_with_primary_crash(seed)
        )
        # drive() asserted read-your-writes after every op; the final scan
        # must hold exactly the acked writes.
        assert scan == sorted(model.items())
        assert ("shard0", "shard0.r0") in failovers
        assert ("shard0", "shard0.r0", "shard0.r1", 1) in promotions
        assert health["shard0"].primary == "shard0.r1"
        assert health["shard0"].epoch >= 1
        assert health["shard0"].replicas["shard0.r0"] == "down"
        # The untouched shard never failed over.
        assert health["shard1"].epoch == 0
        assert any(
            event[2] == "crash" for shard in schedules.values() for event in shard
        )

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_faulty_run_converges_with_the_fault_free_twin(self, seed):
        _model, scan, _health, _schedules, promotions, _failovers = (
            run_ycsb_with_primary_crash(seed)
        )
        assert promotions  # the failover actually happened
        with ClusterClient(shards=2, replication=2, backend=BACKEND) as clean:
            drive(clean, ycsb_a(1000, seed=seed))
            clean_scan = clean.scan()
        assert scan == clean_scan  # byte-identical final contents

    def test_identical_seed_reproduces_the_identical_failover(self):
        seed = CHAOS_SEEDS[0]
        first = run_ycsb_with_primary_crash(seed, op_count=200)
        second = run_ycsb_with_primary_crash(seed, op_count=200)
        assert first[3] == second[3]  # injected schedules, per shard
        assert first[1] == second[1]  # final contents
        assert first[4] == second[4]  # promotion audit trail
        assert first[5] == second[5]  # failover audit trail
