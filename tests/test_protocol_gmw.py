"""Tests for the GMW secure-computation case study."""

from __future__ import annotations

import itertools

import pytest

from repro.core.locations import Census
from repro.protocols import circuits
from repro.protocols.circuits import level_circuit
from repro.protocols.gmw import (
    gmw,
    reveal,
    secret_share,
    secret_share_batch,
    share_circuit,
    shared_and,
    shared_and_layer,
)
from repro.runtime.central import CentralOp
from repro.runtime.runner import run_choreography
from repro.runtime.stats import ChannelStats
from repro.runtime.central import run_centralized

RSA_BITS = 128  # keep key generation fast in tests


def central(parties):
    return CentralOp(parties)


class TestSecretShareAndReveal:
    PARTIES = ["p1", "p2", "p3"]

    @pytest.mark.parametrize("secret", [True, False])
    def test_share_then_reveal_roundtrip(self, secret):
        op = central(self.PARTIES)
        value = op.locally("p2", lambda _un: secret)
        shares = secret_share(op, self.PARTIES, "p2", value, seed=4)
        assert reveal(op, self.PARTIES, shares) == secret

    def test_shares_have_no_common_owners(self):
        op = central(self.PARTIES)
        value = op.locally("p1", lambda _un: True)
        shares = secret_share(op, self.PARTIES, "p1", value, seed=4)
        assert list(shares.common) == []
        assert list(shares.owners) == self.PARTIES

    def test_dealer_endpoint_forgets_dealt_shares(self):
        def chor(op):
            value = op.locally("p1", lambda _un: True)
            return secret_share(op, self.PARTIES, "p1", value, seed=4)

        result = run_choreography(chor, self.PARTIES)
        dealer_view = result.returns["p1"].visible_facets()
        assert list(dealer_view) == ["p1"]

    def test_sharing_costs_one_message_per_other_party(self):
        def chor(op):
            value = op.locally("p1", lambda _un: True)
            secret_share(op, self.PARTIES, "p1", value, seed=4)

        result = run_choreography(chor, self.PARTIES)
        assert result.stats.total_messages == len(self.PARTIES) - 1


class TestSharedAnd:
    PARTIES = ["p1", "p2", "p3"]

    @pytest.mark.parametrize("left,right", list(itertools.product([False, True], repeat=2)))
    def test_and_of_shared_bits(self, left, right):
        op = central(self.PARTIES)
        left_shares = secret_share(
            op, self.PARTIES, "p1", op.locally("p1", lambda _un: left), seed=1, context="L"
        )
        right_shares = secret_share(
            op, self.PARTIES, "p2", op.locally("p2", lambda _un: right), seed=2, context="R"
        )
        product = shared_and(
            op, self.PARTIES, left_shares, right_shares, seed=3, rsa_bits=RSA_BITS
        )
        assert reveal(op, self.PARTIES, product) == (left and right)

    def test_ot_count_is_one_per_ordered_pair(self):
        op = central(self.PARTIES)
        left_shares = secret_share(
            op, self.PARTIES, "p1", op.locally("p1", lambda _un: True), seed=1, context="L"
        )
        right_shares = secret_share(
            op, self.PARTIES, "p2", op.locally("p2", lambda _un: True), seed=2, context="R"
        )
        before = op.stats.total_messages
        shared_and(op, self.PARTIES, left_shares, right_shares, seed=3, rsa_bits=RSA_BITS)
        n = len(self.PARTIES)
        # each ordered pair of distinct parties runs one OT (2 messages each)
        assert op.stats.total_messages - before == 2 * n * (n - 1)


class TestCircuitLeveling:
    def test_layers_group_and_gates_by_depth(self):
        parties = ["p1", "p2", "p3", "p4"]
        circuit = circuits.deep_and_tree(parties, depth=3)
        leveled = level_circuit(circuit)
        assert leveled.round_count == 3
        assert [len(layer) for layer in leveled.and_layers] == [4, 2, 1]
        assert len(leveled.input_ids) == 8

    def test_structural_dedup_shares_common_subtrees(self):
        a = circuits.InputWire("p1", "a")
        b = circuits.InputWire("p2", "b")
        leveled = level_circuit(circuits.or_gate(a, b))  # a and b appear twice each
        assert len(leveled.input_ids) == 2
        counted = circuits.count_gates(circuits.or_gate(a, b))
        assert counted["input"] == 4  # the tree view still sees 4 occurrences

    def test_children_precede_parents(self):
        parties = ["p1", "p2", "p3"]
        leveled = level_circuit(circuits.alternating_tree(parties, depth=3))
        for index, children in enumerate(leveled.child_ids):
            if children is not None:
                assert children[0] < index and children[1] < index

    def test_xor_gates_do_not_add_rounds(self):
        parties = ["p1", "p2", "p3"]
        leveled = level_circuit(circuits.xor_tree(parties))
        assert leveled.round_count == 0
        assert leveled.and_layers == ()


class TestBatchedPrimitives:
    PARTIES = ["p1", "p2", "p3"]

    def test_secret_share_batch_reconstructs_every_secret(self):
        op = central(self.PARTIES)
        secrets = [True, False, True, True]
        values = op.locally("p2", lambda _un: secrets)
        batch = secret_share_batch(op, self.PARTIES, "p2", values, seed=11)
        for index, secret in enumerate(secrets):
            per_wire = op.parallel(
                self.PARTIES, lambda _party, un, _i=index: bool(un(batch)[_i])
            )
            assert reveal(op, self.PARTIES, per_wire) == secret

    def test_secret_share_batch_costs_one_message_per_peer(self):
        def chor(op):
            values = op.locally("p1", lambda _un: [True, False, True])
            secret_share_batch(op, self.PARTIES, "p1", values, seed=2)

        result = run_choreography(chor, self.PARTIES)
        # three secrets, still one message per (dealer, peer) pair
        assert result.stats.total_messages == len(self.PARTIES) - 1

    @pytest.mark.parametrize("bits", [(False, False), (True, False), (True, True)])
    def test_shared_and_layer_matches_plain_and(self, bits):
        op = central(self.PARTIES)
        pairs = []
        for index, _ in enumerate(bits):
            u = secret_share(
                op, self.PARTIES, "p1",
                op.locally("p1", lambda _un, _i=index: bits[_i]),
                seed=21, context=f"u{index}",
            )
            v = secret_share(
                op, self.PARTIES, "p2",
                op.locally("p2", lambda _un: True),
                seed=22, context=f"v{index}",
            )
            pairs.append((u, v))
        products = shared_and_layer(op, self.PARTIES, pairs, seed=23, rsa_bits=RSA_BITS)
        for bit, product in zip(bits, products):
            assert reveal(op, self.PARTIES, product) == (bit and True)

    def test_layer_message_count_is_independent_of_gate_count(self):
        op = central(self.PARTIES)
        n = len(self.PARTIES)

        def make_pairs(count, tag):
            pairs = []
            for index in range(count):
                u = secret_share(
                    op, self.PARTIES, "p1",
                    op.locally("p1", lambda _un: True), seed=31, context=f"{tag}u{index}",
                )
                v = secret_share(
                    op, self.PARTIES, "p2",
                    op.locally("p2", lambda _un: False), seed=32, context=f"{tag}v{index}",
                )
                pairs.append((u, v))
            return pairs

        one_gate = make_pairs(1, "a")
        before = op.stats.total_messages
        shared_and_layer(op, self.PARTIES, one_gate, seed=33, rsa_bits=RSA_BITS)
        single_cost = op.stats.total_messages - before

        five_gates = make_pairs(5, "b")
        before = op.stats.total_messages
        shared_and_layer(op, self.PARTIES, five_gates, seed=34, rsa_bits=RSA_BITS)
        batched_cost = op.stats.total_messages - before

        assert single_cost == batched_cost == 2 * n * (n - 1)

    def test_empty_layer_is_free(self):
        op = central(self.PARTIES)
        before = op.stats.total_messages
        assert shared_and_layer(op, self.PARTIES, [], seed=1) == []
        assert op.stats.total_messages == before


def run_gmw(circuit, inputs, parties, transport="local"):
    def chor(op, my_inputs=None):
        return gmw(op, parties, circuit, my_inputs, seed=7, rsa_bits=RSA_BITS)

    return run_choreography(
        chor,
        parties,
        location_args={party: (inputs.get(party, {}),) for party in parties},
        transport=transport,
    )


class TestGMWEndToEnd:
    PARTIES = ["p1", "p2", "p3"]

    def majority(self):
        return circuits.majority3(
            circuits.InputWire("p1", "a"),
            circuits.InputWire("p2", "b"),
            circuits.InputWire("p3", "c"),
        )

    @pytest.mark.parametrize(
        "bits", list(itertools.product([False, True], repeat=3))
    )
    def test_majority_circuit_matches_plaintext(self, bits):
        inputs = {"p1": {"a": bits[0]}, "p2": {"b": bits[1]}, "p3": {"c": bits[2]}}
        expected = circuits.evaluate_plain(self.majority(), inputs)
        stats = ChannelStats()
        observed = run_centralized(
            lambda op, my=None: gmw(op, self.PARTIES, self.majority(), inputs, seed=7,
                                    rsa_bits=RSA_BITS),
            self.PARTIES,
            stats=stats,
        )
        assert observed == expected

    def test_projected_run_agrees_everywhere(self):
        inputs = {"p1": {"a": True}, "p2": {"b": True}, "p3": {"c": False}}
        expected = circuits.evaluate_plain(self.majority(), inputs)
        result = run_gmw(self.majority(), inputs, self.PARTIES)
        assert set(result.returns.values()) == {expected}

    def test_xor_only_circuit_needs_only_sharing_and_reveal_messages(self):
        circuit = circuits.xor_tree(self.PARTIES)
        inputs = {p: {"x": True} for p in self.PARTIES}
        result = run_gmw(circuit, inputs, self.PARTIES)
        expected = circuits.evaluate_plain(circuit, inputs)
        assert set(result.returns.values()) == {expected}
        n = len(self.PARTIES)
        sharing = n * (n - 1)   # each party deals shares of its input
        reveal_msgs = n * (n - 1)  # everyone opens its output share to everyone
        assert result.stats.total_messages == sharing + reveal_msgs

    @pytest.mark.parametrize("n_parties", [2, 4])
    def test_census_polymorphism_over_party_count(self, n_parties):
        parties = [f"p{i}" for i in range(1, n_parties + 1)]
        circuit = circuits.and_tree(parties)
        inputs = {p: {"x": True} for p in parties}
        result = run_gmw(circuit, inputs, parties)
        assert set(result.returns.values()) == {True}

    def test_literal_wires(self):
        circuit = circuits.AndGate(circuits.LitWire(True), circuits.InputWire("p1", "a"))
        inputs = {"p1": {"a": True}, "p2": {}, "p3": {}}
        result = run_gmw(circuit, inputs, self.PARTIES)
        assert set(result.returns.values()) == {True}

    def test_missing_input_fails_loudly(self):
        circuit = circuits.InputWire("p1", "a")
        with pytest.raises(Exception):
            run_gmw(circuit, {"p1": {}}, self.PARTIES)

    def test_nested_dict_inputs_for_centralized_runs(self):
        circuit = circuits.XorGate(
            circuits.InputWire("p1", "a"), circuits.InputWire("p2", "b")
        )
        inputs = {"p1": {"a": True}, "p2": {"b": True}, "p3": {}}
        observed = run_centralized(
            lambda op, my=None: gmw(op, self.PARTIES, circuit, inputs, seed=1, rsa_bits=RSA_BITS),
            self.PARTIES,
        )
        assert observed is False

    def test_intermediate_values_stay_shared(self):
        """share_circuit returns a faceted value whose reconstruction is the
        plaintext result, but no single facet equals it systematically."""
        circuit = circuits.AndGate(
            circuits.InputWire("p1", "a"), circuits.InputWire("p2", "b")
        )
        inputs = {"p1": {"a": True}, "p2": {"b": True}, "p3": {}}
        op = central(self.PARTIES)
        shares = share_circuit(op, self.PARTIES, circuit, inputs, seed=5, rsa_bits=RSA_BITS)
        quire = shares.to_quire()
        from repro.protocols.secretshare import xor_all

        assert xor_all(quire.values()) is True
