"""Tests for the GMW secure-computation case study."""

from __future__ import annotations

import itertools

import pytest

from repro.core.locations import Census
from repro.protocols import circuits
from repro.protocols.gmw import gmw, reveal, secret_share, share_circuit, shared_and
from repro.runtime.central import CentralOp
from repro.runtime.runner import run_choreography
from repro.runtime.stats import ChannelStats
from repro.runtime.central import run_centralized

RSA_BITS = 128  # keep key generation fast in tests


def central(parties):
    return CentralOp(parties)


class TestSecretShareAndReveal:
    PARTIES = ["p1", "p2", "p3"]

    @pytest.mark.parametrize("secret", [True, False])
    def test_share_then_reveal_roundtrip(self, secret):
        op = central(self.PARTIES)
        value = op.locally("p2", lambda _un: secret)
        shares = secret_share(op, self.PARTIES, "p2", value, seed=4)
        assert reveal(op, self.PARTIES, shares) == secret

    def test_shares_have_no_common_owners(self):
        op = central(self.PARTIES)
        value = op.locally("p1", lambda _un: True)
        shares = secret_share(op, self.PARTIES, "p1", value, seed=4)
        assert list(shares.common) == []
        assert list(shares.owners) == self.PARTIES

    def test_dealer_endpoint_forgets_dealt_shares(self):
        def chor(op):
            value = op.locally("p1", lambda _un: True)
            return secret_share(op, self.PARTIES, "p1", value, seed=4)

        result = run_choreography(chor, self.PARTIES)
        dealer_view = result.returns["p1"].visible_facets()
        assert list(dealer_view) == ["p1"]

    def test_sharing_costs_one_message_per_other_party(self):
        def chor(op):
            value = op.locally("p1", lambda _un: True)
            secret_share(op, self.PARTIES, "p1", value, seed=4)

        result = run_choreography(chor, self.PARTIES)
        assert result.stats.total_messages == len(self.PARTIES) - 1


class TestSharedAnd:
    PARTIES = ["p1", "p2", "p3"]

    @pytest.mark.parametrize("left,right", list(itertools.product([False, True], repeat=2)))
    def test_and_of_shared_bits(self, left, right):
        op = central(self.PARTIES)
        left_shares = secret_share(
            op, self.PARTIES, "p1", op.locally("p1", lambda _un: left), seed=1, context="L"
        )
        right_shares = secret_share(
            op, self.PARTIES, "p2", op.locally("p2", lambda _un: right), seed=2, context="R"
        )
        product = shared_and(
            op, self.PARTIES, left_shares, right_shares, seed=3, rsa_bits=RSA_BITS
        )
        assert reveal(op, self.PARTIES, product) == (left and right)

    def test_ot_count_is_one_per_ordered_pair(self):
        op = central(self.PARTIES)
        left_shares = secret_share(
            op, self.PARTIES, "p1", op.locally("p1", lambda _un: True), seed=1, context="L"
        )
        right_shares = secret_share(
            op, self.PARTIES, "p2", op.locally("p2", lambda _un: True), seed=2, context="R"
        )
        before = op.stats.total_messages
        shared_and(op, self.PARTIES, left_shares, right_shares, seed=3, rsa_bits=RSA_BITS)
        n = len(self.PARTIES)
        # each ordered pair of distinct parties runs one OT (2 messages each)
        assert op.stats.total_messages - before == 2 * n * (n - 1)


def run_gmw(circuit, inputs, parties, transport="local"):
    def chor(op, my_inputs=None):
        return gmw(op, parties, circuit, my_inputs, seed=7, rsa_bits=RSA_BITS)

    return run_choreography(
        chor,
        parties,
        location_args={party: (inputs.get(party, {}),) for party in parties},
        transport=transport,
    )


class TestGMWEndToEnd:
    PARTIES = ["p1", "p2", "p3"]

    def majority(self):
        return circuits.majority3(
            circuits.InputWire("p1", "a"),
            circuits.InputWire("p2", "b"),
            circuits.InputWire("p3", "c"),
        )

    @pytest.mark.parametrize(
        "bits", list(itertools.product([False, True], repeat=3))
    )
    def test_majority_circuit_matches_plaintext(self, bits):
        inputs = {"p1": {"a": bits[0]}, "p2": {"b": bits[1]}, "p3": {"c": bits[2]}}
        expected = circuits.evaluate_plain(self.majority(), inputs)
        stats = ChannelStats()
        observed = run_centralized(
            lambda op, my=None: gmw(op, self.PARTIES, self.majority(), inputs, seed=7,
                                    rsa_bits=RSA_BITS),
            self.PARTIES,
            stats=stats,
        )
        assert observed == expected

    def test_projected_run_agrees_everywhere(self):
        inputs = {"p1": {"a": True}, "p2": {"b": True}, "p3": {"c": False}}
        expected = circuits.evaluate_plain(self.majority(), inputs)
        result = run_gmw(self.majority(), inputs, self.PARTIES)
        assert set(result.returns.values()) == {expected}

    def test_xor_only_circuit_needs_only_sharing_and_reveal_messages(self):
        circuit = circuits.xor_tree(self.PARTIES)
        inputs = {p: {"x": True} for p in self.PARTIES}
        result = run_gmw(circuit, inputs, self.PARTIES)
        expected = circuits.evaluate_plain(circuit, inputs)
        assert set(result.returns.values()) == {expected}
        n = len(self.PARTIES)
        sharing = n * (n - 1)   # each party deals shares of its input
        reveal_msgs = n * (n - 1)  # everyone opens its output share to everyone
        assert result.stats.total_messages == sharing + reveal_msgs

    @pytest.mark.parametrize("n_parties", [2, 4])
    def test_census_polymorphism_over_party_count(self, n_parties):
        parties = [f"p{i}" for i in range(1, n_parties + 1)]
        circuit = circuits.and_tree(parties)
        inputs = {p: {"x": True} for p in parties}
        result = run_gmw(circuit, inputs, parties)
        assert set(result.returns.values()) == {True}

    def test_literal_wires(self):
        circuit = circuits.AndGate(circuits.LitWire(True), circuits.InputWire("p1", "a"))
        inputs = {"p1": {"a": True}, "p2": {}, "p3": {}}
        result = run_gmw(circuit, inputs, self.PARTIES)
        assert set(result.returns.values()) == {True}

    def test_missing_input_fails_loudly(self):
        circuit = circuits.InputWire("p1", "a")
        with pytest.raises(Exception):
            run_gmw(circuit, {"p1": {}}, self.PARTIES)

    def test_nested_dict_inputs_for_centralized_runs(self):
        circuit = circuits.XorGate(
            circuits.InputWire("p1", "a"), circuits.InputWire("p2", "b")
        )
        inputs = {"p1": {"a": True}, "p2": {"b": True}, "p3": {}}
        observed = run_centralized(
            lambda op, my=None: gmw(op, self.PARTIES, circuit, inputs, seed=1, rsa_bits=RSA_BITS),
            self.PARTIES,
        )
        assert observed is False

    def test_intermediate_values_stay_shared(self):
        """share_circuit returns a faceted value whose reconstruction is the
        plaintext result, but no single facet equals it systematically."""
        circuit = circuits.AndGate(
            circuits.InputWire("p1", "a"), circuits.InputWire("p2", "b")
        )
        inputs = {"p1": {"a": True}, "p2": {"b": True}, "p3": {}}
        op = central(self.PARTIES)
        shares = share_circuit(op, self.PARTIES, circuit, inputs, seed=5, rsa_bits=RSA_BITS)
        quire = shares.to_quire()
        from repro.protocols.secretshare import xor_all

        assert xor_all(quire.values()) is True
