"""Unit tests for locations and censuses."""

from __future__ import annotations

import pytest

from repro.core.errors import CensusError, EmptyCensusError
from repro.core.locations import Census, as_census, single


class TestCensusConstruction:
    def test_members_preserve_order(self):
        census = Census(["c", "a", "b"])
        assert census.members == ("c", "a", "b")

    def test_accepts_tuple_and_census(self):
        assert Census(("a", "b")).members == ("a", "b")
        assert Census(Census(["a", "b"])).members == ("a", "b")

    def test_rejects_duplicates(self):
        with pytest.raises(CensusError, match="duplicate"):
            Census(["a", "b", "a"])

    def test_rejects_bare_string(self):
        with pytest.raises(CensusError, match="single string"):
            Census("alice")

    def test_rejects_non_string_members(self):
        with pytest.raises(CensusError):
            Census(["a", 3])

    def test_rejects_empty_string_member(self):
        with pytest.raises(CensusError):
            Census(["a", ""])

    def test_empty_census_is_allowed_until_required_nonempty(self):
        census = Census([])
        assert len(census) == 0
        with pytest.raises(EmptyCensusError):
            census.require_nonempty()

    def test_repr_lists_members(self):
        assert "alice" in repr(Census(["alice"]))


class TestCensusProtocol:
    def test_len_iter_contains(self):
        census = Census(["a", "b", "c"])
        assert len(census) == 3
        assert list(census) == ["a", "b", "c"]
        assert "b" in census
        assert "z" not in census

    def test_getitem(self):
        census = Census(["a", "b", "c"])
        assert census[0] == "a"
        assert census[2] == "c"

    def test_equality_with_census_and_sequences(self):
        census = Census(["a", "b"])
        assert census == Census(["a", "b"])
        assert census == ("a", "b")
        assert census == ["a", "b"]
        assert census != Census(["b", "a"])

    def test_hashable(self):
        assert len({Census(["a", "b"]), Census(["a", "b"]), Census(["b", "a"])}) == 2


class TestMembershipAndSubsets:
    def test_index_of(self):
        census = Census(["a", "b", "c"])
        assert census.index_of("b") == 1

    def test_index_of_missing_raises(self):
        with pytest.raises(CensusError, match="not in census"):
            Census(["a"]).index_of("b")

    def test_require_member_returns_location(self):
        assert Census(["a", "b"]).require_member("a") == "a"

    def test_require_subset_returns_argument_order(self):
        census = Census(["a", "b", "c"])
        subset = census.require_subset(["c", "a"])
        assert subset.members == ("c", "a")

    def test_require_subset_missing_raises(self):
        with pytest.raises(CensusError, match="not in census"):
            Census(["a", "b"]).require_subset(["a", "z"])

    def test_is_subset_of(self):
        assert Census(["a"]).is_subset_of(Census(["a", "b"]))
        assert not Census(["a", "z"]).is_subset_of(Census(["a", "b"]))


class TestCensusAlgebra:
    def test_restricted_to_preserves_self_order(self):
        census = Census(["a", "b", "c", "d"])
        assert census.restricted_to(["d", "b"]).members == ("b", "d")

    def test_union_appends_new_members(self):
        assert Census(["a", "b"]).union(["b", "c"]).members == ("a", "b", "c")

    def test_without_removes_members(self):
        assert Census(["a", "b", "c"]).without(["b", "z"]).members == ("a", "c")

    def test_as_census_idempotent(self):
        census = Census(["a"])
        assert as_census(census) is census
        assert as_census(["a", "b"]).members == ("a", "b")

    def test_single(self):
        assert single("alice").members == ("alice",)
        with pytest.raises(CensusError):
            single("")
