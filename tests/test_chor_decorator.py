"""Tests for the @choreography decorator and first-class choreography objects."""

from __future__ import annotations

import pytest

from repro import ChoreoEngine, choreography, run_choreography
from repro.chor import ChoreographyDef
from repro.core.errors import CensusError


@choreography(census=["buyer", "seller"])
def bookstore(op, title):
    """Buyer asks seller for a price; both learn it."""
    catalogue = {"TAPL": 80, "HoTT": 120}
    wanted = op.locally("buyer", lambda _un: title)
    request = op.comm("buyer", "seller", wanted)
    price = op.locally("seller", lambda un: catalogue.get(un(request), -1))
    return op.broadcast("seller", price)


@choreography
def anonymous_ping(op, payload):
    return op.broadcast("a", op.locally("a", lambda _un: payload))


class TestDecorator:
    def test_wraps_metadata(self):
        assert isinstance(bookstore, ChoreographyDef)
        assert bookstore.name == "bookstore"
        assert "Buyer asks seller" in bookstore.__doc__
        assert list(bookstore.census) == ["buyer", "seller"]
        assert anonymous_ping.census is None

    def test_custom_name(self):
        @choreography(name="fancy")
        def plain(op):
            return None

        assert plain.name == "fancy"
        assert "fancy" in repr(plain)

    def test_still_a_plain_choreography(self):
        # A decorated choreography drops into every existing entry point and
        # composes under conclave like the bare function would.
        result = run_choreography(bookstore, ["buyer", "seller"], args=("TAPL",))
        assert result.returns["buyer"] == 80

        def outer(op):
            wrapped = op.conclave(["buyer", "seller"], bookstore, "HoTT")
            return op.locally("buyer", lambda un: un(wrapped))

        nested = run_choreography(outer, ["buyer", "seller", "auditor"])
        assert nested.value_at("buyer") == 120


class TestRunConvenience:
    def test_run_uses_census_contract(self):
        result = bookstore.run(args=("TAPL",))
        assert result.returns["seller"] == 80

    @pytest.mark.parametrize("backend", ["local", "central"])
    def test_run_accepts_backend(self, backend):
        result = bookstore.run(args=("TAPL",), backend=backend)
        assert result.value_at("buyer") == 80

    def test_run_on_a_persistent_engine(self):
        with ChoreoEngine(["buyer", "seller"], backend="local") as engine:
            assert engine.run(bookstore, args=("TAPL",)).returns["buyer"] == 80

    def test_census_may_extend_contract(self):
        result = bookstore.run(["buyer", "seller", "observer"], args=("TAPL",))
        assert result.returns["observer"] == 80

    def test_census_must_cover_contract(self):
        with pytest.raises(CensusError):
            bookstore.run(["buyer", "auditor"], args=("TAPL",))

    def test_missing_contract_requires_census(self):
        with pytest.raises(ValueError, match="census contract"):
            anonymous_ping.run(args=("x",))
        assert anonymous_ping.run(["a", "b"], args=("x",)).returns["b"] == "x"


class TestAnalysisConveniences:
    def test_check_delegates_to_checker(self):
        report = bookstore.check(args=("TAPL",))
        assert report.ok
        assert report.messages == 2

    def test_cost_delegates_to_comm_cost(self):
        cost = bookstore.cost(None, "TAPL")
        assert cost.total_messages == 2
        assert cost.per_channel == {("buyer", "seller"): 1, ("seller", "buyer"): 1}

    def test_check_catches_census_violations(self):
        @choreography(census=["a", "b"])
        def broken(op):
            return op.locally("mallory", lambda _un: 1)

        report = broken.check()
        assert not report.ok
