"""Tests for the sharded KVS cluster subsystem (`repro.cluster`)."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterClient, ClusterEngine, ShardRouter
from repro.protocols.kvs import Request, Response, ResponseKind
from repro.runtime.stats import ChannelStats

#: Pinned key → shard assignments for the default 4-shard, 64-vnode ring.
#: These change only if the ring hash or layout changes — which would strand
#: every key a deployed cluster already stored.
GOLDEN_DEFAULT_RING = {
    "alpha": "shard3",
    "bravo": "shard0",
    "charlie": "shard1",
    "delta": "shard0",
    "user:0001": "shard2",
    "user:0002": "shard2",
    "": "shard1",
}


class TestShardRouter:
    def test_pinned_assignments_default_ring(self):
        router = ShardRouter(4)
        assert {key: router.shard_for(key) for key in GOLDEN_DEFAULT_RING} == (
            GOLDEN_DEFAULT_RING
        )

    def test_deterministic_across_processes(self):
        """A fresh interpreter (different hash salt) routes identically."""
        keys = sorted(GOLDEN_DEFAULT_RING)
        script = (
            "from repro.cluster import ShardRouter\n"
            f"router = ShardRouter(4)\n"
            f"print(';'.join(router.shard_for(k) for k in {keys!r}))\n"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "12345"  # a salt the parent is unlikely to share
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in [os.path.join(os.getcwd(), "src"),
                        env.get("PYTHONPATH", "")] if p
        )
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            timeout=60, check=True, env=env,
        ).stdout.strip()
        assert out.split(";") == [GOLDEN_DEFAULT_RING[k] for k in keys]

    def test_same_config_same_mapping(self):
        keys = [f"key{i}" for i in range(500)]
        first = ShardRouter(["a", "b", "c"], vnodes=32).assignment(keys)
        second = ShardRouter(["a", "b", "c"], vnodes=32).assignment(keys)
        assert first == second

    def test_all_shards_get_keys(self):
        router = ShardRouter(4)
        assignment = router.assignment(f"key{i}" for i in range(1000))
        assert set(assignment.values()) == set(router.shards)

    def test_ring_stability_on_add(self):
        """Adding a shard moves only the keys the new shard takes over."""
        keys = [f"key{i}" for i in range(1000)]
        router = ShardRouter(4)
        before = router.assignment(keys)
        router.add_shard("shard4")
        after = router.assignment(keys)
        moved = {key for key in keys if before[key] != after[key]}
        # Every moved key lands on the new shard; survivors never reshuffle.
        assert all(after[key] == "shard4" for key in moved)
        # The new shard takes ≈1/5 of the keyspace, not a full reshuffle.
        assert 0 < len(moved) < len(keys) * 0.4

    def test_remove_restores_prior_assignment(self):
        keys = [f"key{i}" for i in range(300)]
        router = ShardRouter(4)
        before = router.assignment(keys)
        router.add_shard("extra")
        router.remove_shard("extra")
        assert router.assignment(keys) == before

    def test_membership_errors(self):
        router = ShardRouter(2)
        with pytest.raises(ValueError):
            router.add_shard("shard0")
        with pytest.raises(ValueError):
            router.remove_shard("ghost")
        with pytest.raises(ValueError):
            ShardRouter([])
        with pytest.raises(ValueError):
            ShardRouter(2, vnodes=0)
        router.remove_shard("shard1")
        with pytest.raises(ValueError):
            router.remove_shard("shard0")


#: Fixed key corpus for the minimal-movement property: large enough that
#: every shard owns keys, small enough to re-route after each membership op.
PROPERTY_KEYS = [f"key:{index:04d}" for index in range(200)]


class TestShardRouterProperties:
    """Property-based minimal-movement invariant, with a pinned seed.

    ``derandomize=True`` pins Hypothesis to a deterministic example stream
    (no hidden database, no flaky shrink in CI): the suite always explores
    the same add/remove sequences, which is the seed discipline the chaos
    tests follow too (``docs/testing.md``).
    """

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(steps=st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=10))
    def test_membership_changes_move_exactly_the_ownership_delta(self, steps):
        """Under any add/remove sequence, the moved-key set is exactly the
        ring-ownership delta: keys moving *to* an added shard (and nothing
        else changes), keys moving *off* a removed shard (ditto)."""
        router = ShardRouter(["seed0", "seed1"], vnodes=16)
        fresh_ids = (f"new{index}" for index in range(len(steps)))
        for step in steps:
            before = {key: router.shard_for(key) for key in PROPERTY_KEYS}
            live = list(router.shards)
            if step % 2 == 0 or len(live) == 1:
                shard = next(fresh_ids)
                router.add_shard(shard)
                after = {key: router.shard_for(key) for key in PROPERTY_KEYS}
                moved = {key for key in PROPERTY_KEYS if before[key] != after[key]}
                # Every move lands on the newcomer, and the newcomer's whole
                # take *is* the moved set — survivors never exchange keys.
                assert moved == {
                    key for key in PROPERTY_KEYS if after[key] == shard
                }
            else:
                shard = live[step % len(live)]
                router.remove_shard(shard)
                after = {key: router.shard_for(key) for key in PROPERTY_KEYS}
                moved = {key for key in PROPERTY_KEYS if before[key] != after[key]}
                # Exactly the dead shard's keys move; nothing else budges.
                assert moved == {
                    key for key in PROPERTY_KEYS if before[key] == shard
                }

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(steps=st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=8))
    def test_assignment_depends_only_on_the_membership_set(self, steps):
        """However a membership was reached — and in whatever order — a
        fresh router over the same shard set routes every key identically."""
        router = ShardRouter(["seed0", "seed1"], vnodes=16)
        fresh_ids = (f"new{index}" for index in range(len(steps)))
        for step in steps:
            live = list(router.shards)
            if step % 2 == 0 or len(live) == 1:
                router.add_shard(next(fresh_ids))
            else:
                router.remove_shard(live[step % len(live)])
        rebuilt = ShardRouter(sorted(router.shards), vnodes=16)
        assert rebuilt.assignment(PROPERTY_KEYS) == router.assignment(PROPERTY_KEYS)


class TestClusterEngine:
    def test_put_get_round_trip_across_shards(self):
        with ClusterEngine(3, replication=2) as cluster:
            futures = [cluster.submit_put(f"k{i}", str(i)) for i in range(24)]
            for future in futures:
                assert isinstance(cluster.response_of(future.result()), Response)
            reads = [cluster.submit_get(f"k{i}") for i in range(24)]
            for index, future in enumerate(reads):
                response = cluster.response_of(future.result())
                assert response == Response.found(str(index))
            # The workload spread over more than one shard.
            touched = {cluster.shard_for(f"k{i}") for i in range(24)}
            assert len(touched) > 1

    def test_stats_rollup_equals_per_shard_sum(self):
        with ClusterEngine(4, replication=2) as cluster:
            futures = [cluster.submit_put(f"k{i}", "v") for i in range(40)]
            futures += [cluster.submit_get(f"k{i}") for i in range(40)]
            for future in futures:
                future.result()
            rollup = cluster.stats
            per_shard = cluster.per_shard_stats()
            assert rollup.total_messages == sum(
                stats.total_messages for stats in per_shard.values()
            )
            assert rollup.total_bytes == sum(
                stats.total_bytes for stats in per_shard.values()
            )
            merged = ChannelStats.merge_all(per_shard.values())
            assert rollup.snapshot() == merged.snapshot()
            # Every shard served some traffic.
            assert all(stats.total_messages > 0 for stats in per_shard.values())

    def test_batch_preserves_order_and_group_commits(self):
        with ClusterEngine(2, replication=2) as cluster:
            requests = [
                Request.put("x", "1"),
                Request.get("x"),
                Request.put("x", "2"),
                Request.get("x"),
                Request.get("unbound"),
            ]
            before = cluster.stats.total_messages
            responses = [f.result() for f in cluster.submit_batch(requests)]
            batch_messages = cluster.stats.total_messages - before
            assert responses[0].kind is ResponseKind.NOT_FOUND
            assert responses[1] == Response.found("1")
            assert responses[2] == Response.found("1")
            assert responses[3] == Response.found("2")
            assert responses[4].kind is ResponseKind.NOT_FOUND
            # One replica-group round per touched shard, not per request:
            # a shard with puts costs 4 messages (replication 2), one with
            # only gets costs 2.
            assert batch_messages <= 4 * len({cluster.shard_for("x"),
                                              cluster.shard_for("unbound")})

    def test_batch_routes_keyless_stop_requests(self):
        """A STOP in a batch is answered ``stopped``, not a routing crash."""
        with ClusterEngine(2, replication=2) as cluster:
            responses = [
                f.result()
                for f in cluster.submit_batch(
                    [Request.put("a", "1"), Request.stop(), Request.get("a")]
                )
            ]
            assert responses[1].kind is ResponseKind.STOPPED
            assert responses[2] == Response.found("1")

    def test_replication_one_serves_without_backups(self):
        with ClusterEngine(2, replication=1) as cluster:
            client = ClusterClient(cluster)
            assert client.put("solo", "value") is None
            assert client.get("solo") == "value"
            # A quorum read over a replication-1 shard degrades to a primary
            # read rather than failing.
            assert client.get("solo", quorum=True) == "value"

    def test_pending_counts_in_flight(self):
        with ClusterEngine(2, replication=2) as cluster:
            futures = [cluster.submit_put(f"k{i}", "v") for i in range(8)]
            for future in futures:
                future.result()
            # Pending settles *before* a Future resolves, so a caller that
            # has seen every result() return observes quiescence immediately
            # (no polling) — the contract add_shard's precondition relies on.
            assert cluster.pending == 0
            cluster.add_shard()  # must not flake with "not quiescent"

    def test_add_shard_migrates_only_moved_keys(self):
        with ClusterEngine(2, replication=2) as cluster:
            client = ClusterClient(cluster)
            values = {f"key{i}": str(i) for i in range(60)}
            for key, value in values.items():
                client.put(key, value)
            before = cluster.router.assignment(values)
            new_shard = cluster.add_shard()
            after = cluster.router.assignment(values)
            moved = {key for key in values if before[key] != after[key]}
            assert moved, "a new shard should take over some keys"
            assert all(after[key] == new_shard for key in moved)
            # Every key still readable, wherever it lives now.
            for key, value in values.items():
                assert client.get(key) == value, key
            # The moved keys are gone from their old shards' stores.
            for key in moved:
                old = cluster.session(before[key])
                assert key not in old.state.facet_for(old.primary)
            # And present in the new shard's primary store.
            new_session = cluster.session(new_shard)
            new_store = new_session.state.facet_for(new_session.primary)
            assert all(key in new_store for key in moved)

    def test_add_shard_requires_quiescence(self):
        with ClusterEngine(2, replication=2) as cluster:
            # A healthy backlog: many puts still in flight.
            futures = [cluster.submit_put(f"k{i}", "v") for i in range(50)]
            try:
                with pytest.raises(RuntimeError, match="quiescent"):
                    cluster.add_shard()
            finally:
                for future in futures:
                    future.result()

    def test_submit_after_close_raises(self):
        cluster = ClusterEngine(2, replication=1)
        cluster.close()
        with pytest.raises(RuntimeError):
            cluster.submit_put("k", "v")
        cluster.close()  # idempotent

    def test_invalid_replication(self):
        with pytest.raises(ValueError):
            ClusterEngine(2, replication=0)


class TestQuorumReads:
    def test_quorum_agrees_with_primary_when_healthy(self):
        with ClusterClient(shards=2, replication=3) as client:
            client.put("k", "v")
            assert client.get("k", quorum=True) == "v"

    def test_quorum_outvotes_a_corrupt_backup_and_repairs(self):
        with ClusterEngine(1, replication=3) as cluster:
            client = ClusterClient(cluster)
            client.put("k", "good")
            session = cluster.session("shard0")
            backup = session.backups[0]
            session.state.facet_for(backup)["k"] = "corrupt"
            assert client.get("k", quorum=True) == "good"
            # Read repair re-propagated the primary's store.
            assert session.state.facet_for(backup)["k"] == "good"

    def test_quorum_without_read_repair_leaves_divergence(self):
        with ClusterEngine(1, replication=3) as cluster:
            client = ClusterClient(cluster)
            client.put("k", "good")
            session = cluster.session("shard0")
            backup = session.backups[0]
            session.state.facet_for(backup)["k"] = "corrupt"
            assert client.get("k", quorum=True, read_repair=False) == "good"
            assert session.state.facet_for(backup)["k"] == "corrupt"

    def test_repair_traffic_never_reaches_the_client(self):
        with ClusterEngine(1, replication=3) as cluster:
            client = ClusterClient(cluster)
            client.put("k", "good")
            session = cluster.session("shard0")

            def client_messages():
                stats = cluster.stats
                return stats.messages_involving(cluster.client)

            before = client_messages()
            assert client.get("k", quorum=True) == "good"
            healthy_cost = client_messages() - before

            session.state.facet_for(session.backups[0])["k"] = "corrupt"
            before = client_messages()
            assert client.get("k", quorum=True) == "good"
            repair_cost = client_messages() - before
            # Divergence and repair are conclave-internal: the client pays
            # exactly its two messages (one sent, one received) either way.
            assert healthy_cost == repair_cost == 2


class TestClusterClient:
    def test_put_returns_previous_value(self):
        with ClusterClient(shards=2, replication=2) as client:
            assert client.put("k", "1") is None
            assert client.put("k", "2") == "1"
            assert client.get("k") == "2"
            assert client.get("missing") is None

    def test_scan_merges_sorted_across_shards(self):
        with ClusterClient(shards=3, replication=2) as client:
            expected = []
            for i in range(30):
                client.put(f"user:{i:03d}", str(i))
                expected.append((f"user:{i:03d}", str(i)))
            client.put("other", "x")
            assert client.scan("user:") == sorted(expected)
            all_items = client.scan()
            assert ("other", "x") in all_items
            assert len(all_items) == 31
            assert all_items == sorted(all_items)

    def test_async_surface_pipelines(self):
        with ClusterClient(shards=2, replication=2) as client:
            puts = [client.put_async(f"k{i}", str(i)) for i in range(16)]
            for future in puts:
                assert future.result().kind in (
                    ResponseKind.FOUND, ResponseKind.NOT_FOUND
                )
            gets = [client.get_async(f"k{i}") for i in range(16)]
            assert [f.result().value for f in gets] == [str(i) for i in range(16)]

    def test_borrowed_cluster_left_open(self):
        with ClusterEngine(2, replication=1) as cluster:
            with ClusterClient(cluster) as client:
                client.put("k", "v")
            # The client borrowed the cluster: it must still serve.
            assert ClusterClient(cluster).get("k") == "v"

    def test_build_options_and_prebuilt_are_exclusive(self):
        with ClusterEngine(2, replication=1) as cluster:
            with pytest.raises(ValueError):
                ClusterClient(cluster, shards=4)

    def test_works_on_every_backend(self):
        for backend in ["local", "tcp"]:
            with ClusterClient(shards=2, replication=2, backend=backend) as client:
                assert client.put("k", backend) is None
                assert client.get("k") == backend
                assert client.get("k", quorum=True) == backend


class TestClusterDelete:
    def test_delete_round_trip(self):
        with ClusterClient(shards=2, replication=2) as client:
            client.put("k", "v")
            assert client.delete("k") == "v"
            assert client.get("k") is None
            assert client.delete("k") is None  # already absent: not found

    def test_delete_replicates_to_backups(self):
        with ClusterEngine(shards=1, replication=3) as cluster:
            client = ClusterClient(cluster)
            client.put("k", "v")
            client.delete("k")
            session = cluster.session("shard0")
            for replica in session.servers:
                assert "k" not in session.state.facet_for(replica)

    def test_delete_async_pipelines(self):
        with ClusterClient(shards=2, replication=2) as client:
            for i in range(8):
                client.put(f"k{i}", str(i))
            futures = [client.delete_async(f"k{i}") for i in range(8)]
            assert [f.result().value for f in futures] == [str(i) for i in range(8)]
            assert client.scan() == []

    def test_batch_with_deletes_preserves_per_key_order(self):
        with ClusterClient(shards=2, replication=2) as client:
            responses = client.batch([
                Request.put("a", "1"),
                Request.delete("a"),
                Request.get("a"),
                Request.put("a", "2"),
            ])
            kinds = [r.kind for r in responses]
            assert kinds == [
                ResponseKind.NOT_FOUND,  # fresh put
                ResponseKind.FOUND,      # delete returns the dropped value
                ResponseKind.NOT_FOUND,  # gone
                ResponseKind.NOT_FOUND,  # fresh again
            ]
            assert responses[1].value == "1"
            assert client.get("a") == "2"

    def test_health_reports_per_shard_pending(self):
        with ClusterEngine(shards=2, replication=2) as cluster:
            health = cluster.health()
            assert all(h.pending == 0 for h in health.values())
            futures = [cluster.submit_put(f"k{i}", "v") for i in range(6)]
            snapshot = cluster.health()
            assert all(h.pending >= 0 for h in snapshot.values())
            for future in futures:
                future.result()
            assert all(h.pending == 0 for h in cluster.health().values())


class TestClusterClientLifecycle:
    def test_close_is_idempotent(self):
        client = ClusterClient(shards=1, replication=2)
        client.put("k", "v")
        client.close()
        client.close()  # second close must be a no-op, not an error

    def test_context_exit_after_cluster_already_failed(self):
        # Exiting the client context after its cluster died underneath it
        # must not raise: close() on a closed cluster stays idempotent.
        with ClusterClient(shards=1, replication=2) as client:
            client.put("k", "v")
            client.cluster.close()

    def test_borrowed_close_after_owner_closed(self):
        cluster = ClusterEngine(shards=1, replication=2)
        borrowed = ClusterClient(cluster)
        cluster.close()
        borrowed.close()  # borrowed: never touches the (closed) cluster

    def test_flaky_connects_do_not_break_lifecycle(self):
        # Transient connect failures during traffic must leave close()
        # clean: the context exits without masking or leaking the retry.
        from repro import FaultPlan

        plan = FaultPlan(seed=7).flaky_connect(
            "client", "shard0.r0", failures=2, max_retries=0
        )
        with ClusterClient(
            shards=1, replication=2, backend="simulated", timeout=0.3,
            faults=plan, retries=2,
        ) as client:
            assert client.get("missing") is None
        client.close()  # post-context close stays idempotent too
