"""Property-based tests (hypothesis) for core data structures and the formal model."""

from __future__ import annotations

import pickle
import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime import wire

from repro.core.locations import Census
from repro.core.located import Quire
from repro.formal.generators import random_program
from repro.formal.projection import project
from repro.formal.properties import check_deadlock_freedom, check_preservation, check_projection
from repro.formal.semantics import evaluate
from repro.formal.typecheck import typecheck
from repro.protocols.circuits import (
    AndGate,
    InputWire,
    LitWire,
    XorGate,
    circuit_depth,
    count_gates,
    evaluate_plain,
    iter_nodes,
    or_gate,
    majority3,
)
from repro.protocols.crypto import (
    commitment,
    decrypt_bit,
    encrypt_bit,
    generate_rsa_keypair,
    is_probable_prime,
    party_rng,
    verify_commitment,
)
from repro.protocols.secretshare import (
    make_boolean_shares,
    make_modular_shares,
    reconstruct_boolean,
    reconstruct_modular,
    xor_all,
)

# --------------------------------------------------------------------- strategies --

location_names = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
    min_size=1,
    max_size=6,
    unique=True,
)

SETTINGS = settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# ------------------------------------------------------------------ core structures --


class TestCensusProperties:
    @given(location_names)
    @SETTINGS
    def test_restriction_is_idempotent(self, names):
        census = Census(names)
        once = census.restricted_to(names[: max(1, len(names) // 2)])
        assert once.restricted_to(once) == once

    @given(location_names, location_names)
    @SETTINGS
    def test_union_contains_both_operands(self, left, right):
        union = Census(left).union(right)
        assert all(name in union for name in left)
        assert all(name in union for name in right)

    @given(location_names)
    @SETTINGS
    def test_subset_of_self(self, names):
        census = Census(names)
        assert census.is_subset_of(census)
        assert census.require_subset(names) == census

    @given(location_names)
    @SETTINGS
    def test_index_of_round_trips(self, names):
        census = Census(names)
        for name in names:
            assert census[census.index_of(name)] == name


class TestQuireProperties:
    @given(location_names, st.integers())
    @SETTINGS
    def test_map_preserves_census(self, names, offset):
        quire = Quire.from_function(names, len)
        mapped = quire.map(lambda v: v + offset)
        assert mapped.census == quire.census
        assert mapped.values() == tuple(v + offset for v in quire.values())

    @given(location_names)
    @SETTINGS
    def test_modify_touches_only_target(self, names):
        quire = Quire.from_function(names, lambda _: 0)
        target = names[0]
        modified = quire.modify(target, lambda v: v + 1)
        assert modified[target] == 1
        assert all(modified[name] == 0 for name in names[1:])


# --------------------------------------------------------------------- secret sharing --


class TestSecretSharingProperties:
    @given(st.booleans(), location_names, st.integers(0, 2**32))
    @SETTINGS
    def test_boolean_shares_reconstruct(self, secret, names, seed):
        shares = make_boolean_shares(secret, names, party_rng(seed, "dealer"))
        assert set(shares) == set(names)
        assert reconstruct_boolean(shares) == secret

    @given(st.booleans(), location_names, st.integers(0, 2**32))
    @SETTINGS
    def test_any_single_boolean_share_is_unbiased_alone(self, secret, names, seed):
        """Dropping one share destroys the secret unless there was only one party."""
        if len(names) < 2:
            return
        shares = make_boolean_shares(secret, names, party_rng(seed, "dealer"))
        partial = dict(shares)
        partial.pop(names[0])
        # reconstructing from a strict subset gives secret XOR missing-share
        assert reconstruct_boolean(partial) == (secret != shares[names[0]])

    @given(
        st.integers(min_value=0, max_value=10**6),
        location_names,
        st.integers(2, 10**6),
        st.integers(0, 2**32),
    )
    @SETTINGS
    def test_modular_shares_reconstruct(self, secret, names, modulus, seed):
        shares = make_modular_shares(secret, names, modulus, party_rng(seed, "dealer"))
        assert all(0 <= share < modulus for share in shares.values())
        assert reconstruct_modular(shares, modulus) == secret % modulus

    @given(st.lists(st.booleans(), max_size=12))
    @SETTINGS
    def test_xor_all_matches_parity(self, bits):
        assert xor_all(bits) == (sum(bits) % 2 == 1)


# -------------------------------------------------------------------------- crypto --


class TestCryptoProperties:
    @given(st.booleans(), st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_rsa_bit_roundtrip(self, bit, seed):
        keys = generate_rsa_keypair(party_rng(seed, "kp"), bits=128)
        ciphertext = encrypt_bit(keys.public, bit, party_rng(seed, "pad"))
        assert decrypt_bit(keys, ciphertext) == bit

    @given(st.integers(0, 2**30), st.integers(0, 2**30))
    @SETTINGS
    def test_commitments_verify_and_bind(self, value, salt):
        digest = commitment(value, salt)
        assert verify_commitment(digest, value, salt)
        assert not verify_commitment(digest, value + 1, salt)
        assert not verify_commitment(digest, value, salt + 1)

    @given(st.integers(2, 10_000))
    @SETTINGS
    def test_probable_prime_agrees_with_trial_division(self, candidate):
        def slow_is_prime(n: int) -> bool:
            if n < 2:
                return False
            return all(n % d for d in range(2, int(n**0.5) + 1))

        assert is_probable_prime(candidate) == slow_is_prime(candidate)


# ------------------------------------------------------------------------- circuits --

circuit_strategy = st.recursive(
    st.one_of(
        st.builds(InputWire, st.sampled_from(["p1", "p2", "p3"]), st.sampled_from(["x", "y", "z"])),
        st.builds(LitWire, st.booleans()),
    ),
    lambda children: st.one_of(
        st.builds(AndGate, children, children),
        st.builds(XorGate, children, children),
    ),
    max_leaves=16,
)

full_inputs = st.fixed_dictionaries(
    {
        party: st.fixed_dictionaries({name: st.booleans() for name in ["x", "y", "z"]})
        for party in ["p1", "p2", "p3"]
    }
)


class TestCircuitProperties:
    @given(circuit_strategy, full_inputs)
    @SETTINGS
    def test_or_gate_matches_boolean_or(self, circuit, inputs):
        lhs = evaluate_plain(circuit, inputs)
        composed = or_gate(circuit, LitWire(False))
        assert evaluate_plain(composed, inputs) == lhs

    @given(circuit_strategy)
    @SETTINGS
    def test_gate_counts_are_consistent_with_node_iteration(self, circuit):
        counts = count_gates(circuit)
        assert sum(counts.values()) == sum(1 for _ in iter_nodes(circuit))
        assert circuit_depth(circuit) >= 0

    @given(full_inputs)
    @SETTINGS
    def test_majority3_is_the_median(self, inputs):
        circuit = majority3(InputWire("p1", "x"), InputWire("p2", "x"), InputWire("p3", "x"))
        bits = [inputs["p1"]["x"], inputs["p2"]["x"], inputs["p3"]["x"]]
        assert evaluate_plain(circuit, inputs) == (sum(bits) >= 2)


# ----------------------------------------------------------------------- wire codec --

wire_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)

wire_payloads = st.recursive(
    wire_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=5), children, max_size=4),
    ),
    max_leaves=16,
)

#: Values outside the fast paths, exercising the pickle fallback tag.
fallback_payloads = st.one_of(
    st.frozensets(st.integers(), max_size=5),
    st.sets(st.integers(), max_size=5),
    st.builds(complex, st.floats(allow_nan=False), st.floats(allow_nan=False)),
    st.lists(st.integers(), min_size=wire.MAX_FAST_ITEMS + 1, max_size=wire.MAX_FAST_ITEMS + 4),
)


class TestWireCodecProperties:
    @given(wire_payloads)
    @SETTINGS
    def test_roundtrip_is_identity_on_fast_path_types(self, payload):
        decoded = wire.decode(wire.encode(payload))
        assert decoded == payload
        assert type(decoded) is type(payload)

    @given(fallback_payloads)
    @SETTINGS
    def test_roundtrip_is_identity_on_pickle_fallback_types(self, payload):
        encoded = wire.encode(payload)
        assert encoded[0] == ord("P"), "expected the pickle fallback tag"
        decoded = wire.decode(encoded)
        assert decoded == payload
        assert type(decoded) is type(payload)

    @given(st.booleans())
    @SETTINGS
    def test_bool_fast_path_is_strictly_smaller_than_pickle(self, payload):
        assert len(wire.encode(payload)) < len(pickle.dumps(payload))

    @given(st.integers())
    @SETTINGS
    def test_int_fast_path_is_strictly_smaller_than_pickle(self, payload):
        assert len(wire.encode(payload)) < len(pickle.dumps(payload))

    @given(st.lists(st.booleans(), min_size=1, max_size=16))
    @SETTINGS
    def test_share_vectors_stay_compact(self, bits):
        # a batched share vector is ~2 bytes of framing plus one byte per bit
        assert len(wire.encode(bits)) <= len(bits) + 3

    def test_bool_int_str_are_not_conflated(self):
        assert wire.decode(wire.encode(True)) is True
        assert wire.decode(wire.encode(False)) is False
        one = wire.decode(wire.encode(1))
        assert one == 1 and type(one) is int
        assert wire.decode(wire.encode("1")) == "1"
        assert wire.decode(wire.encode(b"x")) == b"x"
        assert type(wire.decode(wire.encode((1,)))) is tuple
        assert type(wire.decode(wire.encode([1]))) is list


# ---------------------------------------------------------------- formal metatheory --


class TestFormalMetatheoryProperties:
    """Hypothesis-driven counterparts of Theorems 2–5 and Corollary 1."""

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_generated_programs_typecheck(self, seed):
        census, program = random_program(seed)
        typecheck(census, program)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_preservation(self, seed):
        census, program = random_program(seed)
        report = check_preservation(census, program)
        assert report, report.details

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_projection_bisimulates_central_semantics(self, seed):
        census, program = random_program(seed)
        report = check_projection(census, program, schedules=2, seed=seed % 1000)
        assert report, report.details

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_deadlock_freedom(self, seed):
        census, program = random_program(seed)
        report = check_deadlock_freedom(census, program, schedules=2, seed=seed % 1000)
        assert report, report.details

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_projection_of_final_value_is_a_value(self, seed):
        census, program = random_program(seed)
        final = evaluate(program)
        for party in sorted(census):
            projected = project(final, party)
            from repro.formal.local_lang import is_local_value

            assert is_local_value(projected)
