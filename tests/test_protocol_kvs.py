"""Tests for the replicated key-value store case study (Fig. 2 and App. B)."""

from __future__ import annotations

import pytest

from repro.analysis.comm_cost import communication_cost
from repro.core.locations import Census
from repro.protocols.kvs import (
    Request,
    RequestKind,
    Response,
    ResponseKind,
    hash_state,
    kvs_request,
    kvs_serve,
    kvs_with_backups,
    lookup_state,
    make_replica_states,
    update_state,
)
from repro.runtime.central import CentralOp
from repro.runtime.runner import run_choreography


SERVERS = ["s1", "s2", "s3"]
CLUSTER = ["client"] + SERVERS


def serve(requests, servers=None, fault_rate=0.0, seed=0):
    servers = servers or SERVERS
    census = ["client"] + servers

    def chor(op):
        return kvs_serve(op, "client", servers[0], servers, requests,
                         fault_rate=fault_rate, seed=seed)

    return run_choreography(chor, census)


class TestLocalStateHelpers:
    def test_update_returns_previous_binding(self):
        state = {}
        assert update_state(state, "k", "v1").kind is ResponseKind.NOT_FOUND
        previous = update_state(state, "k", "v2")
        assert previous.kind is ResponseKind.FOUND and previous.value == "v1"
        assert state["k"] == "v2"

    def test_lookup(self):
        state = {"k": "v"}
        assert lookup_state(state, "k") == Response.found("v")
        assert lookup_state(state, "missing").kind is ResponseKind.NOT_FOUND

    def test_fault_injection_corrupts_writes(self):
        import random

        state = {}
        update_state(state, "k", "v", fault_rate=1.0, rng=random.Random(0))
        assert state["k"] != "v"

    def test_hash_state_detects_divergence(self):
        assert hash_state({"a": "1"}) == hash_state({"a": "1"})
        assert hash_state({"a": "1"}) != hash_state({"a": "2"})

    def test_request_response_constructors(self):
        assert Request.put("k", "v").kind is RequestKind.PUT
        assert Request.get("k").key == "k"
        assert Request.stop().kind is RequestKind.STOP
        assert Response.stopped().kind is ResponseKind.STOPPED


class TestKVSSession:
    def test_get_after_put_round_trips(self):
        result = serve([Request.put("x", "1"), Request.get("x"), Request.stop()])
        responses = result.returns["client"]
        assert responses[1] == Response.found("1")
        assert responses[-1].kind is ResponseKind.STOPPED

    def test_get_of_missing_key(self):
        result = serve([Request.get("nope"), Request.stop()])
        assert result.returns["client"][0].kind is ResponseKind.NOT_FOUND

    def test_put_returns_previous_value(self):
        result = serve(
            [Request.put("x", "1"), Request.put("x", "2"), Request.get("x"), Request.stop()]
        )
        responses = result.returns["client"]
        assert responses[0].kind is ResponseKind.NOT_FOUND
        assert responses[1] == Response.found("1")
        assert responses[2] == Response.found("2")

    def test_session_stops_at_stop_request(self):
        result = serve([Request.stop(), Request.get("x")])
        assert len(result.returns["client"]) == 1

    def test_servers_return_client_responses_only_at_client(self):
        result = serve([Request.get("x"), Request.stop()])
        assert result.returns["client"]
        assert result.returns["s2"] == []

    @pytest.mark.parametrize("n_servers", [1, 2, 4, 6])
    def test_census_polymorphism_over_server_count(self, n_servers):
        servers = [f"srv{i}" for i in range(n_servers)]
        result = serve([Request.put("k", "v"), Request.get("k"), Request.stop()], servers)
        assert result.returns["client"][1] == Response.found("v")

    def test_replicas_all_apply_puts(self):
        def chor(op):
            states = make_replica_states(op, SERVERS)
            request = op.locally("client", lambda _un: Request.put("k", "v"))
            kvs_request(op, "client", "s1", SERVERS, states, request)
            return op.parallel(SERVERS, lambda _s, un: dict(un(states)))

        result = run_choreography(chor, CLUSTER)
        for server in SERVERS:
            assert result.returns[server].visible_facets()[server] == {"k": "v"}

    def test_faulty_writes_trigger_resynch_to_agreement(self):
        def chor(op):
            states = make_replica_states(op, SERVERS)
            request = op.locally("client", lambda _un: Request.put("k", "v"))
            kvs_request(op, "client", "s1", SERVERS, states, request, fault_rate=0.7, seed=11)
            return op.parallel(SERVERS, lambda _s, un: dict(un(states)))

        result = run_choreography(chor, CLUSTER)
        replicas = [result.returns[s].visible_facets()[s] for s in SERVERS]
        assert all(replica == replicas[0] for replica in replicas)

    def test_centralized_and_projected_message_counts_agree(self):
        requests = [Request.put("x", "1"), Request.get("x"), Request.stop()]
        projected = serve(requests)
        central = communication_cost(
            lambda op: kvs_serve(op, "client", "s1", SERVERS, requests), CLUSTER
        )
        assert projected.stats.total_messages == central.total_messages


class TestKoCStructure:
    """The communication shape the conclaves-&-MLVs design promises (Fig. 2)."""

    def cost(self, requests, servers=SERVERS):
        census = ["client"] + servers
        return communication_cost(
            lambda op: kvs_serve(op, "client", servers[0], servers, requests), census
        )

    def test_client_is_not_involved_in_server_koc(self):
        cost = self.cost([Request.put("k", "v"), Request.stop()])
        # the client's traffic is exactly one request sent and one response
        # received per request — none of the servers' branching reaches it
        assert cost.per_location_sent["client"] == 2
        assert cost.per_location_received["client"] == 2

    def test_second_conditional_reuses_koc_for_free(self):
        """Both conclaves of Fig. 2 branch on the request, but the request is
        multicast exactly once: the second conditional re-uses the MLV.

        For a Get, the primary's only traffic towards the other servers is the
        single request multicast (n-1 messages) even though the servers branch
        on the request twice.  For a Put there is exactly one extra broadcast —
        the ``needsReSynch`` flag, which is genuinely new information — and
        still no re-broadcast of the request itself.
        """
        others = len(SERVERS) - 1

        def forwards(cost):
            return sum(
                count for (src, dst), count in cost.per_channel.items()
                if src == "s1" and dst in SERVERS
            )

        get_cost = self.cost([Request.get("k")])
        assert forwards(get_cost) == others

        put_cost = self.cost([Request.put("k", "v")])
        assert forwards(put_cost) == 2 * others

    @pytest.mark.parametrize("n_servers", [2, 4, 8])
    def test_get_message_count_scales_linearly_with_servers(self, n_servers):
        servers = [f"srv{i}" for i in range(n_servers)]
        cost = self.cost([Request.get("k"), Request.stop()], servers)
        # per request: client→primary, primary→(n-1) others, primary→client
        per_request = 1 + (n_servers - 1) + 1
        assert cost.total_messages == 2 * per_request


class TestBackupVariant:
    BACKUPS = ["b1", "b2"]
    CENSUS = ["client", "server", "b1", "b2"]

    def run_one(self, request):
        def chor(op):
            states = make_replica_states(op, ["server"] + self.BACKUPS)
            located = op.locally("client", lambda _un: request)
            response = kvs_with_backups(op, "client", "server", self.BACKUPS, states, located)
            return response

        return run_choreography(chor, self.CENSUS)

    def test_put_then_get(self):
        def chor(op):
            states = make_replica_states(op, ["server"] + self.BACKUPS)
            put = op.locally("client", lambda _un: Request.put("k", "v"))
            kvs_with_backups(op, "client", "server", self.BACKUPS, states, put)
            get = op.locally("client", lambda _un: Request.get("k"))
            return kvs_with_backups(op, "client", "server", self.BACKUPS, states, get)

        result = run_choreography(chor, self.CENSUS)
        assert result.value_at("client") == Response.found("v")

    def test_get_involves_no_backup_traffic(self):
        result = self.run_one(Request.get("x"))
        for backup in self.BACKUPS:
            assert result.stats.messages_involving(backup) == 1  # only the KoC broadcast

    def test_put_gathers_acknowledgements(self):
        result = self.run_one(Request.put("k", "v"))
        for backup in self.BACKUPS:
            assert result.stats.messages_sent_by(backup) == 1

    def test_stop_request(self):
        result = self.run_one(Request.stop())
        assert result.value_at("client").kind is ResponseKind.STOPPED


class TestKVSDelete:
    """The delete choreography: replicate-then-apply, like Put."""

    BACKUPS = ["b1", "b2"]
    CENSUS = ["client", "server"] + BACKUPS

    def run_session(self, *requests):
        from repro.protocols.kvs import kvs_delete

        def chor(op):
            states = make_replica_states(op, ["server"] + self.BACKUPS)
            last = None
            for request in requests:
                if request.kind is RequestKind.DELETE:
                    key = op.locally("client", lambda _un, k=request.key: k)
                    last = kvs_delete(
                        op, "client", "server", self.BACKUPS, states, key
                    )
                else:
                    located = op.locally("client", lambda _un, r=request: r)
                    last = kvs_with_backups(
                        op, "client", "server", self.BACKUPS, states, located
                    )
            return last

        return run_choreography(chor, self.CENSUS)

    def test_delete_returns_dropped_value(self):
        result = self.run_session(Request.put("k", "v"), Request.delete("k"))
        assert result.value_at("client") == Response.found("v")

    def test_delete_of_missing_key(self):
        result = self.run_session(Request.delete("ghost"))
        assert result.value_at("client").kind is ResponseKind.NOT_FOUND

    def test_delete_gathers_acknowledgements(self):
        # Same replication discipline as Put: every backup acks the delete
        # back to the server before the server applies it.
        result = self.run_session(Request.put("k", "v"), Request.delete("k"))
        for backup in self.BACKUPS:
            assert result.stats.messages_sent_by(backup) == 2  # put ack + del ack

    def test_delete_request_via_kvs_with_backups(self):
        # Request.delete routed through the single-request replica
        # choreography works too (the branch the batch path exercises).
        result = self.run_session(
            Request.put("k", "v"),
            Request.delete("k"),
            Request.get("k"),
        )
        assert result.value_at("client").kind is ResponseKind.NOT_FOUND

    def test_census_polymorphism_over_backup_count(self):
        from repro.protocols.kvs import kvs_delete

        for backups in ([], ["b1"], ["b1", "b2", "b3"]):
            census = ["client", "server"] + backups

            def chor(op):
                states = make_replica_states(op, ["server"] + backups)
                put = op.locally("client", lambda _un: Request.put("k", "v"))
                kvs_with_backups(op, "client", "server", backups, states, put)
                key = op.locally("client", lambda _un: "k")
                return kvs_delete(op, "client", "server", backups, states, key)

            result = run_choreography(chor, census)
            assert result.value_at("client") == Response.found("v")
