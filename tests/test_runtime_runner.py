"""Tests for the concurrent runner and the centralized reference semantics."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    CensusError,
    ChoreographyRuntimeError,
    OwnershipError,
)
from repro.core.located import Located, Quire
from repro.runtime.central import CentralOp, run_centralized
from repro.runtime.local import LocalTransport
from repro.runtime.runner import ChoreographyResult, run_choreography
from repro.runtime.stats import ChannelStats


def ping_pong(op, payload):
    at_bob = op.comm("alice", "bob", op.locally("alice", lambda _un: payload))
    echoed = op.locally("bob", lambda un: un(at_bob) + "!")
    return op.broadcast("bob", echoed)


CENSUS = ["alice", "bob", "carol"]


class TestRunChoreography:
    def test_returns_per_location_results(self):
        result = run_choreography(ping_pong, CENSUS, args=("hi",))
        assert result.returns == {loc: "hi!" for loc in CENSUS}

    def test_message_statistics(self):
        result = run_choreography(ping_pong, CENSUS, args=("hi",))
        assert result.stats.snapshot() == {
            ("alice", "bob"): 1,
            ("bob", "alice"): 1,
            ("bob", "carol"): 1,
        }

    def test_elapsed_time_recorded(self):
        result = run_choreography(ping_pong, CENSUS, args=("hi",))
        assert result.elapsed_seconds > 0

    def test_kwargs_are_passed(self):
        def chor(op, *, suffix):
            return op.broadcast("alice", op.locally("alice", lambda _un: "x" + suffix))

        result = run_choreography(chor, ["alice", "bob"], kwargs={"suffix": "!"})
        assert result.returns["bob"] == "x!"

    def test_location_args_differ_per_endpoint(self):
        def chor(op, mine=None):
            facets = op.parallel(list(op.census), lambda loc, _un: mine)
            gathered = op.gather(list(op.census), [list(op.census)[0]], facets)
            first = list(op.census)[0]
            total = op.locally(first, lambda un: sum(un(gathered).values()))
            return op.broadcast(first, total)

        result = run_choreography(
            chor, ["a", "b"], location_args={"a": (1,), "b": (2,)}
        )
        assert result.returns["a"] == 3

    def test_endpoint_exception_is_wrapped(self):
        def chor(op):
            return op.locally("alice", lambda _un: 1 / 0)

        with pytest.raises(ChoreographyRuntimeError) as err:
            run_choreography(chor, CENSUS)
        assert err.value.location == "alice"
        assert isinstance(err.value.original, ZeroDivisionError)

    def test_census_error_reported(self):
        def chor(op):
            return op.locally("mallory", lambda _un: 1)

        with pytest.raises(ChoreographyRuntimeError) as err:
            run_choreography(chor, CENSUS)
        assert isinstance(err.value.original, CensusError)

    def test_unknown_transport_name(self):
        with pytest.raises(ValueError, match="unknown transport"):
            run_choreography(ping_pong, CENSUS, args=("x",), transport="carrier-pigeon")

    def test_external_transport_is_not_closed(self):
        transport = LocalTransport(CENSUS, timeout=5.0)
        result = run_choreography(ping_pong, CENSUS, args=("x",), transport=transport)
        # result.stats is this run's delta; the borrowed transport accumulates
        # the same messages on its own (cumulative) stats
        assert result.stats is not transport.stats
        assert result.stats.snapshot() == transport.stats.snapshot()
        # the transport is still usable afterwards
        transport.endpoint("alice").send("bob", 1)
        transport.endpoint("alice").flush()
        assert transport.endpoint("bob").recv("alice") == 1

    def test_tcp_transport_end_to_end(self):
        result = run_choreography(ping_pong, CENSUS, args=("net",), transport="tcp")
        assert result.returns == {loc: "net!" for loc in CENSUS}

    def test_value_at_unwraps_located_returns(self):
        def chor(op):
            return op.locally("alice", lambda _un: 7)

        result = run_choreography(chor, ["alice", "bob"])
        assert result.value_at("alice") == 7
        assert result.value_at("bob") is None

    def test_present_values_skips_placeholders(self):
        def chor(op):
            return op.locally("alice", lambda _un: 7)

        result = run_choreography(chor, ["alice", "bob"])
        assert result.present_values() == {"alice": 7}

    def test_legitimate_none_return_is_present(self):
        # Presence is ownership, not a comparison against None: a choreography
        # that genuinely returns None at an owner must show up in the result.
        def chor(op):
            return op.locally("alice", lambda _un: None)

        result = run_choreography(chor, ["alice", "bob"])
        assert result.has_value("alice") is True
        assert result.has_value("bob") is False
        assert result.present_values() == {"alice": None}
        assert result.value_at("alice", default="missing") is None
        assert result.value_at("bob", default="missing") == "missing"


class TestCentralOp:
    def test_run_centralized_matches_distributed_result(self):
        distributed = run_choreography(ping_pong, CENSUS, args=("z",))
        stats = ChannelStats()
        central_value = run_centralized(ping_pong, CENSUS, "z", stats=stats)
        assert central_value == "z!"
        assert stats.snapshot() == distributed.stats.snapshot()

    def test_locally_checks_census(self):
        op = CentralOp(["a", "b"])
        with pytest.raises(CensusError):
            op.locally("z", lambda _un: 1)

    def test_multicast_checks_ownership(self):
        op = CentralOp(["a", "b"])
        with pytest.raises(OwnershipError):
            op.multicast("a", ["b"], Located(["b"], 1))

    def test_multicast_counts_would_be_messages(self):
        op = CentralOp(["a", "b", "c"])
        value = op.locally("a", lambda _un: "payload")
        op.multicast("a", ["a", "b", "c"], value)
        assert op.stats.total_messages == 2

    def test_naked_requires_full_census(self):
        op = CentralOp(["a", "b"])
        with pytest.raises(OwnershipError):
            op.naked(Located(["a"], 1))
        assert op.naked(Located(["a", "b"], 5)) == 5

    def test_naked_requires_known_owners(self):
        op = CentralOp(["a", "b"])
        with pytest.raises(OwnershipError):
            op.naked(Located.absent(None))

    def test_congruently_checks_replica_ownership(self):
        op = CentralOp(["a", "b", "c"])
        partial = op.locally("a", lambda _un: 1)
        with pytest.raises(OwnershipError):
            op.congruently(["a", "b"], lambda un: un(partial))

    def test_conclave_shares_stats_with_parent(self):
        op = CentralOp(["a", "b", "c"])

        def sub(inner):
            payload = inner.locally("a", lambda _un: 1)
            return inner.broadcast("a", payload)

        op.conclave(["a", "b"], sub)
        assert op.stats.total_messages == 1

    def test_faceted_unwrap_requires_owner_name(self):
        op = CentralOp(["a", "b"])
        faceted = op.parallel(["a", "b"], lambda loc, _un: loc)
        with pytest.raises(OwnershipError):
            op.congruently(["a", "b"], lambda un: un(faceted))
