"""Tests for the simulated-latency transport and its critical-path model."""

from __future__ import annotations

import pytest

from repro.protocols.kvs import Request, kvs_serve
from repro.runtime.runner import run_choreography
from repro.runtime.simulated import SimulatedNetworkTransport


def ping_chain(op, hops):
    """A purely sequential chain of communications: latency must add up."""
    value = op.locally(hops[0], lambda _un: 0)
    for previous, current in zip(hops, hops[1:]):
        arrived = op.comm(previous, current, value)
        value = op.locally(current, lambda un, _a=arrived: un(_a) + 1)
    return op.broadcast(hops[-1], value)


def star_broadcast(op, centre, leaves):
    """One multicast: all deliveries overlap, latency must not add up."""
    value = op.locally(centre, lambda _un: "hi")
    op.multicast(centre, leaves, value)


class TestSimulatedTransport:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SimulatedNetworkTransport(["a", "b"], latency=-1)
        with pytest.raises(ValueError):
            SimulatedNetworkTransport(["a", "b"], bandwidth=0)

    def test_sequential_chain_accumulates_latency(self):
        hops = ["n0", "n1", "n2", "n3"]
        transport = SimulatedNetworkTransport(hops, latency=1.0, bandwidth=1e9)
        result = run_choreography(ping_chain, hops, args=(hops,), transport=transport)
        assert set(result.returns.values()) == {len(hops) - 1}
        # 3 sequential hops + the final broadcast (1 more hop on the critical path)
        assert transport.critical_path == pytest.approx(4.0, abs=1e-6)
        transport.close()

    def test_broadcast_latency_does_not_accumulate(self):
        census = ["centre", "l1", "l2", "l3", "l4"]
        transport = SimulatedNetworkTransport(census, latency=1.0, bandwidth=1e9)
        run_choreography(
            star_broadcast, census, args=("centre", census[1:]), transport=transport
        )
        # four deliveries, but they all overlap: one latency unit total
        assert transport.critical_path == pytest.approx(1.0, abs=1e-6)
        assert transport.stats.total_messages == 4
        transport.close()

    def test_bandwidth_term_charges_large_payloads(self):
        census = ["a", "b"]

        def send_blob(op):
            blob = op.locally("a", lambda _un: "x" * 10_000)
            return op.comm("a", "b", blob)

        slow = SimulatedNetworkTransport(census, latency=0.0, bandwidth=1_000.0)
        run_choreography(send_blob, census, transport=slow)
        fast = SimulatedNetworkTransport(census, latency=0.0, bandwidth=1_000_000.0)
        run_choreography(send_blob, census, transport=fast)
        assert slow.critical_path > fast.critical_path
        slow.close()
        fast.close()

    def test_clocks_exposed_per_endpoint(self):
        census = ["a", "b", "c"]
        transport = SimulatedNetworkTransport(census, latency=2.0)

        def chor(op):
            op.comm("a", "b", op.locally("a", lambda _un: 1))

        run_choreography(chor, census, transport=transport)
        clocks = transport.clocks()
        assert clocks["b"] == pytest.approx(2.0, abs=1e-3)
        assert clocks["c"] == 0.0
        transport.close()

    def test_kvs_latency_scales_with_request_count_not_cluster_size(self):
        """The KVS critical path is dominated by the request/response chain;
        adding servers adds parallel work, not sequential latency."""
        workload = [Request.put("k", "v"), Request.get("k"), Request.stop()]

        def critical_path(n_servers):
            servers = [f"s{i}" for i in range(1, n_servers + 1)]
            census = ["client"] + servers
            transport = SimulatedNetworkTransport(census, latency=1.0, bandwidth=1e9)
            run_choreography(
                lambda op: kvs_serve(op, "client", servers[0], servers, workload),
                census,
                transport=transport,
            )
            transport.close()
            return transport.critical_path

        small = critical_path(2)
        large = critical_path(6)
        assert large <= small + 2.0  # near-flat in the number of servers
        assert small >= 2 * len(workload)  # at least request+response per request
