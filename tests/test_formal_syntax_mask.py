"""Tests for λC syntax, the roles function, and the ▷ mask operator."""

from __future__ import annotations

import pytest

from repro.formal.mask import mask_is_noop, mask_type, mask_value
from repro.formal.syntax import (
    App,
    Case,
    Com,
    Fst,
    Inl,
    Inr,
    Lam,
    Lookup,
    Pair,
    ProdData,
    Snd,
    SumData,
    TData,
    TFun,
    TVec,
    Unit,
    UnitData,
    Var,
    Vec,
    FormalSyntaxError,
    is_value,
    parties,
    roles,
)

AB = parties("a", "b")
ABC = parties("a", "b", "c")


class TestSyntax:
    def test_owner_annotations_must_be_nonempty(self):
        with pytest.raises(FormalSyntaxError):
            Unit(frozenset())
        with pytest.raises(FormalSyntaxError):
            Lam("x", TData(UnitData(), AB), Var("x"), frozenset())
        with pytest.raises(FormalSyntaxError):
            Com("a", frozenset())

    def test_values_are_recognised(self):
        assert is_value(Unit(AB))
        assert is_value(Inl(Unit(AB)))
        assert is_value(Pair(Unit(AB), Unit(AB)))
        assert is_value(Com("a", AB))
        assert not is_value(App(Com("a", AB), Unit(AB)))
        assert not is_value(
            Case(AB, Inl(Unit(AB)), "x", Var("x"), "x", Var("x"))
        )

    def test_roles_collects_every_mentioned_party(self):
        expr = App(Com("a", parties("b", "c")), Inl(Unit(parties("a"))))
        assert roles(expr) == ABC

    def test_roles_of_case_and_lambda(self):
        lam = Lam("x", TData(UnitData(), parties("a")), Unit(parties("a")), parties("a"))
        case = Case(parties("b"), Inl(Unit(parties("b"))), "x", Unit(parties("b")), "x", Unit(parties("b")))
        assert roles(lam) == parties("a")
        assert roles(case) == parties("b")

    def test_str_forms_are_readable(self):
        assert "com" in str(Com("a", AB))
        assert "λ" in str(Lam("x", TData(UnitData(), AB), Var("x"), AB))
        assert "case" in str(Case(AB, Inl(Unit(AB)), "x", Var("x"), "x", Var("x")))


class TestMaskType:
    def test_data_type_intersects_owners(self):
        assert mask_type(TData(UnitData(), ABC), AB) == TData(UnitData(), AB)

    def test_data_type_disjoint_is_undefined(self):
        assert mask_type(TData(UnitData(), parties("c")), AB) is None

    def test_function_type_requires_all_owners(self):
        fun = TFun(TData(UnitData(), AB), TData(UnitData(), AB), AB)
        assert mask_type(fun, ABC) == fun
        assert mask_type(fun, parties("a")) is None

    def test_vector_type_masks_pointwise(self):
        vec = TVec((TData(UnitData(), ABC), TData(UnitData(), AB)))
        masked = mask_type(vec, AB)
        assert masked == TVec((TData(UnitData(), AB), TData(UnitData(), AB)))

    def test_vector_type_undefined_if_any_item_is(self):
        vec = TVec((TData(UnitData(), parties("c")),))
        assert mask_type(vec, AB) is None

    def test_mask_is_noop(self):
        assert mask_is_noop(TData(UnitData(), AB), AB)
        assert not mask_is_noop(TData(UnitData(), ABC), AB)


class TestMaskValue:
    def test_unit_intersects(self):
        assert mask_value(Unit(ABC), AB) == Unit(AB)
        assert mask_value(Unit(parties("c")), AB) is None

    def test_variables_unchanged(self):
        assert mask_value(Var("x"), AB) == Var("x")

    def test_lambda_requires_subset(self):
        lam = Lam("x", TData(UnitData(), AB), Var("x"), AB)
        assert mask_value(lam, ABC) == lam
        assert mask_value(lam, parties("a")) is None

    def test_injections_and_pairs_recurse(self):
        value = Inl(Pair(Unit(ABC), Unit(ABC)))
        masked = mask_value(value, AB)
        assert masked == Inl(Pair(Unit(AB), Unit(AB)))

    def test_pair_undefined_if_component_undefined(self):
        value = Pair(Unit(parties("c")), Unit(ABC))
        assert mask_value(value, AB) is None

    def test_vector_masks_pointwise(self):
        value = Vec((Unit(ABC), Unit(AB)))
        assert mask_value(value, AB) == Vec((Unit(AB), Unit(AB)))

    def test_operators_require_subsets(self):
        assert mask_value(Fst(AB), ABC) == Fst(AB)
        assert mask_value(Fst(ABC), AB) is None
        assert mask_value(Lookup(0, AB), AB) == Lookup(0, AB)
        assert mask_value(Com("a", AB), ABC) == Com("a", AB)
        assert mask_value(Com("c", AB), AB) is None

    def test_masking_rejects_non_values(self):
        with pytest.raises(TypeError):
            mask_value(App(Com("a", AB), Unit(AB)), AB)
