"""Tests for the analysis layer: pre-run checker, communication cost, feature matrix."""

from __future__ import annotations

import pytest

from repro.analysis.checker import check_choreography
from repro.analysis.comm_cost import communication_cost, compare_costs, haschor_communication_cost
from repro.analysis.features import FEATURES, feature_matrix, feature_table_text
from repro.protocols.kvs import Request, kvs_serve
from repro.baselines.kvs_haschor import kvs_serve_haschor


CENSUS = ["alice", "bob", "carol"]


def well_formed(op):
    value = op.locally("alice", lambda _un: 1)
    shared = op.multicast("alice", ["bob", "carol"], value)
    doubled = op.locally("bob", lambda un: un(shared) * 2)
    return op.broadcast("bob", doubled)


def census_violation(op):
    return op.locally("mallory", lambda _un: 1)


def ownership_violation(op):
    value = op.locally("alice", lambda _un: 1)
    return op.locally("bob", lambda un: un(value))


class TestChecker:
    def test_well_formed_choreography_passes(self):
        report = check_choreography(well_formed, CENSUS)
        assert report
        assert report.ok
        assert report.messages == 4  # multicast to 2 + broadcast to 2
        assert not report.errors

    def test_census_violation_is_reported(self):
        report = check_choreography(census_violation, CENSUS)
        assert not report.ok
        assert any("CensusError" in error for error in report.errors)

    def test_ownership_violation_is_reported(self):
        report = check_choreography(ownership_violation, CENSUS)
        assert not report.ok
        assert any("centralized check failed" in error for error in report.errors)

    def test_channel_counts_exposed(self):
        report = check_choreography(well_formed, CENSUS)
        assert report.channel_counts[("alice", "bob")] == 1
        assert report.channel_counts[("bob", "carol")] == 1

    def test_projection_replay_catches_endpoint_failures(self):
        def asymmetric(op):
            # alice uses a value she does not own when projected
            value = op.locally("alice", lambda _un: 1)
            if op.location == "alice":
                return value
            return op.comm("alice", "bob", value)

        report = check_choreography(asymmetric, CENSUS)
        assert not report.ok

    def test_kvs_session_checks_clean(self):
        servers = ["s1", "s2", "s3"]
        report = check_choreography(
            lambda op: kvs_serve(op, "client", "s1", servers,
                                 [Request.put("k", "v"), Request.stop()]),
            ["client"] + servers,
        )
        assert report.ok, report.errors

    def test_checker_can_skip_projection_replay(self):
        report = check_choreography(well_formed, CENSUS, replay_projections=False)
        assert report.ok


class TestCommCost:
    def test_summary_fields(self):
        cost = communication_cost(well_formed, CENSUS)
        assert cost.total_messages == 4
        assert cost.total_bytes > 0
        assert cost.per_location_sent["alice"] == 2
        assert cost.per_location_received["carol"] == 2
        assert cost.messages_involving("bob") == 3

    def test_haschor_cost(self):
        def baseline(op):
            value = op.locally("alice", lambda _un: True)
            return op.cond(value, lambda flag: flag)

        cost = haschor_communication_cost(baseline, CENSUS)
        assert cost.total_messages == len(CENSUS) - 1

    def test_compare_costs_shows_conclave_advantage(self):
        servers = ["s1", "s2"]
        census = ["client"] + servers
        requests = [Request.get("k"), Request.stop()]
        comparison = compare_costs(
            lambda op: kvs_serve(op, "client", "s1", servers, requests),
            lambda op: kvs_serve_haschor(op, "client", "s1", servers, requests),
            census,
        )
        assert comparison["conclaves_mlvs"].total_messages < comparison[
            "broadcast_koc"
        ].total_messages


class TestFeatureMatrix:
    def test_matrix_has_three_systems(self):
        rows = feature_matrix()
        assert [row.system for row in rows] == [
            "haschor-baseline (Python)",
            "λC (formal model)",
            "repro.core (Python)",
        ]

    def test_core_row_supports_everything(self):
        core = feature_matrix()[-1]
        assert core.multiply_located_values_and_multicast == "yes"
        assert core.censuses_and_conclaves == "yes"
        assert core.census_polymorphism == "yes"

    def test_baseline_row_mirrors_haschor_column_of_table1(self):
        baseline = feature_matrix()[0]
        assert baseline.multiply_located_values_and_multicast == "no"
        assert baseline.censuses_and_conclaves == "no"
        assert baseline.census_polymorphism == "no"

    def test_as_dict_lists_every_feature(self):
        row = feature_matrix()[0]
        assert set(row.as_dict()) == {"system", *FEATURES}

    def test_text_rendering_contains_all_rows(self):
        text = feature_table_text()
        assert "repro.core" in text and "λC" in text and "haschor" in text
