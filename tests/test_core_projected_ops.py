"""Unit tests for the projected choreographic operators (EPP-as-DI).

These tests drive :class:`ProjectedOp` instances directly against an in-memory
fake endpoint, so each operator's per-endpoint behaviour (who computes, who
sends, who receives, who gets a placeholder) can be checked in isolation —
without threads.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import pytest

from repro.core.epp import ProjectedOp, project
from repro.core.errors import CensusError, OwnershipError, PlaceholderError
from repro.core.located import Faceted, Located, Quire
from repro.core.locations import Census


class FakeEndpoint:
    """Records sends; serves receives from a scripted queue."""

    def __init__(self, location: str):
        self.location = location
        self.sent: List[Tuple[str, Any]] = []
        self.inbox: Dict[str, List[Any]] = {}

    def send(self, receiver: str, payload: Any) -> None:
        self.sent.append((receiver, payload))

    def recv(self, sender: str) -> Any:
        return self.inbox[sender].pop(0)

    def expect(self, sender: str, *payloads: Any) -> None:
        self.inbox.setdefault(sender, []).extend(payloads)


def make_op(census, target) -> Tuple[ProjectedOp, FakeEndpoint]:
    endpoint = FakeEndpoint(target)
    return ProjectedOp(census, target, endpoint), endpoint


CENSUS = ["alice", "bob", "carol"]


class TestLocally:
    def test_runs_only_at_the_named_location(self):
        op, _ = make_op(CENSUS, "alice")
        value = op.locally("alice", lambda _un: 42)
        assert value.peek() == 42
        assert list(value.owners) == ["alice"]

    def test_other_endpoints_skip_and_get_placeholders(self):
        op, _ = make_op(CENSUS, "bob")
        calls = []
        value = op.locally("alice", lambda _un: calls.append(1))
        assert not value.is_present()
        assert calls == []

    def test_location_must_be_in_census(self):
        op, _ = make_op(CENSUS, "alice")
        with pytest.raises(CensusError):
            op.locally("mallory", lambda _un: 1)

    def test_unwrapper_reads_own_located_values(self):
        op, _ = make_op(CENSUS, "alice")
        first = op.locally("alice", lambda _un: 10)
        second = op.locally("alice", lambda un: un(first) + 1)
        assert second.peek() == 11

    def test_unwrapper_rejects_other_parties_values(self):
        op, _ = make_op(CENSUS, "bob")
        foreign = Located(["alice"], 10)
        with pytest.raises(OwnershipError):
            op.locally("bob", lambda un: un(foreign))

    def test_unwrapper_reads_faceted_own_facet(self):
        op, _ = make_op(CENSUS, "carol")
        faceted = Faceted(CENSUS, {"carol": 7})
        value = op.locally("carol", lambda un: un(faceted))
        assert value.peek() == 7

    def test_unwrapper_rejects_plain_values(self):
        op, _ = make_op(CENSUS, "alice")
        with pytest.raises(TypeError):
            op.locally("alice", lambda un: un(42))

    def test_locally_underscore_ignores_unwrapper(self):
        op, _ = make_op(CENSUS, "alice")
        assert op.locally_("alice", lambda: "hi").peek() == "hi"


class TestMulticastAndComm:
    def test_sender_sends_to_each_recipient_once(self):
        op, endpoint = make_op(CENSUS, "alice")
        payload = op.locally("alice", lambda _un: "msg")
        shared = op.multicast("alice", ["bob", "carol"], payload)
        assert endpoint.sent == [("bob", "msg"), ("carol", "msg")]
        assert not shared.is_present()  # alice is not among the recipients

    def test_sender_keeps_value_when_among_recipients(self):
        op, endpoint = make_op(CENSUS, "alice")
        payload = op.locally("alice", lambda _un: "msg")
        shared = op.multicast("alice", ["alice", "bob"], payload)
        assert shared.peek() == "msg"
        assert endpoint.sent == [("bob", "msg")]

    def test_recipient_receives(self):
        op, endpoint = make_op(CENSUS, "bob")
        endpoint.expect("alice", "msg")
        shared = op.multicast("alice", ["bob", "carol"], Located.absent(["alice"]))
        assert shared.peek() == "msg"
        assert list(shared.owners) == ["bob", "carol"]

    def test_bystander_gets_placeholder_and_no_traffic(self):
        op, endpoint = make_op(CENSUS, "carol")
        shared = op.multicast("alice", ["bob"], Located.absent(["alice"]))
        assert not shared.is_present()
        assert endpoint.sent == []

    def test_sender_must_own_the_payload(self):
        op, _ = make_op(CENSUS, "alice")
        foreign = Located(["bob"], 1)
        with pytest.raises(OwnershipError):
            op.multicast("alice", ["bob"], foreign)

    def test_payload_must_be_located(self):
        op, _ = make_op(CENSUS, "alice")
        with pytest.raises(OwnershipError, match="Located"):
            op.multicast("alice", ["bob"], 42)

    def test_recipients_must_be_in_census(self):
        op, _ = make_op(CENSUS, "alice")
        with pytest.raises(CensusError):
            op.multicast("alice", ["mallory"], Located(["alice"], 1))

    def test_comm_is_point_to_point(self):
        op, endpoint = make_op(CENSUS, "alice")
        payload = op.locally("alice", lambda _un: 5)
        result = op.comm("alice", "bob", payload)
        assert endpoint.sent == [("bob", 5)]
        assert not result.is_present()
        assert list(result.owners) == ["bob"]


class TestNakedAndBroadcast:
    def test_naked_requires_whole_census_ownership(self):
        op, _ = make_op(CENSUS, "alice")
        partial = Located(CENSUS[:2], 1)
        with pytest.raises(OwnershipError):
            op.naked(partial)

    def test_naked_unwraps_census_wide_value(self):
        op, _ = make_op(CENSUS, "bob")
        value = Located(CENSUS, "shared")
        assert op.naked(value) == "shared"

    def test_naked_rejects_non_located(self):
        op, _ = make_op(CENSUS, "alice")
        with pytest.raises(OwnershipError):
            op.naked("plain")

    def test_broadcast_from_sender_counts_messages(self):
        op, endpoint = make_op(CENSUS, "alice")
        payload = op.locally("alice", lambda _un: True)
        assert op.broadcast("alice", payload) is True
        assert [receiver for receiver, _ in endpoint.sent] == ["bob", "carol"]

    def test_broadcast_at_receiver(self):
        op, endpoint = make_op(CENSUS, "carol")
        endpoint.expect("alice", False)
        assert op.broadcast("alice", Located.absent(["alice"])) is False


class TestCongruently:
    def test_replicas_compute_and_share_ownership(self):
        op, _ = make_op(CENSUS, "bob")
        value = op.congruently(["alice", "bob"], lambda _un: 9)
        assert value.peek() == 9
        assert list(value.owners) == ["alice", "bob"]

    def test_non_replica_gets_placeholder(self):
        op, _ = make_op(CENSUS, "carol")
        value = op.congruently(["alice", "bob"], lambda _un: 9)
        assert not value.is_present()

    def test_reads_must_be_owned_by_every_replica(self):
        op, _ = make_op(CENSUS, "alice")
        only_alice = Located(["alice"], 3)
        with pytest.raises(OwnershipError, match="every"):
            op.congruently(["alice", "bob"], lambda un: un(only_alice))

    def test_reads_of_fully_shared_values_are_fine(self):
        op, _ = make_op(CENSUS, "alice")
        shared = Located(["alice", "bob"], 3)
        value = op.congruently(["alice", "bob"], lambda un: un(shared) * 2)
        assert value.peek() == 6


class TestConclave:
    def test_member_runs_sub_choreography_with_narrowed_census(self):
        op, _ = make_op(CENSUS, "alice")
        seen = {}

        def sub(inner):
            seen["census"] = list(inner.census)
            return "done"

        result = op.conclave(["alice", "bob"], sub)
        assert seen["census"] == ["alice", "bob"]
        assert result.peek() == "done"
        assert list(result.owners) == ["alice", "bob"]

    def test_non_member_skips_entirely(self):
        op, _ = make_op(CENSUS, "carol")
        calls = []
        result = op.conclave(["alice", "bob"], lambda inner: calls.append(1))
        assert calls == []
        assert not result.is_present()

    def test_sub_census_must_be_subset(self):
        op, _ = make_op(CENSUS, "alice")
        with pytest.raises(CensusError):
            op.conclave(["alice", "mallory"], lambda inner: None)

    def test_broadcast_inside_conclave_skips_outsiders(self):
        op, endpoint = make_op(CENSUS, "alice")

        def sub(inner):
            payload = inner.locally("alice", lambda _un: 1)
            return inner.broadcast("alice", payload)

        op.conclave(["alice", "bob"], sub)
        assert [receiver for receiver, _ in endpoint.sent] == ["bob"]

    def test_conclave_passes_extra_arguments(self):
        op, _ = make_op(CENSUS, "alice")
        result = op.conclave(["alice"], lambda inner, x, y=0: x + y, 1, y=2)
        assert result.peek() == 3

    def test_flatten_unnests_conclave_results(self):
        op, _ = make_op(CENSUS, "alice")
        nested = op.conclave(
            ["alice", "bob"], lambda inner: inner.locally("alice", lambda _un: 5)
        )
        flat = op.flatten(nested)
        assert flat.peek() == 5
        assert list(flat.owners) == ["alice"]

    def test_flatten_of_placeholder_is_placeholder(self):
        op, _ = make_op(CENSUS, "carol")
        nested = op.conclave(
            ["alice", "bob"], lambda inner: inner.locally("alice", lambda _un: 5)
        )
        assert not op.flatten(nested).is_present()

    def test_flatten_requires_nested_located(self):
        op, _ = make_op(CENSUS, "alice")
        flat_value = op.locally("alice", lambda _un: 5)
        with pytest.raises(OwnershipError):
            op.flatten(flat_value)

    def test_conclave_to_annotates_result_owners(self):
        op, _ = make_op(CENSUS, "carol")
        result = op.conclave_to(
            ["alice", "bob"], ["alice"],
            lambda inner: inner.locally("alice", lambda _un: 5),
        )
        assert not result.is_present()
        assert list(result.owners) == ["alice"]


class TestRestrictAndLocation:
    def test_restrict_shrinks_ownership_for_kept_member(self):
        op, _ = make_op(CENSUS, "alice")
        wide = Located(CENSUS, 1)
        narrow = op.restrict(wide, ["alice"])
        assert narrow.peek() == 1
        assert list(narrow.owners) == ["alice"]

    def test_restrict_drops_value_for_forgotten_member(self):
        op, _ = make_op(CENSUS, "bob")
        wide = Located(CENSUS, 1)
        narrow = op.restrict(wide, ["alice"])
        assert not narrow.is_present()

    def test_location_property(self):
        op, _ = make_op(CENSUS, "bob")
        assert op.location == "bob"

    def test_project_builds_named_endpoint_program(self):
        def chor(op):
            return op.broadcast("alice", op.locally("alice", lambda _un: 1))

        endpoint = FakeEndpoint("alice")
        program = project(chor, CENSUS, "alice", endpoint)
        assert "alice" in program.__name__
        assert program() == 1
