"""Tests for the additional choreographic patterns (two-buyer, voting, ring, trees)."""

from __future__ import annotations

import operator

import pytest

from repro.analysis.comm_cost import communication_cost
from repro.protocols.patterns import (
    heartbeat_round,
    majority_vote,
    ring_max,
    tree_aggregate,
    two_buyer_bookseller,
)
from repro.runtime.runner import run_choreography


class TestTwoBuyerBookseller:
    CENSUS = ["buyer", "helper", "seller", "bystander"]

    def run(self, title, **kwargs):
        def chor(op):
            return two_buyer_bookseller(op, "buyer", "helper", "seller", title, **kwargs)

        return run_choreography(chor, self.CENSUS)

    PARTICIPANTS = ["buyer", "helper", "seller"]

    def outcomes(self, result):
        return {result.value_at(party) for party in self.PARTICIPANTS}

    def test_affordable_book_is_purchased(self):
        result = self.run("TAPL")
        assert self.outcomes(result) == {80}
        # the bystander is outside the participants' conclave: placeholder only
        assert result.value_at("bystander") is None

    def test_expensive_book_needs_the_helper(self):
        alone = self.run("HoTT", helper_contribution=0)
        assert self.outcomes(alone) == {None}
        together = self.run("HoTT", helper_contribution=50)
        assert self.outcomes(together) == {120}

    def test_unknown_title_is_rejected(self):
        assert self.outcomes(self.run("Dune")) == {None}

    def test_negotiation_stays_between_the_buyers(self):
        cost = communication_cost(
            lambda op: two_buyer_bookseller(op, "buyer", "helper", "seller", "TAPL"),
            self.CENSUS,
        )
        # the bystander is in the census but the protocol never touches it...
        assert cost.messages_involving("bystander") == 0
        # ...and the seller is not part of the buyers' conclave: it only hears
        # the final decision, not the negotiation
        assert cost.per_channel.get(("helper", "seller"), 0) == 0


class TestMajorityVote:
    def test_majority_yes(self):
        voters = ["v1", "v2", "v3", "v4", "v5"]
        ballots = {"v1": True, "v2": True, "v3": True, "v4": False, "v5": False}

        def chor(op):
            return majority_vote(op, voters, "coordinator", ballots)

        result = run_choreography(chor, voters + ["coordinator"])
        assert set(result.returns.values()) == {True}

    def test_tie_is_not_a_majority(self):
        voters = ["v1", "v2"]
        ballots = {"v1": True, "v2": False}

        def chor(op):
            return majority_vote(op, voters, "coordinator", ballots)

        result = run_choreography(chor, voters + ["coordinator"])
        assert set(result.returns.values()) == {False}

    def test_per_endpoint_ballots_via_location_args(self):
        voters = ["v1", "v2", "v3"]

        def chor(op, my_ballot=None):
            return majority_vote(op, voters, "v1", my_ballot=my_ballot)

        result = run_choreography(
            chor,
            voters,
            location_args={"v1": (True,), "v2": (True,), "v3": (False,)},
        )
        assert set(result.returns.values()) == {True}

    @pytest.mark.parametrize("n_voters", [1, 3, 7])
    def test_census_polymorphic_message_count(self, n_voters):
        voters = [f"v{i}" for i in range(n_voters)]
        cost = communication_cost(
            lambda op: majority_vote(op, voters, voters[0], {v: True for v in voters}),
            voters,
        )
        # gather: n-1 messages; broadcast of the verdict: n-1 messages
        assert cost.total_messages == 2 * (n_voters - 1)


class TestRingMax:
    @pytest.mark.parametrize("size", [1, 2, 5, 9])
    def test_elects_the_maximum(self, size):
        ring = [f"n{i}" for i in range(size)]
        values = {node: (7 * i) % 11 for i, node in enumerate(ring)}

        def chor(op):
            return ring_max(op, ring, values)

        result = run_choreography(chor, ring)
        assert set(result.returns.values()) == {max(values.values())}

    def test_token_travels_once_around(self):
        ring = ["n0", "n1", "n2", "n3"]
        cost = communication_cost(
            lambda op: ring_max(op, ring, {n: 1 for n in ring}), ring
        )
        # n-1 hops plus the final broadcast from the last node (n-1 messages)
        assert cost.total_messages == (len(ring) - 1) * 2


class TestTreeAggregate:
    @pytest.mark.parametrize("size", [1, 2, 3, 6, 8])
    def test_sums_the_census(self, size):
        members = [f"w{i}" for i in range(size)]

        def chor(op):
            return tree_aggregate(op, members, operator.add, lambda loc: int(loc[1:]) + 1)

        result = run_choreography(chor, members)
        assert set(result.returns.values()) == {sum(range(1, size + 1))}

    def test_halves_do_not_talk_to_each_other_before_the_combine(self):
        members = ["w0", "w1", "w2", "w3"]
        cost = communication_cost(
            lambda op: tree_aggregate(op, members, operator.add, lambda _loc: 1), members
        )
        # the only traffic between the two halves is right-rep -> left-rep plus
        # the final broadcast from the left representative
        cross = sum(
            count
            for (src, dst), count in cost.per_channel.items()
            if (src in members[:2]) != (dst in members[:2])
        )
        assert cross == 1 + 2  # one combine message + broadcast to the right half


class TestHeartbeat:
    WORKERS = ["w1", "w2", "w3", "w4"]
    CENSUS = ["boss"] + WORKERS

    def test_all_alive(self):
        def chor(op):
            return heartbeat_round(op, "boss", self.WORKERS)

        result = run_choreography(chor, self.CENSUS)
        assert set(result.returns.values()) == {tuple(self.WORKERS)}

    def test_crashed_workers_are_excluded(self):
        def chor(op):
            return heartbeat_round(op, "boss", self.WORKERS,
                                   healthy=lambda worker: worker != "w3")

        result = run_choreography(chor, self.CENSUS)
        assert set(result.returns.values()) == {("w1", "w2", "w4")}

    def test_two_messages_per_worker_plus_announcement(self):
        cost = communication_cost(
            lambda op: heartbeat_round(op, "boss", self.WORKERS), self.CENSUS
        )
        n = len(self.WORKERS)
        assert cost.total_messages == 2 * n + n  # probe+answer per worker, then broadcast
