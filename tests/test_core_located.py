"""Unit tests for multiply-located values, faceted values, and quires."""

from __future__ import annotations

import pytest

from repro.core.errors import OwnershipError, PlaceholderError
from repro.core.located import ABSENT, Faceted, Located, Quire
from repro.core.locations import Census


class TestLocated:
    def test_present_value_unwraps_for_owner(self):
        value = Located(["alice", "bob"], 42)
        assert value.unwrap_for("alice") == 42
        assert value.unwrap_for("bob") == 42

    def test_non_owner_cannot_unwrap(self):
        value = Located(["alice"], 42)
        with pytest.raises(OwnershipError):
            value.unwrap_for("bob")

    def test_placeholder_cannot_unwrap_even_for_owner(self):
        value = Located.absent(["alice"])
        with pytest.raises(PlaceholderError):
            value.unwrap_for("alice")

    def test_owners_census(self):
        value = Located(["alice", "bob"], 1)
        assert isinstance(value.owners, Census)
        assert list(value.owners) == ["alice", "bob"]

    def test_unknown_owners_allowed_for_placeholders(self):
        value = Located.absent(None)
        assert value.owners is None
        assert not value.is_present()

    def test_empty_owner_set_rejected(self):
        with pytest.raises(Exception):
            Located([], 1)

    def test_owned_by(self):
        value = Located(["alice"], 1)
        assert value.owned_by("alice")
        assert not value.owned_by("bob")
        assert not Located.absent(None).owned_by("alice")

    def test_peek_only_on_present(self):
        assert Located(["a"], 7).peek() == 7
        with pytest.raises(PlaceholderError):
            Located.absent(["a"]).peek()

    def test_map_preserves_owners_and_absence(self):
        present = Located(["a", "b"], 2).map(lambda x: x * 10)
        assert present.peek() == 20
        assert list(present.owners) == ["a", "b"]
        absent = Located.absent(["a"]).map(lambda x: x * 10)
        assert not absent.is_present()

    def test_repr_mentions_state(self):
        assert "absent" in repr(Located.absent(["a"]))
        assert "42" in repr(Located(["a"], 42))

    def test_absent_singleton_bool_is_an_error(self):
        with pytest.raises(PlaceholderError):
            bool(ABSENT)


class TestFaceted:
    def test_each_owner_sees_its_own_facet(self):
        faceted = Faceted(["a", "b"], {"a": 1, "b": 2})
        assert faceted.facet_for("a") == 1
        assert faceted.facet_for("b") == 2

    def test_plain_owner_cannot_see_other_facets(self):
        faceted = Faceted(["a", "b"], {"a": 1, "b": 2})
        with pytest.raises(OwnershipError):
            faceted.facet_for("a", "b")

    def test_common_owner_sees_every_facet(self):
        faceted = Faceted(["a", "b"], {"a": 1, "b": 2}, common=["dealer"])
        assert faceted.facet_for("dealer", "a") == 1
        assert faceted.facet_for("dealer", "b") == 2

    def test_non_owner_facet_rejected(self):
        faceted = Faceted(["a"], {"a": 1})
        with pytest.raises(OwnershipError):
            faceted.facet_for("a", "z")

    def test_facets_for_non_owners_rejected_at_construction(self):
        with pytest.raises(OwnershipError):
            Faceted(["a"], {"a": 1, "z": 2})

    def test_missing_facet_is_a_placeholder_error(self):
        faceted = Faceted(["a", "b"], {"a": 1})
        with pytest.raises(PlaceholderError):
            faceted.facet_for("b")

    def test_localize_present_and_absent(self):
        faceted = Faceted(["a", "b"], {"a": 1})
        assert faceted.localize("a").peek() == 1
        assert not faceted.localize("b").is_present()
        with pytest.raises(Exception):
            faceted.localize("z")

    def test_to_quire_requires_all_facets(self):
        complete = Faceted(["a", "b"], {"a": 1, "b": 2})
        assert complete.to_quire().to_dict() == {"a": 1, "b": 2}
        with pytest.raises(PlaceholderError):
            Faceted(["a", "b"], {"a": 1}).to_quire()

    def test_visible_facets_is_a_copy(self):
        faceted = Faceted(["a"], {"a": 1})
        copy = faceted.visible_facets()
        copy["a"] = 99
        assert faceted.facet_for("a") == 1

    def test_has_facet(self):
        faceted = Faceted(["a", "b"], {"a": 1})
        assert faceted.has_facet("a")
        assert not faceted.has_facet("b")


class TestQuire:
    def test_requires_complete_values(self):
        with pytest.raises(OwnershipError, match="missing"):
            Quire(["a", "b"], {"a": 1})

    def test_rejects_extra_values(self):
        with pytest.raises(OwnershipError, match="extra"):
            Quire(["a"], {"a": 1, "b": 2})

    def test_indexing_and_iteration(self):
        quire = Quire(["a", "b"], {"a": 1, "b": 2})
        assert quire["a"] == 1
        assert dict(quire) == {"a": 1, "b": 2}
        assert len(quire) == 2

    def test_values_in_census_order(self):
        quire = Quire(["b", "a"], {"a": 1, "b": 2})
        assert quire.values() == (2, 1)

    def test_from_function(self):
        quire = Quire.from_function(["a", "bb"], len)
        assert quire.to_dict() == {"a": 1, "bb": 2}

    def test_map_and_modify(self):
        quire = Quire(["a", "b"], {"a": 1, "b": 2})
        assert quire.map(lambda v: v * 10).to_dict() == {"a": 10, "b": 20}
        assert quire.modify("a", lambda v: v + 5).to_dict() == {"a": 6, "b": 2}
        # the original is untouched (quires are persistent)
        assert quire["a"] == 1

    def test_equality(self):
        assert Quire(["a"], {"a": 1}) == Quire(["a"], {"a": 1})
        assert Quire(["a"], {"a": 1}) != Quire(["a"], {"a": 2})

    def test_unknown_index_raises(self):
        with pytest.raises(Exception):
            Quire(["a"], {"a": 1})["b"]
