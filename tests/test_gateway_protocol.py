"""Unit tests for the gateway wire protocol: framing, commands, error schema.

No sockets here — these tests exercise :mod:`repro.gateway.protocol` as a
pure library: encode/parse round-trips (including byte-at-a-time incremental
feeds), the command table's arity rules, the frame limits, and the mapping
from the cluster's typed exceptions onto the stable error-code schema.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import ClusterClosed, ClusterRebalancing
from repro.core.errors import ChoreographyRuntimeError, ChoreoTimeout
from repro.gateway import (
    ERR_BADREQUEST,
    ERR_BUSY,
    ERR_FAILED,
    ERR_INTERNAL,
    ERR_REBALANCING,
    ERR_TIMEOUT,
    ERR_TOOBIG,
    ERR_UNAVAILABLE,
    RETRYABLE_CODES,
    ArrayReply,
    BulkReply,
    CommandError,
    ErrorReply,
    IntReply,
    ProtocolError,
    SimpleReply,
    command_from_args,
    encode_command,
    encode_reply,
    error_reply,
    parse_command,
    parse_reply,
    reply_for_exception,
    reply_for_response,
)
from repro.gateway.protocol import MAX_ARGS, MAX_INLINE
from repro.protocols.kvs import RequestKind, Response


class TestCommandFraming:
    def test_array_form_round_trips(self):
        wire = encode_command(["PUT", "user:1", "ada lovelace"])
        args, pos = parse_command(wire)
        assert args == ["PUT", "user:1", "ada lovelace"]
        assert pos == len(wire)

    def test_incremental_byte_at_a_time(self):
        wire = encode_command(["GET", "key"])
        buffer = b""
        for byte in wire[:-1]:
            buffer += bytes([byte])
            args, pos = parse_command(buffer)
            assert args is None and pos == 0
        args, _pos = parse_command(buffer + wire[-1:])
        assert args == ["GET", "key"]

    def test_two_commands_in_one_buffer(self):
        wire = encode_command(["GET", "a"]) + encode_command(["GET", "b"])
        first, pos = parse_command(wire)
        second, pos = parse_command(wire, pos)
        assert first == ["GET", "a"] and second == ["GET", "b"]
        assert parse_command(wire, pos) == (None, pos)

    def test_inline_form(self):
        args, _pos = parse_command(b"PUT key value\r\n")
        assert args == ["PUT", "key", "value"]
        args, _pos = parse_command(b"GET key\n")  # bare LF tolerated
        assert args == ["GET", "key"]

    def test_inline_blank_lines_are_skipped(self):
        wire = b"\r\n\r\nPING\r\n"
        args, pos = parse_command(wire)
        assert args == ["PING"] and pos == len(wire)

    def test_binaryish_values_survive_bulk_framing(self):
        value = "spaces and\ttabs and \r\n newlines"
        wire = encode_command(["PUT", "k", value])
        args, _pos = parse_command(wire)
        assert args == ["PUT", "k", value]

    def test_oversize_argument_count_is_fatal_toobig(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_command(b"*%d\r\n" % (MAX_ARGS + 1))
        assert excinfo.value.fatal and excinfo.value.code == ERR_TOOBIG

    def test_unterminated_oversize_line_is_fatal(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_command(b"X" * (MAX_INLINE + 2))
        assert excinfo.value.fatal and excinfo.value.code == ERR_TOOBIG

    def test_bad_bulk_header_is_fatal(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_command(b"*1\r\n:5\r\n")
        assert excinfo.value.fatal


class TestReplyFraming:
    @pytest.mark.parametrize(
        "reply",
        [
            SimpleReply("OK"),
            SimpleReply("PONG"),
            BulkReply("a value with \r\n inside"),
            BulkReply(""),
            BulkReply(None),
            IntReply(-42),
            ArrayReply((BulkReply("k"), BulkReply("v"))),
            ArrayReply(()),
            ArrayReply((ArrayReply((SimpleReply("nested"),)), IntReply(7))),
            error_reply(ERR_BUSY, "cluster is saturated", pending=900),
        ],
    )
    def test_round_trip(self, reply):
        wire = encode_reply(reply)
        parsed, pos = parse_reply(wire)
        assert parsed == reply
        assert pos == len(wire)

    def test_incremental_reply_parse(self):
        wire = encode_reply(ArrayReply((BulkReply("abc"), BulkReply(None))))
        for cut in range(len(wire)):
            parsed, pos = parse_reply(wire[:cut])
            assert parsed is None and pos == 0
        parsed, _pos = parse_reply(wire)
        assert parsed == ArrayReply((BulkReply("abc"), BulkReply(None)))

    def test_error_frame_is_single_line_json(self):
        wire = encode_reply(error_reply(ERR_TIMEOUT, "late", peer="r1"))
        assert wire.startswith(b"-") and wire.endswith(b"\r\n")
        payload = json.loads(wire[1:-2].decode("utf-8"))
        assert payload["code"] == ERR_TIMEOUT
        assert payload["detail"]["peer"] == "r1"
        assert payload["detail"]["retryable"] is True

    def test_unknown_type_byte_is_fatal(self):
        with pytest.raises(ProtocolError):
            parse_reply(b"?huh\r\n")


class TestCommandTable:
    def test_verbs_normalise_to_upper(self):
        assert command_from_args(["put", "k", "v"]).verb == "PUT"

    @pytest.mark.parametrize(
        "args",
        [[], ["NOPE"], ["GET"], ["GET", "a", "b"], ["PUT", "k"], ["HEALTH", "x"]],
    )
    def test_bad_arity_or_verb_is_nonfatal_badrequest(self, args):
        with pytest.raises(CommandError) as excinfo:
            command_from_args(args)
        assert not excinfo.value.fatal
        assert excinfo.value.code == ERR_BADREQUEST

    def test_data_vs_control_plane(self):
        assert command_from_args(["GET", "k"]).is_data_plane
        assert command_from_args(["BATCH", "GET", "k"]).is_data_plane
        assert not command_from_args(["PING"]).is_data_plane
        assert not command_from_args(["HEALTH"]).is_data_plane

    def test_batch_args_decode_to_requests(self):
        command = command_from_args(
            ["BATCH", "PUT", "k1", "v1", "GET", "k2", "DEL", "k3"]
        )
        kinds = [r.kind for r in command.batch_requests()]
        assert kinds == [RequestKind.PUT, RequestKind.GET, RequestKind.DELETE]

    @pytest.mark.parametrize(
        "tail",
        [["PUT", "k"], ["GET"], ["DEL"], ["STOP"], ["PUT", "k", "v", "GET"]],
    )
    def test_malformed_batch_tail_rejected_at_parse_time(self, tail):
        with pytest.raises(CommandError):
            command_from_args(["BATCH"] + tail)


class TestErrorSchema:
    def test_cluster_closed_maps_to_unavailable(self):
        reply = reply_for_exception(ClusterClosed("cluster is closed"))
        assert reply.code == ERR_UNAVAILABLE
        assert not reply.retryable

    def test_rebalancing_maps_retryable(self):
        reply = reply_for_exception(ClusterRebalancing("rebalance in progress"))
        assert reply.code == ERR_REBALANCING
        assert reply.retryable

    def test_timeout_carries_blame_fields(self):
        reply = reply_for_exception(ChoreoTimeout("client", "shard0.r0", 0.3))
        assert reply.code == ERR_TIMEOUT
        assert reply.detail["waiter"] == "client"
        assert reply.detail["peer"] == "shard0.r0"
        assert reply.detail["seconds"] == 0.3
        assert reply.retryable

    def test_wrapped_timeout_unwraps_to_timeout(self):
        wrapped = ChoreographyRuntimeError(
            "client", ChoreoTimeout("client", "shard0.r1", 0.3)
        )
        reply = reply_for_exception(wrapped)
        assert reply.code == ERR_TIMEOUT
        assert reply.detail["location"] == "client"
        assert reply.detail["peer"] == "shard0.r1"

    def test_other_choreography_failure_maps_to_failed(self):
        wrapped = ChoreographyRuntimeError("shard0.r0", RuntimeError("boom"))
        reply = reply_for_exception(wrapped)
        assert reply.code == ERR_FAILED
        assert reply.detail["location"] == "shard0.r0"
        assert reply.detail["error"] == "RuntimeError"
        assert not reply.retryable

    def test_command_error_keeps_its_code(self):
        reply = reply_for_exception(CommandError("nope"))
        assert reply.code == ERR_BADREQUEST

    def test_unknown_exception_maps_to_internal(self):
        reply = reply_for_exception(ValueError("surprise"))
        assert reply.code == ERR_INTERNAL
        assert not reply.retryable

    def test_retryable_stamped_from_code_table(self):
        for code in RETRYABLE_CODES:
            assert error_reply(code, "x").retryable
        assert not error_reply(ERR_BADREQUEST, "x").retryable

    def test_reply_for_response(self):
        assert reply_for_response(Response.found("v")) == BulkReply("v")
        assert reply_for_response(Response.not_found()) == BulkReply(None)
        assert reply_for_response(Response.stopped()) == SimpleReply("STOPPED")
