"""Coalescing transports: deferred-flush semantics, equivalence, deadlock-freedom.

Three families of guarantees pin down the coalescing I/O core:

* **Mechanics** — frames coalesce into one writev (TCP) / one queue put
  (local) per drain, buffers auto-drain past the high watermark, and FIFO
  order survives coalescing and chunked reads.
* **Equivalence** — a choreography run over the coalescing TCP and local
  transports records *byte-for-byte identical* :class:`ChannelStats` (counts
  and payload bytes) and identical results vs. the simulated backend and the
  centralized reference semantics: coalescing is invisible to everything but
  the syscall counter.
* **Deadlock-freedom** — the flush-before-block rule: an endpoint drains its
  own write buffers before blocking in ``recv``, so the classic two-party
  mutual-send-then-receive pattern cannot deadlock on deferred buffers.
"""

from __future__ import annotations

import struct
import threading

import pytest

from repro.runtime import wire
from repro.runtime.local import LocalTransport
from repro.runtime.runner import run_choreography
from repro.runtime.simulated import SimulatedNetworkTransport
from repro.runtime.tcp import TCPTransport
from repro.runtime.transport import FLUSH_WATERMARK, serialize

CENSUS = ["alice", "bob", "carol"]

#: Payload shapes spanning every wire-codec fast path plus the pickle
#: fallback, each used as a broadcast payload in the equivalence property.
PAYLOAD_SHAPES = [
    True,
    -17,
    3.5,
    "falsch",
    b"\x00\x01",
    (1, (True, None)),
    [1, 2, 3, 4],
    {"k": [True, False], "n": 9},
    {1, 2, 3},  # set: no fast path, rides the pickle fallback
]


def storm(op, payload):
    """Broadcasts from everyone, one point-to-point comm, one final broadcast."""
    shared = {
        loc: op.broadcast(loc, op.locally(loc, lambda _un, l=loc: (l, payload)))
        for loc in CENSUS
    }
    tags = sorted(tag for tag, _v in shared.values())
    extra = op.comm("bob", "alice", op.locally("bob", lambda _un: ["extra", payload]))
    return op.broadcast(
        "alice", op.locally("alice", lambda un: (tuple(tags), un(extra)[0]))
    )


class _CountingSpy:
    """A socket double counting ``sendmsg`` calls and capturing the bytes."""

    def __init__(self):
        self.sendmsg_calls = 0
        self.captured = b""

    def sendmsg(self, buffers):
        self.sendmsg_calls += 1
        data = b"".join(bytes(buffer) for buffer in buffers)
        self.captured += data
        return len(data)

    def sendall(self, data):  # pragma: no cover - short-write fallback
        self.captured += bytes(data)

    def close(self):
        pass


def _parse_frames(raw: bytes):
    """Parse every ``[len][sender][instance][payload]`` frame in ``raw``."""
    frames = []
    pos = 0
    while pos < len(raw):
        (length,) = struct.unpack_from("!I", raw, pos)
        frame = raw[pos + 4:pos + 4 + length]
        assert len(frame) == length, "truncated frame"
        (sender_length,) = struct.unpack_from("!H", frame)
        sender = wire.decode(frame[2:2 + sender_length])
        instance, body_start = wire.read_uvarint(frame, 2 + sender_length)
        frames.append((sender, instance, frame[body_start:]))
        pos += 4 + length
    return frames


class TestCoalescingMechanics:
    def test_many_sends_one_writev(self):
        """50 deferred frames to one receiver drain as a single sendmsg."""
        with TCPTransport(["a", "b"], timeout=5.0) as transport:
            sender = transport.endpoint("a")
            transport.endpoint("b")
            spy = _CountingSpy()
            sender._out_sockets["b"] = spy
            for index in range(50):
                sender.send("b", index)
            assert spy.sendmsg_calls == 0  # nothing on the wire yet
            sender.flush()
            assert spy.sendmsg_calls == 1  # 50 frames, one syscall
            frames = _parse_frames(spy.captured)
            assert [wire.decode(payload) for _s, _i, payload in frames] == list(range(50))
            assert all(s == "a" and i == 0 for s, i, _p in frames)

    def test_flush_is_idempotent_and_cheap_when_empty(self):
        with TCPTransport(["a", "b"], timeout=5.0) as transport:
            sender = transport.endpoint("a")
            transport.endpoint("b")
            spy = _CountingSpy()
            sender._out_sockets["b"] = spy
            sender.flush()
            sender.send("b", 1)
            sender.flush()
            sender.flush()
            assert spy.sendmsg_calls == 1

    def test_watermark_drains_without_explicit_flush(self):
        """Pending bytes past FLUSH_WATERMARK hit the wire on their own."""
        with TCPTransport(["a", "b"], timeout=5.0) as transport:
            sender = transport.endpoint("a")
            transport.endpoint("b")
            spy = _CountingSpy()
            sender._out_sockets["b"] = spy
            chunk = b"x" * 16384
            sends = FLUSH_WATERMARK // len(chunk) + 1
            for _ in range(sends):
                sender.send("b", chunk)
            assert spy.sendmsg_calls >= 1, "watermark did not trigger a drain"
            sender.flush()
            payloads = [p for _s, _i, p in _parse_frames(spy.captured)]
            assert len(payloads) == sends

    def test_local_flush_batches_one_queue_put(self):
        transport = LocalTransport(["a", "b"], timeout=2.0)
        sender = transport.endpoint("a")
        for index in range(20):
            sender.send("b", index)
        sender.flush()
        channel = transport.channel("a", "b")
        assert channel.qsize() == 1  # 20 frames, one queue element
        receiver = transport.endpoint("b")
        assert [receiver.recv("a") for _ in range(20)] == list(range(20))

    def test_fifo_survives_interleaved_flushes_and_watermarks(self):
        """Order is append order regardless of what triggered each drain."""
        with TCPTransport(["a", "b"], timeout=5.0) as transport:
            sender = transport.endpoint("a")
            receiver = transport.endpoint("b")
            expected = []
            for index in range(40):
                if index % 7 == 3:
                    payload = "y" * 40000  # forces intermediate watermark drains
                else:
                    payload = index
                sender.send("b", payload)
                expected.append(payload)
                if index % 11 == 5:
                    sender.flush()
            sender.flush()
            assert [receiver.recv("a") for _ in range(40)] == expected

    def test_reader_reassembles_frames_split_across_chunks(self):
        """A frame larger than the 64 KiB read chunk arrives intact."""
        with TCPTransport(["a", "b"], timeout=5.0) as transport:
            sender = transport.endpoint("a")
            receiver = transport.endpoint("b")
            big = b"z" * (200 * 1024)
            sender.send("b", ("before", 1))
            sender.send("b", big)
            sender.send("b", ("after", 2))
            sender.flush()
            assert receiver.recv("a") == ("before", 1)
            assert receiver.recv("a") == big
            assert receiver.recv("a") == ("after", 2)

    def test_simulated_records_unstamped_payload_bytes(self):
        """Simulated stats must match the wire bytes, not the stamped tuple."""
        transport = SimulatedNetworkTransport(["a", "b"], latency=1.0)
        payload = {"shares": [True, False], "round": 3}
        transport.endpoint("a").send("b", payload)
        assert transport.stats.payload_bytes[("a", "b")] == len(serialize(payload))
        transport.endpoint("a").flush()
        assert transport.endpoint("b").recv("a") == payload
        transport.close()


class TestFlushBeforeBlock:
    """The rule that makes deferred flushing deadlock-free."""

    @pytest.mark.parametrize("transport_cls", [LocalTransport, TCPTransport])
    def test_mutual_send_then_recv_does_not_deadlock(self, transport_cls):
        """Both parties send (deferred) then block in recv: without the
        flush-before-block rule both buffers would sit undelivered while
        both endpoints wait — the two-party coalescing deadlock."""
        with transport_cls(["a", "b"], timeout=10.0) as transport:
            endpoints = {name: transport.endpoint(name) for name in ["a", "b"]}
            results = {}
            errors = []

            def party(me, peer):
                try:
                    endpoint = endpoints[me]
                    endpoint.send(peer, f"from-{me}")  # deferred: no flush here
                    results[me] = endpoint.recv(peer)  # recv must drain our buffer
                except BaseException as exc:  # noqa: BLE001 - surfaced below
                    errors.append((me, exc))

            threads = [
                threading.Thread(target=party, args=("a", "b")),
                threading.Thread(target=party, args=("b", "a")),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=15.0)
            assert not errors, errors
            assert results == {"a": "from-b", "b": "from-a"}

    @pytest.mark.parametrize("transport_cls", [LocalTransport, TCPTransport])
    def test_sends_really_are_deferred(self, transport_cls):
        """The deadlock test above is only meaningful if sends actually sit
        in the buffer until a flush (or a blocking recv) drains them."""
        with transport_cls(["a", "b"], timeout=2.0) as transport:
            sender = transport.endpoint("a")
            transport.endpoint("b")
            sender.send("b", 1)
            assert sender._has_pending
            sender.flush()
            assert not sender._has_pending


class TestBackendEquivalence:
    """Coalescing must be invisible: same stats, same results, every backend."""

    @pytest.mark.parametrize("payload", PAYLOAD_SHAPES, ids=[
        type(p).__name__ + "-" + str(i) for i, p in enumerate(PAYLOAD_SHAPES)
    ])
    def test_stats_and_results_identical_across_backends(self, payload):
        reference = run_choreography(
            storm, CENSUS, args=(payload,), transport="simulated", timeout=10.0
        )
        for backend in ["local", "tcp", "asyncio", "central"]:
            observed = run_choreography(
                storm, CENSUS, args=(payload,), transport=backend, timeout=10.0
            )
            assert observed.present_values() == reference.present_values(), backend
            assert observed.stats.snapshot() == reference.stats.snapshot(), backend
            assert dict(observed.stats.payload_bytes) == dict(
                reference.stats.payload_bytes
            ), backend

    def test_gmw_stats_identical_on_coalescing_tcp_and_simulated(self):
        """The paper's own workload: a (tiny) GMW run moves identical bytes
        over the coalescing TCP transport and the simulated reference."""
        from repro.protocols import circuits
        from repro.protocols.gmw import gmw

        parties = ["p1", "p2"]
        circuit = circuits.and_tree(parties)
        inputs = {p: {"x": True} for p in parties}

        def chor(op, my_inputs=None):
            return gmw(op, parties, circuit, my_inputs, seed=3, rsa_bits=128)

        runs = {
            backend: run_choreography(
                chor, parties,
                location_args={p: (inputs[p],) for p in parties},
                transport=backend, timeout=15.0,
            )
            for backend in ["simulated", "tcp", "asyncio", "local"]
        }
        reference = runs["simulated"]
        assert set(reference.returns.values()) == {True}
        for backend in ["tcp", "asyncio", "local"]:
            observed = runs[backend]
            assert set(observed.returns.values()) == {True}
            assert observed.stats.snapshot() == reference.stats.snapshot(), backend
            assert dict(observed.stats.payload_bytes) == dict(
                reference.stats.payload_bytes
            ), backend
