"""The asyncio-native TCP backend: mechanics, wire interop, corruption, bounds.

Four promises are pinned down here:

1. **Mechanics** — the event-loop backend honours the same endpoint contract
   as every other transport (FIFO per sender, demultiplexing, typed
   timeouts) while multiplexing *all* sockets onto one daemon loop thread.
2. **Wire interop** — the frame format is byte-identical to the threaded
   TCP backend's (:mod:`repro.runtime.framing` is the single definition), so
   a threaded endpoint can send straight into an asyncio endpoint's socket
   and vice versa.
3. **Loud corruption** — a byte stream that stops parsing (runaway varint,
   undecodable sender) surfaces as the typed
   :class:`~repro.runtime.framing.FrameCorruption` at blocked receivers on
   both backends, promptly, instead of as an eventual timeout.
4. **Bounded varints** — ``wire.read_uvarint`` refuses more than 64 bits
   (the runaway-continuation-byte regression), and every consumer — wire
   decode, socket framing, WAL replay — turns that into its existing typed
   behaviour.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro import ChoreoEngine
from repro.core.errors import ChoreoTimeout, TransportError
from repro.runtime import wire
from repro.runtime.asyncio_tcp import AsyncioTCPTransport
from repro.runtime.framing import (
    LENGTH,
    SENDER_LENGTH,
    FrameCorruption,
    FrameParser,
    FrameWriter,
)
from repro.runtime.tcp import TCPTransport
from repro.runtime.transport import serialize
from repro.storage.wal import WriteAheadLog

CENSUS = ["a", "b", "c"]


class TestAsyncioMechanics:
    def test_send_and_receive_over_loopback(self):
        with AsyncioTCPTransport(CENSUS, timeout=5.0) as transport:
            for location in CENSUS:
                transport.endpoint(location)
            transport.endpoint("a").send("b", {"n": 1})
            transport.endpoint("a").flush()
            assert transport.endpoint("b").recv("a") == {"n": 1}

    def test_fifo_per_sender(self):
        with AsyncioTCPTransport(["a", "b"], timeout=5.0) as transport:
            sender, receiver = transport.endpoint("a"), transport.endpoint("b")
            for index in range(50):
                sender.send("b", index)
            sender.flush()
            assert [receiver.recv("a") for _ in range(50)] == list(range(50))

    def test_three_party_demultiplexing(self):
        with AsyncioTCPTransport(CENSUS, timeout=5.0) as transport:
            for location in CENSUS:
                transport.endpoint(location)
            transport.endpoint("a").send("c", "from-a")
            transport.endpoint("a").flush()
            transport.endpoint("b").send("c", "from-b")
            transport.endpoint("b").flush()
            c = transport.endpoint("c")
            assert c.recv("b") == "from-b"  # out of arrival order: by sender
            assert c.recv("a") == "from-a"

    def test_timeout_is_typed(self):
        with AsyncioTCPTransport(["a", "b"], timeout=0.2) as transport:
            transport.endpoint("a")
            with pytest.raises(ChoreoTimeout):
                transport.endpoint("b").recv("a")

    def test_unknown_peer_raises(self):
        with AsyncioTCPTransport(["a", "b"], timeout=1.0) as transport:
            endpoint = transport.endpoint("a")
            with pytest.raises(TransportError, match="unknown receiver"):
                endpoint.send("mallory", 1)
            with pytest.raises(TransportError, match="unknown sender"):
                endpoint.recv("mallory")

    def test_one_loop_thread_no_reader_threads(self):
        """The scaling claim in miniature: a full mesh of live connections
        adds exactly one I/O thread — the loop — where the threaded backend
        adds an accept thread per location plus a reader per connection."""
        before = threading.active_count()
        with AsyncioTCPTransport(CENSUS, timeout=5.0) as transport:
            for location in CENSUS:
                transport.endpoint(location)
            for sender in CENSUS:  # light up every connection in the mesh
                for receiver in CENSUS:
                    if sender != receiver:
                        transport.endpoint(sender).send(receiver, "hi")
                transport.endpoint(sender).flush()
            for receiver in CENSUS:
                for sender in CENSUS:
                    if sender != receiver:
                        assert transport.endpoint(receiver).recv(sender) == "hi"
            loop_threads = [
                t for t in threading.enumerate() if t.name == "asyncio-tcp-loop"
            ]
            assert len(loop_threads) == 1
            assert not [
                t for t in threading.enumerate() if t.name.startswith("tcp-read-")
            ]
            assert threading.active_count() - before <= 1
        deadline = time.monotonic() + 5.0
        while loop_threads[0].is_alive() and time.monotonic() < deadline:
            time.sleep(0.01)
        assert not loop_threads[0].is_alive()  # close() tears the loop down

    def test_close_is_idempotent_and_refuses_new_endpoints(self):
        transport = AsyncioTCPTransport(["a", "b"], timeout=1.0)
        transport.endpoint("a")
        transport.close()
        transport.close()
        with pytest.raises(TransportError, match="closed"):
            transport._make_endpoint("b")

    def test_flush_at_instance_boundary_leaves_no_buffered_bytes(self):
        """The engine's instance-boundary flush must reach the asyncio
        endpoints too: after a run, no endpoint holds deferred frames."""

        def one_way(op):
            at_b = op.comm("a", "b", op.locally("a", lambda _un: "fire"))
            return op.locally("b", lambda un: un(at_b))

        with ChoreoEngine(["a", "b"], backend="asyncio", timeout=5.0) as engine:
            result = engine.run(one_way)
            assert result.value_at("b") == "fire"
            for location in ["a", "b"]:
                endpoint = engine._endpoints[location]
                inner = getattr(endpoint, "inner", endpoint)
                assert inner._out_buffers == {}


class TestWireInterop:
    """The two socket backends speak one wire format — prove it on one socket."""

    def test_threaded_sender_into_asyncio_receiver(self):
        with AsyncioTCPTransport(["a", "b"], timeout=5.0) as asy:
            receiver = asy.endpoint("b")
            threaded = TCPTransport(["a", "b"], timeout=5.0)
            try:
                sender = threaded.endpoint("a")
                # Point the threaded endpoint's connection cache at the
                # asyncio endpoint's listening socket: same wire, no shim.
                sock = socket.create_connection(
                    ("127.0.0.1", asy.port_of("b")), timeout=5.0
                )
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                with threaded.endpoint("a")._out_lock:
                    sender._out_sockets["b"] = sock
                sender.send("b", {"x": [1, 2, 3]})
                sender.flush()
                assert receiver.recv("a") == {"x": [1, 2, 3]}
                sender.send_scoped("b", 7, "scoped-payload")
                sender.flush()
                assert receiver.recv_scoped("a") == (7, "scoped-payload")
            finally:
                threaded.close()

    def test_asyncio_sender_into_threaded_receiver(self, monkeypatch):
        threaded = TCPTransport(["a", "b"], timeout=5.0)
        try:
            receiver = threaded.endpoint("b")
            with AsyncioTCPTransport(["a", "b"], timeout=5.0) as asy:
                sender = asy.endpoint("a")
                # Route the asyncio endpoint's connect at the *threaded*
                # listener instead of its own census peer.
                monkeypatch.setattr(asy, "port_of", lambda loc: threaded.port_of(loc))
                sender.send("b", ("tuple", 42))
                sender.flush()
                assert receiver.recv("a") == ("tuple", 42)
                sender.send_scoped("b", 9, b"bytes")
                sender.flush()
                assert receiver.recv_scoped("a") == (9, b"bytes")
        finally:
            threaded.close()

    def test_frame_writer_output_parses_identically(self):
        """A frame built by the shared writer round-trips through the shared
        parser — the byte-level identity both backends inherit."""
        writer = FrameWriter("a")
        payload = serialize({"k": "v"})
        frame = writer.header(len(payload), 3) + payload
        parsed = FrameParser().feed(frame)
        assert parsed == [("a", 3, payload)]


def _runaway_frame(sender: str = "a") -> bytes:
    """A structurally plausible frame whose instance varint never terminates:
    ten-plus 0x80 continuation bytes, the exact shape the 64-bit bound turns
    from a silent misdecode into a typed error."""
    tag = wire.encode(sender)
    body = SENDER_LENGTH.pack(len(tag)) + tag + b"\x80" * 12 + serialize("junk")
    return LENGTH.pack(len(body)) + body


class TestCorruptionSurfacing:
    def test_frame_parser_raises_typed_corruption(self):
        with pytest.raises(FrameCorruption, match="varint overflow"):
            FrameParser().feed(_runaway_frame())

    def test_undecodable_sender_is_typed_too(self):
        body = SENDER_LENGTH.pack(4) + b"\xff\xff\xff\xff" + b"\x00" + serialize(1)
        with pytest.raises(FrameCorruption):
            FrameParser().feed(LENGTH.pack(len(body)) + body)

    @pytest.mark.parametrize("transport_cls", [TCPTransport, AsyncioTCPTransport])
    def test_runaway_varint_on_the_socket_fails_receivers_loudly(
        self, transport_cls
    ):
        """Feed the raw corrupt bytes into a live listener: the blocked
        receiver must raise the typed corruption well before its timeout,
        on both socket backends."""
        with transport_cls(["a", "b"], timeout=10.0) as transport:
            receiver = transport.endpoint("b")
            with socket.create_connection(
                ("127.0.0.1", transport.port_of("b")), timeout=5.0
            ) as sock:
                sock.sendall(_runaway_frame())
                started = time.monotonic()
                with pytest.raises(FrameCorruption, match="varint overflow"):
                    receiver.recv("a")
                assert time.monotonic() - started < 5.0  # poisoned, not timed out


class TestVarintBounds:
    """The ``_read_uvarint`` 64-bit bound and its consumers."""

    def test_read_uvarint_refuses_more_than_64_bits(self):
        with pytest.raises(ValueError, match="varint overflow"):
            wire.read_uvarint(b"\x80" * 10 + b"\x01", 0)

    def test_max_legitimate_value_still_roundtrips(self):
        out = bytearray()
        wire.write_uvarint(out, 2**64 - 1)
        assert wire.read_uvarint(bytes(out), 0) == (2**64 - 1, len(out))

    def test_truncated_varint_is_still_truncated_not_overflow(self):
        with pytest.raises(ValueError, match="truncated varint"):
            wire.read_uvarint(b"\x80\x80", 0)

    def test_wire_decode_surfaces_overflow_as_value_error(self):
        with pytest.raises(ValueError, match="varint overflow"):
            wire.decode(b"i" + b"\x80" * 10 + b"\x01")
        with pytest.raises(ValueError, match="varint overflow"):
            wire.decode(b"s" + b"\x80" * 10 + b"\x01")

    def test_wal_replay_treats_runaway_tail_as_torn(self, tmp_path):
        """A runaway length varint at the WAL tail is what a crash mid-append
        can leave: replay must truncate it like any torn tail — keeping every
        intact record — not decode a bogus giant length or crash."""
        path = tmp_path / "wal.bin"
        with WriteAheadLog(path) as log:
            log.append(("put", "a", "1"))
            log.append(("put", "b", "2"))
        with open(path, "ab") as handle:
            handle.write(b"\x80" * 12)  # runaway continuation bytes
        reopened = WriteAheadLog(path)
        assert list(reopened.records()) == [
            (1, ("put", "a", "1")),
            (2, ("put", "b", "2")),
        ]
        assert reopened.append(("put", "c", "3")) == 3  # tail repaired on disk
        reopened.close()
