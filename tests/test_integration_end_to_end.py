"""Cross-cutting integration tests.

These exercise the whole stack at once: the same choreography over the two
transports and the centralized semantics, the MLV consistency invariant, and
the formal model applied to a choreography shaped like the library's KVS.
"""

from __future__ import annotations

import pytest

from repro.analysis.checker import check_choreography
from repro.analysis.comm_cost import communication_cost
from repro.core.locations import Census
from repro.formal import (
    App,
    Case,
    Com,
    Inl,
    Unit,
    UnitData,
    Var,
    check_all,
    parties,
)
from repro.protocols import circuits
from repro.protocols.gmw import gmw
from repro.protocols.kvs import Request, Response, kvs_serve
from repro.runtime.central import run_centralized
from repro.runtime.runner import run_choreography
from repro.runtime.stats import ChannelStats


def pipeline(op, payload):
    """A three-hop pipeline with a conclave in the middle."""
    at_b = op.comm("a", "b", op.locally("a", lambda _un: payload))

    def middle(sub):
        doubled = sub.locally("b", lambda un: un(at_b) * 2)
        return sub.broadcast("b", doubled)

    result = op.conclave(["b", "c"], middle)
    forwarded = op.comm("c", "a", op.locally("c", lambda un: un(result) + 1))
    return op.broadcast("a", forwarded)


CENSUS = ["a", "b", "c"]


class TestTransportsAgree:
    def test_local_and_tcp_and_central_agree(self):
        local = run_choreography(pipeline, CENSUS, args=(5,), transport="local")
        tcp = run_choreography(pipeline, CENSUS, args=(5,), transport="tcp")
        stats = ChannelStats()
        central = run_centralized(pipeline, CENSUS, 5, stats=stats)
        assert set(local.returns.values()) == {11}
        assert set(tcp.returns.values()) == {11}
        assert central == 11

    def test_message_counts_identical_across_backends(self):
        local = run_choreography(pipeline, CENSUS, args=(5,), transport="local")
        tcp = run_choreography(pipeline, CENSUS, args=(5,), transport="tcp")
        central_cost = communication_cost(pipeline, CENSUS, 5)
        assert local.stats.snapshot() == tcp.stats.snapshot() == central_cost.per_channel

    def test_checker_agrees_with_execution(self):
        report = check_choreography(pipeline, CENSUS, args=(7,))
        run = run_choreography(pipeline, CENSUS, args=(7,))
        assert report.ok
        assert report.messages == run.stats.total_messages


class TestMLVInvariant:
    """Every owner of a multiply-located value holds the same value."""

    def test_broadcast_is_consistent_across_owners(self):
        def chor(op):
            value = op.locally("a", lambda _un: {"nested": [1, 2, 3]})
            shared = op.multicast("a", CENSUS, value)
            return op.naked(shared)

        result = run_choreography(chor, CENSUS)
        values = list(result.returns.values())
        assert all(value == values[0] for value in values)

    def test_congruent_computation_is_consistent(self):
        def chor(op):
            base = op.multicast("a", CENSUS, op.locally("a", lambda _un: 10))
            replicated = op.congruently(CENSUS, lambda un: un(base) * 3)
            return op.naked(replicated)

        result = run_choreography(chor, CENSUS)
        assert set(result.returns.values()) == {30}

    def test_sequential_conclaves_reuse_the_same_mlv(self):
        def chor(op):
            request = op.multicast("a", ["b", "c"], op.locally("a", lambda _un: "req"))
            first = op.conclave(["b", "c"], lambda sub: sub.naked(request) + "-1")
            second = op.conclave(["b", "c"], lambda sub: sub.naked(request) + "-2")
            outcome = op.locally("b", lambda un: (un(first), un(second)))
            return op.broadcast("b", outcome)

        result = run_choreography(chor, CENSUS)
        assert set(result.returns.values()) == {("req-1", "req-2")}
        # one multicast (2 messages) + the final broadcast (2); the two
        # conclaves added no messages at all
        assert result.stats.total_messages == 4


class TestFullStackScenario:
    def test_kvs_and_gmw_compose_in_one_choreography(self):
        """A deliberately heterogeneous end-to-end scenario: a KVS session runs
        between a client and servers, then the servers use GMW to decide (by
        majority of private votes) whether to keep serving."""
        servers = ["s1", "s2", "s3"]
        census = ["client"] + servers
        votes = {"s1": True, "s2": True, "s3": False}
        circuit = circuits.majority3(
            circuits.InputWire("s1", "v"),
            circuits.InputWire("s2", "v"),
            circuits.InputWire("s3", "v"),
        )

        def chor(op):
            responses = kvs_serve(
                op, "client", "s1", servers,
                [Request.put("x", "1"), Request.get("x"), Request.stop()],
            )
            keep_going = op.conclave(
                servers,
                lambda sub: gmw(sub, servers, circuit,
                                {s: {"v": votes[s]} for s in servers},
                                seed=3, rsa_bits=128),
            )
            decision = op.locally("s1", lambda un: un(keep_going))
            return responses, op.broadcast("s1", decision)

        result = run_choreography(chor, census)
        client_responses, decision = result.returns["client"]
        assert client_responses[1] == Response.found("1")
        assert decision is True
        # the GMW sub-protocol ran entirely inside the servers' conclave
        gmw_channels = [
            (src, dst) for (src, dst) in result.stats.snapshot()
            if src in servers and dst in servers and src != "s1"
        ]
        assert gmw_channels, "expected server-to-server traffic from GMW"


class TestFormalModelMirrorsLibrary:
    def test_lambda_c_version_of_the_kvs_shape_passes_all_checks(self):
        """The λC program with the same communication shape as kvs_request
        satisfies progress, preservation, projection agreement, and deadlock
        freedom."""
        unit = UnitData()
        request = Inl(Unit(parties("client")), unit)
        shared = App(Com("client", parties("s1", "s2")), request)
        handled = Case(
            parties("s1", "s2"),
            shared,
            "req",
            App(Com("s1", parties("s1")), Var("req")),
            "req",
            Unit(parties("s1")),
        )
        program = App(Com("s1", parties("client")), handled)
        reports = check_all(parties("client", "s1", "s2"), program)
        assert all(reports.values()), {k: v.details for k, v in reports.items() if not v}
