"""Tests for persistent ChoreoEngine sessions and the backend registry."""

from __future__ import annotations

import threading
import time

import pytest

from repro import ChoreoEngine, run_choreography
from repro.core.errors import CensusError, ChoreographyRuntimeError
from repro.runtime.central import CentralBackend
from repro.runtime.local import LocalTransport
from repro.runtime.registry import (
    backend_names,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.runtime.tcp import TCPTransport

CENSUS = ["alice", "bob", "carol"]

ALL_BACKENDS = ["local", "tcp", "asyncio", "simulated", "central"]


def ping_pong(op, payload):
    at_bob = op.comm("alice", "bob", op.locally("alice", lambda _un: payload))
    echoed = op.locally("bob", lambda un: un(at_bob) + "!")
    return op.broadcast("bob", echoed)


def bookstore(op, title):
    """The quickstart choreography: request, lookup, broadcast the price."""
    catalogue = {"HoTT": 120, "TAPL": 80, "SICP": 40}
    wanted = op.locally("buyer", lambda _un: title)
    request = op.comm("buyer", "seller", wanted)
    price = op.locally("seller", lambda un: catalogue.get(un(request), -1))
    amount = op.broadcast("seller", price)
    if amount < 0:
        return f"{title}: not in catalogue"
    return f"{title}: {amount}"


class TestOneEngineEveryBackend:
    """Acceptance: all four backends run the quickstart choreography through
    the single ``ChoreoEngine``/``engine.run`` surface."""

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_quickstart_runs_on_every_backend(self, backend):
        with ChoreoEngine(["buyer", "seller"], backend=backend) as engine:
            result = engine.run(bookstore, args=("TAPL",))
            assert result.returns["buyer"] == "TAPL: 80"
            assert result.returns["buyer"] == result.returns["seller"]
            assert result.stats.snapshot() == {
                ("buyer", "seller"): 1,
                ("seller", "buyer"): 1,
            }

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_failures_surface_uniformly(self, backend):
        def broken(op):
            return op.locally("alice", lambda _un: 1 / 0)

        with ChoreoEngine(CENSUS, backend=backend) as engine:
            with pytest.raises(ChoreographyRuntimeError) as err:
                engine.run(broken)
            assert isinstance(err.value.original, ZeroDivisionError)
            # the session survives a failed instance
            assert engine.run(ping_pong, args=("ok",)).returns["carol"] == "ok!"


class TestEngineReuse:
    """N sequential runs reuse one warm transport: no re-setup per instance."""

    def _spy_endpoint_creation(self, transport):
        created = []
        original = transport._make_endpoint

        def counting_make_endpoint(location):
            created.append(location)
            return original(location)

        transport._make_endpoint = counting_make_endpoint
        return created

    @pytest.mark.parametrize("transport_cls", [LocalTransport, TCPTransport])
    def test_sequential_runs_share_one_transport(self, transport_cls):
        transport = transport_cls(CENSUS, timeout=10.0)
        created = self._spy_endpoint_creation(transport)
        try:
            with ChoreoEngine(CENSUS, backend=transport) as engine:
                assert sorted(created) == sorted(CENSUS)
                for index in range(4):
                    result = engine.run(ping_pong, args=(f"m{index}",))
                    assert result.returns["alice"] == f"m{index}!"
                # endpoints were materialized exactly once, at engine start
                assert sorted(created) == sorted(CENSUS)
                assert engine.transport is transport
        finally:
            transport.close()

    def test_per_run_stats_are_deltas_and_cumulative_on_engine(self):
        with ChoreoEngine(CENSUS, backend="local") as engine:
            first = engine.run(ping_pong, args=("x",))
            second = engine.run(ping_pong, args=("y",))
        per_run = {("alice", "bob"): 1, ("bob", "alice"): 1, ("bob", "carol"): 1}
        assert first.stats.snapshot() == per_run
        assert second.stats.snapshot() == per_run
        assert first.instance == 0 and second.instance == 1
        assert engine.stats.snapshot() == {channel: 2 for channel in per_run}

    @pytest.mark.parametrize("backend", ["local", "tcp", "asyncio"])
    def test_engine_runs_keep_byte_accounting_exact(self, backend):
        """Instance scoping must not inflate recorded payload bytes: engine
        runs agree with the centralized cost model byte-for-byte."""
        from repro.analysis import communication_cost

        def share_bit(op):
            bit = op.locally("alice", lambda _un: True)
            return op.broadcast("alice", bit)

        predicted = communication_cost(share_bit, CENSUS)
        with ChoreoEngine(CENSUS, backend=backend) as engine:
            engine.run(ping_pong, args=("warm",))  # a prior instance ran first
            result = engine.run(share_bit)
        assert result.stats.total_bytes == predicted.total_bytes
        # a boolean share is one wire byte per receiver, instance tag or not
        assert result.stats.payload_bytes[("alice", "bob")] == 1

    def test_worker_threads_are_daemons(self):
        with ChoreoEngine(CENSUS, backend="local") as engine:
            engine.run(ping_pong, args=("x",))
            workers = [t for t in threading.enumerate() if t.name.startswith("engine-")]
            assert workers
            assert all(worker.daemon for worker in workers)


def staggered(op, payload, delay):
    """carol reports to alice immediately; alice/bob then ping-pong slowly.

    With pipelined submissions carol races ahead to later instances while
    alice is still mid-earlier-instance, so instance tags are exercised.
    """
    early = op.comm("carol", "alice", op.locally("carol", lambda _un: payload * 10))
    at_bob = op.comm("alice", "bob", op.locally("alice", lambda _un: payload))
    slowed = op.locally("bob", lambda un: (time.sleep(delay), un(at_bob))[1])
    back = op.comm("bob", "alice", slowed)
    total = op.locally("alice", lambda un: un(back) + un(early))
    return op.broadcast("alice", total)


class TestPipelinedSubmissions:
    @pytest.mark.parametrize("backend", ["local", "tcp", "asyncio"])
    def test_concurrent_submits_do_not_interleave(self, backend):
        with ChoreoEngine(CENSUS, backend=backend, timeout=10.0) as engine:
            futures = [
                engine.submit(staggered, args=(index, 0.02 if index == 0 else 0.0))
                for index in range(6)
            ]
            results = [future.result(timeout=30.0) for future in futures]
        for index, result in enumerate(results):
            assert result.returns["alice"] == index * 11
            assert result.returns["carol"] == index * 11
            # every run's stats delta is exactly one instance's traffic:
            # carol→alice, alice→bob, bob→alice, broadcast alice→{bob, carol}
            assert result.stats.total_messages == 5
        assert [result.instance for result in results] == list(range(6))

    def test_pipelining_after_a_failed_instance(self):
        """A failed instance's unconsumed messages must not leak into later ones.

        bob dies before receiving, so alice's instance-0 message is left in
        the channel; instance 1 must drop that stale-tagged leftover and see
        its own payload.
        """

        def leaky(op, boom, payload):
            if boom:
                op.locally("bob", lambda _un: 1 / 0)  # bob dies; alice skips this
            at_bob = op.comm("alice", "bob", op.locally("alice", lambda _un: payload))
            return op.locally("bob", lambda un: un(at_bob))

        with ChoreoEngine(CENSUS, backend="local", timeout=5.0) as engine:
            bad = engine.submit(leaky, args=(True, "stale"))
            good = engine.submit(leaky, args=(False, "fresh"))
            with pytest.raises(ChoreographyRuntimeError) as err:
                bad.result(timeout=30.0)
            assert isinstance(err.value.original, ZeroDivisionError)
            result = good.result(timeout=30.0)
            assert result.value_at("bob") == "fresh"


class TestStashPurging:
    """A long-lived session must not accumulate stash entries (memory leak)."""

    @pytest.mark.parametrize("backend", ["local", "asyncio"])
    def test_racing_failure_leaves_no_stash_entries(self, backend):
        """a fails instance 0 before sending, so b stashes instance-1 traffic
        while still blocked in instance 0; after both instances resolve, every
        worker stash must be empty again.

        The choreography is deliberately one-way (a → b): a's instance-1
        completion must not depend on b, because b can only leave its doomed
        instance-0 wait by receive timeout — any a-side wait on b would race
        that timeout.
        """

        def flaky(op, boom):
            def compute(_un):
                if boom:
                    raise RuntimeError("boom")
                return 42

            value = op.locally("a", compute)
            at_b = op.comm("a", "b", value)
            return op.locally("b", lambda un: un(at_b))

        with ChoreoEngine(["a", "b"], backend=backend, timeout=1.0) as engine:
            bad = engine.submit(flaky, args=(True,))
            good = engine.submit(flaky, args=(False,))
            with pytest.raises(ChoreographyRuntimeError) as err:
                bad.result(timeout=30.0)
            assert isinstance(err.value.original, RuntimeError)
            result = good.result(timeout=30.0)
            assert result.value_at("b") == 42
            assert all(stash == {} for stash in engine._stashes.values()), (
                engine._stashes
            )

    def test_stale_stash_keys_below_current_are_purged(self):
        """Regression: entries for completed/failed instances used to linger —
        the per-instance pop only removed the *current* instance's key, so a
        key from a skipped instance stayed forever.  Run end now purges every
        key ≤ the just-finished instance."""
        from collections import deque

        with ChoreoEngine(CENSUS, backend="local", timeout=5.0) as engine:
            engine.run(ping_pong, args=("x",))  # instance 0
            # Plant the leak shape directly: a stash entry whose instance has
            # already finished and will therefore never consume it.
            engine._stashes["alice"][0] = {"carol": deque(["dead"])}
            engine.run(ping_pong, args=("y",))  # instance 1: purge keys <= 1
            assert engine._stashes["alice"] == {}


class TestEngineLifecycle:
    def test_context_manager_closes_owned_transport(self):
        engine = ChoreoEngine(CENSUS, backend="local")
        engine.run(ping_pong, args=("x",))
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.submit(ping_pong, args=("y",))
        engine.close()  # idempotent

    def test_borrowed_transport_left_open(self):
        transport = LocalTransport(CENSUS, timeout=5.0)
        with ChoreoEngine(CENSUS, backend=transport) as engine:
            engine.run(ping_pong, args=("x",))
        transport.endpoint("alice").send("bob", 1)
        transport.endpoint("alice").flush()
        assert transport.endpoint("bob").recv("alice") == 1
        transport.close()

    def test_close_drains_pending_submissions(self):
        engine = ChoreoEngine(CENSUS, backend="local", timeout=5.0)
        futures = [engine.submit(ping_pong, args=(f"m{i}",)) for i in range(4)]
        engine.close()
        assert [f.result(timeout=1.0).returns["alice"] for f in futures] == [
            "m0!", "m1!", "m2!", "m3!",
        ]

    def test_one_live_engine_per_transport(self):
        """Two live engines on one transport would share cached endpoints and
        collide on instance ids; the second engine must be refused."""
        transport = LocalTransport(CENSUS, timeout=5.0)
        try:
            with ChoreoEngine(CENSUS, backend=transport) as engine:
                engine.run(ping_pong, args=("x",))
                with pytest.raises(ValueError, match="another live ChoreoEngine"):
                    ChoreoEngine(CENSUS, backend=transport)
            # the lease is released on close: a new session may claim it
            with ChoreoEngine(CENSUS, backend=transport) as engine:
                assert engine.run(ping_pong, args=("y",)).returns["bob"] == "y!"
        finally:
            transport.close()

    def test_backend_options_rejected_for_prebuilt_backends(self):
        transport = LocalTransport(CENSUS, timeout=5.0)
        with pytest.raises(ValueError, match="backend options"):
            ChoreoEngine(CENSUS, backend=transport, latency=1.0)
        transport.close()

    def test_location_args_routed_per_endpoint(self):
        def chor(op, mine=None):
            facets = op.parallel(list(op.census), lambda loc, _un: mine)
            gathered = op.gather(list(op.census), [list(op.census)[0]], facets)
            first = list(op.census)[0]
            total = op.locally(first, lambda un: sum(un(gathered).values()))
            return op.broadcast(first, total)

        with ChoreoEngine(["a", "b"], backend="local") as engine:
            result = engine.run(chor, location_args={"a": (1,), "b": (2,)})
            assert result.returns["a"] == 3


class TestCentralBackend:
    def test_location_args_rejected(self):
        with ChoreoEngine(["a", "b"], backend="central") as engine:
            with pytest.raises(ValueError, match="per-location arguments"):
                engine.submit(ping_pong, args=("x",), location_args={"a": (1,)})

    def test_returns_are_localized(self):
        def chor(op):
            return op.locally("alice", lambda _un: 7)

        with ChoreoEngine(CENSUS, backend="central") as engine:
            result = engine.run(chor)
        assert result.value_at("alice") == 7
        assert result.has_value("bob") is False
        assert result.present_values() == {"alice": 7}

    def test_census_violations_are_wrapped(self):
        def chor(op):
            return op.locally("mallory", lambda _un: 1)

        with ChoreoEngine(CENSUS, backend="central") as engine:
            with pytest.raises(ChoreographyRuntimeError) as err:
                engine.run(chor)
            assert isinstance(err.value.original, CensusError)


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        assert {"local", "tcp", "asyncio", "simulated", "central"} <= set(
            backend_names()
        )

    def test_register_backend_is_pluggable(self):
        class TracingTransport(LocalTransport):
            pass

        register_backend("tracing-local", TracingTransport)
        try:
            assert "tracing-local" in backend_names()
            with ChoreoEngine(CENSUS, backend="tracing-local") as engine:
                assert isinstance(engine.transport, TracingTransport)
                assert engine.run(ping_pong, args=("x",)).returns["bob"] == "x!"
            # ...and through the compatibility wrapper too
            result = run_choreography(ping_pong, CENSUS, args=("y",),
                                      transport="tracing-local")
            assert result.returns["carol"] == "y!"
        finally:
            unregister_backend("tracing-local")

    def test_duplicate_registration_needs_replace(self):
        register_backend("dupe-test", LocalTransport)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_backend("dupe-test", LocalTransport)
            register_backend("dupe-test", TCPTransport, replace=True)
        finally:
            unregister_backend("dupe-test")

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown transport"):
            create_backend("carrier-pigeon", CENSUS)
        with pytest.raises(ValueError, match="unknown transport"):
            ChoreoEngine(CENSUS, backend="carrier-pigeon")

    def test_simulated_backend_options_forwarded(self):
        backend = create_backend("simulated", CENSUS, latency=2.5, bandwidth=1e6)
        assert backend.latency == 2.5
        backend.close()

    def test_central_factory_builds_central_backend(self):
        backend = create_backend("central", CENSUS)
        assert isinstance(backend, CentralBackend)
        backend.close()


class TestTypedRegistry:
    """The Protocol-keyed injection layer under the string-name shim."""

    def test_impl_decorator_registers_and_resolves(self):
        from repro.runtime.registry import (
            TransportBackend,
            impl,
            impl_protocols,
            implementations,
            implements,
            resolve_impl,
            unregister_impl,
        )

        @impl(TransportBackend, name="typed-local")
        class TypedLocal(LocalTransport):
            pass

        try:
            assert resolve_impl(TransportBackend, "typed-local") is TypedLocal
            assert implementations(TransportBackend)["typed-local"] is TypedLocal
            assert implements(TypedLocal, TransportBackend)
            assert TransportBackend in impl_protocols(TypedLocal)
            # the string shim and the engine see the typed registration
            assert "typed-local" in backend_names()
            with ChoreoEngine(CENSUS, backend="typed-local") as engine:
                assert isinstance(engine.transport, TypedLocal)
                assert engine.run(ping_pong, args=("x",)).returns["bob"] == "x!"
        finally:
            unregister_impl(TransportBackend, "typed-local")
        assert "typed-local" not in backend_names()

    def test_unknown_impl_name_lists_the_protocols_table(self):
        from repro.runtime.registry import TransportBackend, resolve_impl

        with pytest.raises(ValueError, match="unknown TransportBackend"):
            resolve_impl(TransportBackend, "carrier-pigeon")

    def test_duplicate_impl_name_needs_replace(self):
        from repro.runtime.registry import TransportBackend, register_impl, unregister_impl

        register_impl(TransportBackend, LocalTransport, name="dupe-impl")
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_impl(TransportBackend, TCPTransport, name="dupe-impl")
            register_impl(TransportBackend, TCPTransport, name="dupe-impl", replace=True)
        finally:
            unregister_impl(TransportBackend, "dupe-impl")

    def test_wire_codec_and_fault_sources_are_discoverable(self):
        from repro.faults import FaultPlan
        from repro.runtime.registry import (
            FaultPlanSource,
            WireCodec,
            implementations,
            implements,
            resolve_impl,
        )

        codec = resolve_impl(WireCodec, "compact")
        assert codec.decode(codec.encode((1, "x"))) == (1, "x")
        assert isinstance(codec, WireCodec)  # runtime_checkable structural check
        assert implements(FaultPlan, FaultPlanSource)
        assert "seeded" in implementations(FaultPlanSource)

    def test_backends_mapping_is_a_live_view_of_the_typed_table(self):
        from repro.runtime.registry import BACKENDS, TransportBackend, implements

        class Pigeon(LocalTransport):
            pass

        BACKENDS["pigeon-test"] = Pigeon
        try:
            assert "pigeon-test" in backend_names()
            assert BACKENDS["pigeon-test"] is Pigeon
            assert implements(Pigeon, TransportBackend)
            assert len(BACKENDS) == len(backend_names())
            assert set(BACKENDS) == set(backend_names())
        finally:
            del BACKENDS["pigeon-test"]
        assert "pigeon-test" not in backend_names()


class TestCloseDeadlineCap:
    """Regression: close() used to wait timeout * 2 * (backlog + 1) — with a
    wedged census and a deep pipelined backlog that is effectively forever."""

    def test_close_is_bounded_with_hung_census_and_deep_backlog(
        self, monkeypatch, caplog
    ):
        from repro.runtime import engine as engine_module

        monkeypatch.setattr(engine_module, "CLOSE_DEADLINE_CAP", 1.0)
        hang = threading.Event()

        def wedge(op):
            return op.locally("a", lambda _un: hang.wait())

        engine = ChoreoEngine(["a", "b"], backend="local", timeout=0.5)
        try:
            for _ in range(1000):
                engine.submit(wedge)
            start = time.monotonic()
            with caplog.at_level("WARNING", logger="repro.runtime.engine"):
                engine.close()
            elapsed = time.monotonic() - start
            # Uncapped, the deadline would be 0.5 * 2 * 1001 ≈ 1001 s; the
            # cap brings it to 0.5 * 2 + 1.0 = 2 s.  Generous headroom for
            # slow CI, but orders of magnitude under the uncapped wait.
            assert elapsed < 20.0
            assert any(
                "abandoned" in record.getMessage() for record in caplog.records
            ), caplog.records
        finally:
            hang.set()  # let the abandoned daemon worker drain

    def test_healthy_backlog_still_drains_fully(self, monkeypatch):
        """The cap must not cut off a *healthy* queue: everything already
        submitted still completes before the transport goes away."""
        from repro.runtime import engine as engine_module

        monkeypatch.setattr(engine_module, "CLOSE_DEADLINE_CAP", 30.0)
        engine = ChoreoEngine(CENSUS, backend="local", timeout=5.0)
        futures = [engine.submit(ping_pong, args=(f"m{i}",)) for i in range(32)]
        engine.close()
        assert [f.result(timeout=1.0).returns["alice"] for f in futures] == [
            f"m{i}!" for i in range(32)
        ]
