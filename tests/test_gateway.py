"""End-to-end tests for the gateway: real sockets over a real cluster.

Every test here drives :class:`GatewayServer` through TCP — mostly via
:class:`GatewayClient`, occasionally through a raw socket to exercise the
inline form and framing-damage paths.  The overload defenses are tested
separately and deterministically:

* **admission control** by pinning the cluster's ``pending`` gauge above
  the high-water mark (monkeypatched property — no racing against real
  load), asserting the retryable ``BUSY`` shed;
* **backpressure** by pipelining far past ``max_inflight_per_conn`` and
  asserting every reply arrives, in order (the reader paces the socket
  rather than erroring);
* **drain** by closing the server with delayed in-flight commands and
  asserting each already-admitted command still got its reply;
* **chaos** by parking the gateway over a cluster whose primary is
  crash-scheduled (seeded :class:`FaultPlan`) and asserting every wire
  command answers with a *typed* error frame — never a hang, never an
  unstructured failure.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro import ClusterClient, ClusterEngine, FaultPlan, TxnConflict
from repro.cluster.engine import ClusterEngine as _EngineClass
from repro.core.errors import ChoreographyRuntimeError
from repro.gateway import (
    ERR_ABORTED,
    ERR_BADREQUEST,
    ERR_BUSY,
    ERR_DRAINING,
    ERR_FAILED,
    ERR_FAILOVER,
    ERR_MAXCONN,
    ERR_TIMEOUT,
    ERR_UNAVAILABLE,
    BulkReply,
    ErrorReply,
    GatewayClient,
    GatewayError,
    GatewayServer,
    GatewaySettings,
)
from repro.protocols.kvs import Request, StaleEpoch
from tests.test_cluster_failover import BACKEND, CHAOS_SEEDS, TIMEOUT

#: Socket timeout for test clients: generous enough for CI, small enough
#: that a hang fails the test instead of wedging the suite.
CLIENT_TIMEOUT = 20.0


@pytest.fixture()
def stack():
    """A 2-shard cluster behind a gateway, plus one connected client."""
    with ClusterClient(shards=2, replication=2, backend=BACKEND) as kvs:
        with GatewayServer(kvs) as server:
            host, port = server.address
            with GatewayClient(host, port, timeout=CLIENT_TIMEOUT) as client:
                yield server, client


class TestGatewayDataPlane:
    def test_put_get_delete_round_trip(self, stack):
        _server, client = stack
        assert client.put("user:1", "ada") is None
        assert client.get("user:1") == "ada"
        assert client.put("user:1", "grace") == "ada"
        assert client.delete("user:1") == "grace"
        assert client.get("user:1") is None
        assert client.delete("user:1") is None

    def test_batch_mixed_requests(self, stack):
        _server, client = stack
        replies = client.batch(
            [
                Request.put("a", "1"),
                Request.get("a"),
                Request.delete("a"),
                Request.get("a"),
            ]
        )
        assert replies == [None, "1", "1", None]

    def test_scan_across_shards(self, stack):
        _server, client = stack
        for index in range(8):
            client.put(f"k:{index}", str(index))
        client.put("other", "x")
        assert client.scan("k:") == [(f"k:{i}", str(i)) for i in range(8)]

    def test_inline_form_over_raw_socket(self, stack):
        server, _client = stack
        host, port = server.address
        with socket.create_connection((host, port), timeout=CLIENT_TIMEOUT) as raw:
            raw.sendall(b"PUT inline yes\r\nGET inline\r\n")
            deadline = time.monotonic() + CLIENT_TIMEOUT
            data = b""
            while data != b"$-1\r\n$3\r\nyes\r\n":
                raw.settimeout(max(0.1, deadline - time.monotonic()))
                chunk = raw.recv(65536)
                assert chunk, f"connection closed early with {data!r}"
                data += chunk
        assert data == b"$-1\r\n$3\r\nyes\r\n"

    def test_pipelined_replies_keep_request_order(self, stack):
        _server, client = stack
        count = 30
        for index in range(count):
            client.send("PUT", "seq", f"v{index}")
        replies = client.drain(count)
        previous = [r.value for r in replies if isinstance(r, BulkReply)]
        assert previous == [None] + [f"v{i}" for i in range(count - 1)]


class TestGatewayTxn:
    """``MULTI (PUT k v | DEL k)+ EXEC`` mapped onto cross-shard 2PC."""

    def test_multi_exec_commits_atomically_across_shards(self, stack):
        _server, client = stack
        txn_id = client.txn([Request.put("alice", "50"), Request.put("bob", "150")])
        assert txn_id.startswith("txn-")
        assert client.get("alice") == "50"
        assert client.get("bob") == "150"
        second = client.txn([Request.delete("alice"), Request.put("bob", "200")])
        assert second != txn_id
        assert client.get("alice") is None
        assert client.get("bob") == "200"

    def test_multi_grammar_is_validated_up_front(self, stack):
        _server, client = stack
        for bad in (
            ["MULTI", "PUT", "k", "v"],  # missing EXEC
            ["MULTI", "GET", "k", "EXEC"],  # reads are not allowed
            ["MULTI", "EXEC"],  # empty write set
            ["MULTI", "PUT", "k", "EXEC"],  # PUT missing its value
        ):
            with pytest.raises(GatewayError) as excinfo:
                client.call(*bad)
            assert excinfo.value.code == ERR_BADREQUEST
            assert not excinfo.value.retryable
        assert client.ping() == "PONG"  # connection survived them all

    def test_conflict_surfaces_as_a_retryable_aborted_frame(self, stack):
        server, client = stack
        cluster = server.client.cluster
        # Park an intent on the contended key by stalling one decide phase.
        real_decide = cluster._decide_phase
        cluster._decide_phase = lambda *args: None
        cluster.submit_txn([Request.put("hot", "1")], txn_id="parked")
        deadline = time.monotonic() + CLIENT_TIMEOUT
        while cluster.pending and time.monotonic() < deadline:
            time.sleep(0.01)
        cluster._decide_phase = real_decide
        with pytest.raises(GatewayError) as excinfo:
            client.txn([Request.put("hot", "2"), Request.put("cold", "3")])
        assert excinfo.value.code == ERR_ABORTED
        assert excinfo.value.retryable  # nothing applied; a fresh try is safe
        assert excinfo.value.detail["keys"] == ["hot"]
        assert excinfo.value.detail["txn_id"]
        assert client.get("cold") is None  # the other shard rolled back too

    def test_client_retries_ride_out_a_transient_abort(self, stack):
        server, _client = stack
        cluster = server.client.cluster
        real = cluster.submit_txn
        calls = [0]

        def contended_once(requests, **kwargs):
            calls[0] += 1
            if calls[0] == 1:
                raise TxnConflict("txn-lost", ["hot"])
            return real(requests, **kwargs)

        cluster.submit_txn = contended_once
        host, port = server.address
        with GatewayClient(host, port, timeout=CLIENT_TIMEOUT, retries=2) as client:
            txn_id = client.txn([Request.put("hot", "9")])
            assert calls[0] == 2  # first attempt ABORTED, resend committed
            assert txn_id.startswith("txn-")
            assert client.get("hot") == "9"


class TestGatewayControlPlane:
    def test_ping_and_echo(self, stack):
        _server, client = stack
        assert client.ping() == "PONG"
        assert client.ping("token-17") == "token-17"

    def test_health_reports_shards_and_pending(self, stack):
        _server, client = stack
        health = client.health()
        assert sorted(health) == ["shard0", "shard1"]
        for shard in health.values():
            assert shard["degraded"] is False
            assert shard["pending"] == 0
            assert set(shard["replicas"].values()) == {"up"}

    def test_stats_counters_move(self, stack):
        _server, client = stack
        client.put("k", "v")
        stats = client.stats()
        assert stats["connections"] == 1
        assert stats["commands"] >= 2
        assert stats["cluster_messages"] > 0
        assert stats["draining"] is False


class TestGatewayErrors:
    def test_unknown_verb_is_nonfatal(self, stack):
        _server, client = stack
        with pytest.raises(GatewayError) as excinfo:
            client.call("FROB", "x")
        assert excinfo.value.code == ERR_BADREQUEST
        assert not excinfo.value.retryable
        assert client.ping() == "PONG"  # connection survived

    def test_framing_damage_answers_then_hangs_up(self, stack):
        server, _client = stack
        host, port = server.address
        with socket.create_connection((host, port), timeout=CLIENT_TIMEOUT) as raw:
            raw.sendall(b"*1\r\n:666\r\n")  # int frame where a bulk belongs
            raw.settimeout(CLIENT_TIMEOUT)
            data = b""
            while True:
                chunk = raw.recv(65536)
                if not chunk:
                    break  # server hung up, as promised
                data += chunk
        assert data.startswith(b"-")  # but answered with an error frame first

    def test_busy_shed_past_high_water(self, stack, monkeypatch):
        server, client = stack
        monkeypatch.setattr(
            _EngineClass, "pending", property(lambda self: 10_000)
        )
        with pytest.raises(GatewayError) as excinfo:
            client.get("whatever")
        assert excinfo.value.code == ERR_BUSY
        assert excinfo.value.retryable
        assert excinfo.value.detail["high_water"] == server.settings.admission_high_water
        assert client.ping() == "PONG"  # control plane still admitted
        assert client.stats()["shed_busy"] >= 1

    def test_shedding_is_sticky_until_the_low_water_mark(self, stack, monkeypatch):
        server, client = stack
        load = {"pending": 0}
        monkeypatch.setattr(
            _EngineClass, "pending", property(lambda self: load["pending"])
        )
        low = server.settings.low_water
        assert client.put("calm", "1") is None  # below the band: admitted
        load["pending"] = server.settings.admission_high_water + 1
        with pytest.raises(GatewayError) as excinfo:
            client.put("hot", "2")
        assert excinfo.value.code == ERR_BUSY
        assert excinfo.value.detail["low_water"] == low
        # Back under the high-water mark but still above the low one:
        # hysteresis keeps shedding (no admit/shed flapping).
        load["pending"] = low + 1
        with pytest.raises(GatewayError) as excinfo:
            client.put("warm", "3")
        assert excinfo.value.code == ERR_BUSY
        assert client.stats()["shedding"] is True
        # At the low-water mark the gateway re-admits.
        load["pending"] = low
        assert client.put("cool", "4") is None
        assert client.stats()["shedding"] is False

    def test_client_retries_ride_out_a_shed(self, stack, monkeypatch):
        server, _client = stack
        spikes = iter([10_000])  # saturated for exactly one admission check
        monkeypatch.setattr(
            _EngineClass, "pending", property(lambda self: next(spikes, 0))
        )
        host, port = server.address
        with GatewayClient(host, port, timeout=CLIENT_TIMEOUT, retries=2) as client:
            assert client.put("k", "v") is None  # first attempt shed, retry lands
            assert client.get("k") == "v"
        assert server.metrics()["shed_busy"] == 1

    def test_client_surfaces_nonretryable_frames_despite_retries(self, stack):
        server, _client = stack
        host, port = server.address
        with GatewayClient(host, port, timeout=CLIENT_TIMEOUT, retries=5) as client:
            before = server.metrics()["commands"]
            with pytest.raises(GatewayError) as excinfo:
                client.call("FROB", "x")
            assert excinfo.value.code == ERR_BADREQUEST
            assert server.metrics()["commands"] == before + 1  # no blind resends

    def test_client_rejects_negative_retries(self, stack):
        server, _client = stack
        host, port = server.address
        with pytest.raises(ValueError, match="retries"):
            GatewayClient(host, port, retries=-1)

    def test_draining_rejects_new_work_but_serves_control(self, stack):
        server, client = stack
        server._draining.set()
        try:
            with pytest.raises(GatewayError) as excinfo:
                client.put("k", "v")
            assert excinfo.value.code == ERR_DRAINING
            assert excinfo.value.retryable
            assert client.ping() == "PONG"
        finally:
            server._draining.clear()

    def test_maxconn_rejected_with_typed_error(self):
        with ClusterClient(shards=1, replication=2, backend=BACKEND) as kvs:
            settings = GatewaySettings(max_connections=1)
            with GatewayServer(kvs, settings) as server:
                host, port = server.address
                with GatewayClient(host, port, timeout=CLIENT_TIMEOUT) as first:
                    assert first.ping() == "PONG"
                    with socket.create_connection(
                        (host, port), timeout=CLIENT_TIMEOUT
                    ) as refused:
                        refused.settimeout(CLIENT_TIMEOUT)
                        data = refused.recv(65536)
                        assert data.startswith(b"-")
                        assert ERR_MAXCONN.encode() in data


class TestBackpressure:
    def test_pipelining_past_budget_paces_not_errors(self):
        with ClusterClient(shards=2, replication=2, backend=BACKEND) as kvs:
            settings = GatewaySettings(max_inflight_per_conn=2)
            with GatewayServer(kvs, settings) as server:
                host, port = server.address
                with GatewayClient(host, port, timeout=CLIENT_TIMEOUT) as client:
                    count = 40
                    for index in range(count):
                        client.send("PUT", f"key:{index % 5}", f"v{index}")
                    replies = client.drain(count)
                    assert len(replies) == count
                    assert not any(isinstance(r, ErrorReply) for r in replies)
                    assert server.metrics()["shed_busy"] == 0


class TestDrain:
    def test_close_waits_for_admitted_commands(self):
        plan = FaultPlan(seed=5).delay(jitter=0.01, rate=1.0)
        with ClusterClient(
            shards=2, replication=2, backend=BACKEND, timeout=5.0, faults=plan
        ) as kvs:
            with GatewayServer(kvs) as server:
                host, port = server.address
                with GatewayClient(host, port, timeout=CLIENT_TIMEOUT) as client:
                    count = 16
                    for index in range(count):
                        client.send("PUT", f"k{index}", f"v{index}")
                    # Let the reader admit everything before the drain begins.
                    deadline = time.monotonic() + CLIENT_TIMEOUT
                    while server.metrics()["commands"] < count:
                        assert time.monotonic() < deadline
                        time.sleep(0.01)
                    closer = threading.Thread(target=server.close)
                    closer.start()
                    replies = client.drain(count)
                    closer.join(timeout=CLIENT_TIMEOUT)
                    assert not closer.is_alive()
                    assert len(replies) == count
                    assert not any(isinstance(r, ErrorReply) for r in replies)
                assert server.metrics()["inflight"] == 0

    def test_close_is_idempotent(self, stack):
        server, _client = stack
        server.close()
        server.close()


class TestGatewaySettings:
    def test_from_env_reads_prefixed_vars(self):
        env = {
            "GATEWAY_PORT": "7401",
            "GATEWAY_MAX_CONNECTIONS": "9",
            "GATEWAY_DRAIN_TIMEOUT": "1.5",
            "UNRELATED": "ignored",
        }
        settings = GatewaySettings.from_env(env)
        assert settings.port == 7401
        assert settings.max_connections == 9
        assert settings.drain_timeout == 1.5
        assert settings.host == "127.0.0.1"  # default preserved

    def test_overrides_beat_env(self):
        settings = GatewaySettings.from_env({"GATEWAY_PORT": "7401"}, port=7402)
        assert settings.port == 7402

    def test_bad_env_value_fails_fast(self):
        with pytest.raises(ValueError):
            GatewaySettings.from_env({"GATEWAY_PORT": "not-a-port"})

    def test_float_field_env_parse_actually_parses(self):
        """Regression: type dispatch used to string-match the annotation
        spelling (``f.type in ("int", int)``), so any other spelling silently
        passed the raw string through to the float field."""
        settings = GatewaySettings.from_env({"GATEWAY_DRAIN_TIMEOUT": "2.5"})
        assert isinstance(settings.drain_timeout, float)
        assert settings.drain_timeout == 2.5

    def test_unsupported_annotation_fails_loudly(self):
        """A field whose resolved annotation from_env cannot parse must be a
        loud ValueError, not a raw string smuggled into the dataclass."""
        import dataclasses

        @dataclasses.dataclass(frozen=True)
        class Extended(GatewaySettings):
            extras: dict = dataclasses.field(default_factory=dict)

        with pytest.raises(ValueError, match="unsupported annotation"):
            Extended.from_env({})

    def test_unresolvable_annotation_fails_loudly(self):
        """An annotation that cannot even be resolved (a forward reference to
        a name not importable at resolution time) is a ValueError as well,
        not a NameError leaking out of typing internals."""
        import dataclasses

        @dataclasses.dataclass(frozen=True)
        class Phantom(GatewaySettings):
            ghost: "NoSuchTypeAnywhere" = None  # noqa: F821

        with pytest.raises(ValueError, match="could not resolve"):
            Phantom.from_env({})

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError):
            GatewaySettings.from_env({}, max_inflght=3)  # typo caught

    @pytest.mark.parametrize(
        "field, value",
        [
            ("port", -1),
            ("max_connections", 0),
            ("max_inflight_per_conn", 0),
            ("admission_high_water", 0),
            ("admission_low_water", -1),
            ("drain_timeout", -0.1),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            GatewaySettings(**{field: value})

    def test_low_water_must_not_exceed_high_water(self):
        with pytest.raises(ValueError, match="low_water"):
            GatewaySettings(admission_high_water=10, admission_low_water=11)

    def test_low_water_defaults_to_half_the_high_water_mark(self):
        assert GatewaySettings(admission_high_water=100).low_water == 50
        assert GatewaySettings(admission_high_water=1).low_water == 1
        assert (
            GatewaySettings(admission_high_water=100, admission_low_water=7).low_water
            == 7
        )
        assert GatewaySettings.from_env(
            {"GATEWAY_ADMISSION_LOW_WATER": "25"}
        ).admission_low_water == 25


class TestGatewayChaos:
    """The network door under injected faults: typed frames, never hangs."""

    #: Codes a client may legitimately see while the shard behind the
    #: gateway is crashing and being failed over.
    ACCEPTABLE = {ERR_FAILED, ERR_TIMEOUT, ERR_UNAVAILABLE, ERR_BUSY, ERR_FAILOVER}

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_primary_crash_fails_over_behind_the_gateway(self, seed):
        plan = FaultPlan(seed=seed).crash("shard0.r0", after_ops=0)
        with ClusterEngine(
            shards=1, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as cluster:
            kvs = ClusterClient(cluster)
            with GatewayServer(kvs) as server:
                host, port = server.address
                with GatewayClient(host, port, timeout=CLIENT_TIMEOUT) as client:
                    acked = {}
                    for index in range(10):
                        try:
                            client.put(f"k{index}", f"v{index}")
                            acked[f"k{index}"] = f"v{index}"
                        except GatewayError as exc:
                            # Anything surfaced during the failover window
                            # must stay typed — and the window itself maps
                            # to a retryable code, never a dead connection.
                            assert exc.code in self.ACCEPTABLE, exc.code
                    # The shard failed over: the writes landed on the new
                    # head and every acked write is durable there.
                    assert cluster.promotions
                    assert cluster.promotions[0].old_primary == "shard0.r0"
                    for key, value in acked.items():
                        assert client.get(key) == value
                    health = client.health()["shard0"]
                    assert health["primary"] == cluster.promotions[-1].new_primary
                    assert health["epoch"] == cluster.promotions[-1].epoch
                    assert health["roles"][health["primary"]] == "primary"
                    # The connection itself survives typed failures.
                    assert client.ping() == "PONG"

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_backup_crash_is_routed_around(self, seed):
        plan = FaultPlan(seed=seed).crash("shard0.r1", after_ops=4)
        with ClusterEngine(
            shards=1, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as cluster:
            kvs = ClusterClient(cluster)
            with GatewayServer(kvs) as server:
                host, port = server.address
                with GatewayClient(host, port, timeout=CLIENT_TIMEOUT) as client:
                    for index in range(12):
                        client.put(f"k{index % 4}", f"v{index}")
                    # Failover replayed the in-flight writes; reads serve on.
                    assert client.get("k3") == "v11"
                    health = client.health()["shard0"]
                    assert health["replicas"]["shard0.r1"] == "down"

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_pipelined_sends_across_a_failover_all_get_replies(self, seed):
        # The raw pipelined path (send()/drain()) bypasses the client's
        # retry loop, so every slot the reader admitted must produce a
        # frame even while the shard behind the gateway is failing over —
        # and every in-flight slot must be released after its reply is on
        # the socket (the drain/accounting invariant), never leaked.
        plan = FaultPlan(seed=seed).crash("shard0.r0", after_ops=6)
        with ClusterEngine(
            shards=1, replication=2, backend=BACKEND, timeout=TIMEOUT, faults=plan
        ) as cluster:
            kvs = ClusterClient(cluster)
            with GatewayServer(kvs) as server:
                host, port = server.address
                with GatewayClient(host, port, timeout=CLIENT_TIMEOUT) as client:
                    count = 24
                    for index in range(count):
                        client.send("PUT", f"k{index % 4}", f"v{index}")
                    replies = client.drain(count)
                    assert len(replies) == count  # one frame per send, in order
                    for reply in replies:
                        if isinstance(reply, ErrorReply):
                            assert reply.code in self.ACCEPTABLE, reply
                        else:
                            assert isinstance(reply, BulkReply)
                    assert cluster.promotions  # the head fell mid-pipeline
                    # Every slot was released after its sendall: no leaks.
                    deadline = time.monotonic() + CLIENT_TIMEOUT
                    while server.metrics()["inflight"] and time.monotonic() < deadline:
                        time.sleep(0.01)
                    assert server.metrics()["inflight"] == 0
                    # The connection serves on against the promoted head.
                    assert client.put("after", "failover") is None
                    assert client.get("after") == "failover"

    def test_call_retry_rides_out_a_failover_frame(self, stack):
        # Deterministic pin of the FAILOVER retry path: the first attempt
        # surfaces a stale-epoch-rooted failure (the promotion window), the
        # client sees the retryable FAILOVER frame and resends, and the
        # resend lands on the current binding.
        server, _client = stack
        cluster = server.client.cluster
        real = cluster.submit_put
        calls = [0]

        def fenced_once(key, value):
            calls[0] += 1
            if calls[0] == 1:
                raise ChoreographyRuntimeError("shard0.r0", StaleEpoch(0, 1))
            return real(key, value)

        cluster.submit_put = fenced_once
        host, port = server.address
        with GatewayClient(host, port, timeout=CLIENT_TIMEOUT, retries=2) as client:
            assert client.put("fenced", "ok") is None
            assert calls[0] == 2  # FAILOVER frame, then the resend landed
            assert client.get("fenced") == "ok"

    def test_cluster_closed_surfaces_as_unavailable(self):
        kvs = ClusterClient(shards=1, replication=2, backend=BACKEND)
        with GatewayServer(kvs) as server:
            host, port = server.address
            with GatewayClient(host, port, timeout=CLIENT_TIMEOUT) as client:
                assert client.put("k", "v") is None
                kvs.close()
                with pytest.raises(GatewayError) as excinfo:
                    client.get("k")
                assert excinfo.value.code == ERR_UNAVAILABLE
