"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.locations import Census
from repro.runtime.central import CentralOp
from repro.runtime.local import LocalTransport


@pytest.fixture
def abc_census() -> Census:
    """A small three-party census used by many unit tests."""
    return Census(["alice", "bob", "carol"])


@pytest.fixture
def cluster_census() -> Census:
    """A client plus three servers, the shape of the KVS case study."""
    return Census(["client", "s1", "s2", "s3"])


@pytest.fixture
def central_abc(abc_census) -> CentralOp:
    """A centralized operator over the three-party census."""
    return CentralOp(abc_census)


@pytest.fixture
def local_transport(abc_census) -> LocalTransport:
    """An in-process transport for the three-party census."""
    transport = LocalTransport(abc_census, timeout=5.0)
    yield transport
    transport.close()
