"""Tests for the HasChor-style baseline and its broadcast-KoC cost profile."""

from __future__ import annotations

import pytest

from repro.analysis.comm_cost import communication_cost, haschor_communication_cost
from repro.baselines.haschor import (
    At,
    HasChorCentralOp,
    HasChorProjectedOp,
    run_haschor,
)
from repro.baselines.kvs_haschor import kvs_serve_haschor
from repro.core.errors import CensusError, ChoreographyRuntimeError, OwnershipError, PlaceholderError
from repro.protocols.kvs import Request, RequestKind, ResponseKind, kvs_serve


CENSUS = ["alice", "bob", "carol", "dave"]


class TestAt:
    def test_unwrap_for_owner_only(self):
        value = At("alice", 3)
        assert value.unwrap_for("alice") == 3
        with pytest.raises(OwnershipError):
            value.unwrap_for("bob")

    def test_placeholder(self):
        value = At("alice", present=False)
        with pytest.raises(PlaceholderError):
            value.unwrap_for("alice")
        assert not value.is_present()

    def test_repr(self):
        assert "absent" in repr(At("a", present=False))
        assert "42" in repr(At("a", 42))


class TestHasChorCentralOp:
    def test_locally_and_comm(self):
        op = HasChorCentralOp(CENSUS)
        value = op.locally("alice", lambda _un: 10)
        moved = op.comm("alice", "bob", value)
        assert moved.owner == "bob"
        assert moved.peek() == 10
        assert op.stats.total_messages == 1

    def test_self_comm_sends_nothing(self):
        op = HasChorCentralOp(CENSUS)
        value = op.locally("alice", lambda _un: 10)
        op.comm("alice", "alice", value)
        assert op.stats.total_messages == 0

    def test_cond_broadcasts_to_everyone(self):
        op = HasChorCentralOp(CENSUS)
        value = op.locally("alice", lambda _un: True)
        result = op.cond(value, lambda flag: "yes" if flag else "no")
        assert result == "yes"
        assert op.stats.total_messages == len(CENSUS) - 1

    def test_census_checked(self):
        op = HasChorCentralOp(CENSUS)
        with pytest.raises(CensusError):
            op.locally("mallory", lambda _un: 1)


class TestHasChorProjected:
    def test_run_haschor_end_to_end(self):
        def chor(op):
            request = op.locally("alice", lambda _un: 2)
            at_bob = op.comm("alice", "bob", request)
            doubled = op.locally("bob", lambda un: un(at_bob) * 2)
            return op.cond(doubled, lambda value: value + 1)

        result = run_haschor(chor, CENSUS)
        assert result.returns == {loc: 5 for loc in CENSUS}
        # one comm + one broadcast of the scrutinee to the 3 other parties
        assert result.stats.total_messages == 1 + (len(CENSUS) - 1)

    def test_cond_reaches_uninvolved_parties(self):
        def chor(op):
            flag = op.locally("alice", lambda _un: False)
            return op.cond(flag, lambda value: value)

        result = run_haschor(chor, CENSUS)
        for bystander in ["carol", "dave"]:
            assert result.stats.messages_received_by(bystander) == 1

    def test_endpoint_failure_is_wrapped(self):
        def chor(op):
            return op.locally("alice", lambda _un: 1 / 0)

        with pytest.raises(ChoreographyRuntimeError):
            run_haschor(chor, CENSUS)

    def test_projected_cond_requires_at(self):
        op = HasChorProjectedOp(CENSUS, "alice", endpoint=None)
        with pytest.raises(OwnershipError):
            op.cond("plain", lambda value: value)


class TestBaselineKVSComparison:
    """The heart of the paper's efficiency claim: broadcast KoC costs the client
    extra messages; conclaves-&-MLVs does not."""

    SERVERS = ["s1", "s2", "s3"]
    CLUSTER = ["client", "s1", "s2", "s3"]
    REQUESTS = [Request.put("k", "v"), Request.get("k"), Request.stop()]

    def conclave_cost(self):
        return communication_cost(
            lambda op: kvs_serve(op, "client", "s1", self.SERVERS, self.REQUESTS),
            self.CLUSTER,
        )

    def baseline_cost(self):
        return haschor_communication_cost(
            lambda op: kvs_serve_haschor(op, "client", "s1", self.SERVERS, self.REQUESTS),
            self.CLUSTER,
        )

    def test_both_produce_the_same_responses(self):
        conclave = run_from_conclave = None
        from repro.runtime.runner import run_choreography

        conclave = run_choreography(
            lambda op: kvs_serve(op, "client", "s1", self.SERVERS, self.REQUESTS),
            self.CLUSTER,
        ).returns["client"]
        baseline = run_haschor(
            lambda op: kvs_serve_haschor(op, "client", "s1", self.SERVERS, self.REQUESTS),
            self.CLUSTER,
        ).returns["client"]
        assert [r.kind for r in conclave] == [r.kind for r in baseline]
        assert conclave[1].value == baseline[1].value == "v"

    def test_client_receives_fewer_messages_with_conclaves(self):
        conclave = self.conclave_cost()
        baseline = self.baseline_cost()
        assert conclave.per_location_received["client"] < baseline.per_location_received["client"]

    def test_total_messages_fewer_with_conclaves(self):
        assert self.conclave_cost().total_messages < self.baseline_cost().total_messages

    def test_client_message_count_is_exactly_request_plus_response(self):
        conclave = self.conclave_cost()
        # the client only ever sends a request and receives a response
        assert conclave.per_location_sent["client"] == len(self.REQUESTS)
        assert conclave.per_location_received["client"] == len(self.REQUESTS)

    def test_baseline_client_overhead_grows_with_conditionals(self):
        baseline = self.baseline_cost()
        # With broadcast KoC the client hears about every conditional: two per
        # request (handle + verify) instead of just the response.
        assert baseline.per_location_received["client"] >= 2 * len(self.REQUESTS)
