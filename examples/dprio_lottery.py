#!/usr/bin/env python
"""The DPrio fair lottery (paper §6 / Appendix C) with configurable group sizes.

Every client submits a secret value as additive shares to the servers; the
servers run a commit–reveal lottery to pick one client index fairly (fair as
long as at least one server is honest); the analyst reconstructs exactly the
chosen client's secret without learning whose it was.

Run with::

    python examples/dprio_lottery.py [n_clients] [n_servers]
"""

from __future__ import annotations

import collections
import sys

from repro import ChoreoEngine, run_choreography
from repro.protocols.dprio import lottery


def main() -> None:
    n_clients = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    n_servers = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    clients = [f"client{i}" for i in range(1, n_clients + 1)]
    servers = [f"server{i}" for i in range(1, n_servers + 1)]
    analyst = "analyst"
    census = [analyst] + servers + clients
    secrets = {client: 1000 + index for index, client in enumerate(clients)}

    def chor(op, seed=0):
        return lottery(op, servers, clients, analyst,
                       client_secrets=secrets, seed=seed)

    print(f"DPrio lottery: {n_clients} clients, {n_servers} servers, one analyst")
    result = run_choreography(chor, census, kwargs={"seed": 42})
    outcome = result.value_at(analyst)
    winner = [c for c, s in secrets.items() if s == outcome.value][0]
    print(f"  analyst reconstructed secret {outcome.value} "
          f"(submitted by {winner}, which the analyst does not learn)")
    print(f"  total messages: {result.stats.total_messages}")
    print(f"  client->analyst messages: "
          f"{sum(result.stats.messages.get((c, analyst), 0) for c in clients)} (always 0)")

    # Fairness: over many runs each client should win roughly equally often.
    # The centralized reference semantics is just another engine backend, so
    # the sweep submits all 40 seeds through one session and collects futures.
    print("\nwinner distribution over 40 seeds (centralized backend, no sockets):")
    tally = collections.Counter()
    with ChoreoEngine(census, backend="central") as engine:
        futures = [engine.submit(chor, kwargs={"seed": seed}) for seed in range(40)]
        for future in futures:
            tally[future.result().value_at(analyst).value] += 1
    for client in clients:
        count = tally[secrets[client]]
        print(f"  {client:9} {'#' * count} ({count})")


if __name__ == "__main__":
    main()
