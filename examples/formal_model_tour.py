#!/usr/bin/env python
"""A guided tour of the λC formal model (paper §4 / Appendix D).

Builds the small choreography from the paper's running discussion — one party
multicasts a sum value, the recipients branch on it together inside a
conclave — then shows its type, its centralized reduction, its endpoint
projections, a network execution, and the metatheory checkers (progress,
preservation, EPP agreement, deadlock freedom).

Run with::

    python examples/formal_model_tour.py
"""

from __future__ import annotations

from repro.formal import (
    App,
    Case,
    Com,
    Inl,
    Unit,
    UnitData,
    Var,
    check_all,
    evaluate,
    parties,
    project_network,
    run_network,
    trace,
    typecheck,
)


def build_choreography():
    """alice multicasts Inl () to {bob, carol}; they branch together; in the
    left branch bob forwards the payload to carol."""
    scrutinee = App(Com("alice", parties("bob", "carol")), Inl(Unit(parties("alice")), UnitData()))
    left = App(Com("bob", parties("carol")), Var("x"))
    right = Unit(parties("carol"))
    return Case(parties("bob", "carol"), scrutinee, "x", left, "x", right)


def main() -> None:
    census = parties("alice", "bob", "carol")
    program = build_choreography()

    print("choreography:")
    print(f"  {program}")
    print(f"type in census {sorted(census)}: {typecheck(census, program)}")

    print("\ncentralized reduction (λC semantics):")
    for index, state in enumerate(trace(program)):
        print(f"  step {index}: {state}")
    print(f"value: {evaluate(program)}")

    print("\nendpoint projection (λL programs):")
    network = project_network(program)
    for party, behaviour in network.items():
        print(f"  {party:6} | {behaviour}")

    print("\nnetwork execution (λN semantics):")
    run = run_network(network)
    for step in run.steps:
        if step.kind == "comm":
            print(f"  {step.actor} -> {', '.join(step.receivers)}")
        else:
            print(f"  {step.actor} steps locally")
    print(f"status: {run.status}; point-to-point messages: {run.message_count}")

    print("\nmetatheory checkers:")
    for name, report in check_all(census, program).items():
        print(f"  {name:18} {'ok' if report else 'FAILED'} — {report.details}")


if __name__ == "__main__":
    main()
