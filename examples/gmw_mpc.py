#!/usr/bin/env python
"""Secure multiparty computation with GMW (paper §6 / Appendix A).

An arbitrary number of parties jointly evaluate a boolean circuit over their
private inputs without revealing them.  The example computes two functions:

* *unanimous consent*: the AND of every party's private vote, and
* *private majority*: whether a majority of three designated parties voted yes,

using boolean secret sharing, XOR gates for free, and one RSA-based oblivious
transfer per ordered pair of parties for every AND gate.

Run with::

    python examples/gmw_mpc.py [n_parties]
"""

from __future__ import annotations

import sys

from repro import ChoreoEngine
from repro.protocols import circuits
from repro.protocols.gmw import gmw


def run_circuit(engine, parties, circuit, votes, label):
    inputs = {party: {"v": votes[party]} for party in parties}

    def chor(op, my_inputs=None):
        return gmw(op, parties, circuit, my_inputs, seed=11, rsa_bits=256)

    result = engine.run(
        chor, location_args={party: (inputs[party],) for party in parties}
    )
    outputs = set(result.returns.values())
    expected = circuits.evaluate_plain(circuit, inputs)
    assert outputs == {expected}, (outputs, expected)
    print(f"  {label:18} -> {expected}   "
          f"({result.stats.total_messages} messages, "
          f"{circuits.count_gates(circuit)['and']} AND gates)")
    return result


def main() -> None:
    n_parties = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    parties = [f"party{i}" for i in range(1, n_parties + 1)]
    votes = {party: index % 3 != 0 for index, party in enumerate(parties)}

    print(f"GMW with {n_parties} parties; private votes: "
          f"{ {p: v for p, v in votes.items()} }")

    # One warm engine evaluates every circuit: the parties' transport and
    # worker threads are shared by all three secure computations.
    with ChoreoEngine(parties, backend="local") as engine:
        unanimity = circuits.and_tree(parties, name="v")
        run_circuit(engine, parties, unanimity, votes, "unanimous consent")

        parity = circuits.xor_tree(parties, name="v")
        run_circuit(engine, parties, parity, votes, "vote parity")

        if n_parties >= 3:
            majority = circuits.majority3(
                circuits.InputWire(parties[0], "v"),
                circuits.InputWire(parties[1], "v"),
                circuits.InputWire(parties[2], "v"),
            )
            run_circuit(engine, parties, majority, votes, "majority of three")

    print("\nEvery party learned only the circuit outputs; all intermediate "
          "values stayed additively secret-shared.")


if __name__ == "__main__":
    main()
