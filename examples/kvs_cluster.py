#!/usr/bin/env python
"""The replicated KVS, grown into a sharded cluster (`repro.cluster`).

The paper's Fig. 2 / Appendix B choreographies give one replica group; this
example runs the service built from them: keys route over a deterministic
consistent-hash ring to one warm engine per shard, puts replicate inside
each shard's replica group, reads can demand a replica quorum (with read
repair), scans merge per-shard answers, mixed batches are served as
per-shard group commits, and the cluster grows online with ``add_shard``.

Run with::

    python examples/kvs_cluster.py [shards] [replication]
"""

from __future__ import annotations

import sys

from repro.cluster import ClusterClient, ClusterEngine
from repro.protocols.kvs import Request

N_SHARDS = 3
REPLICATION = 3


def main() -> None:
    n_shards = int(sys.argv[1]) if len(sys.argv) > 1 else N_SHARDS
    replication = int(sys.argv[2]) if len(sys.argv) > 2 else REPLICATION

    print(f"running a {n_shards}-shard cluster, {replication} replicas per shard")
    with ClusterEngine(n_shards, replication=replication) as cluster:
        kvs = ClusterClient(cluster)

        # Puts route by key; each lands on one shard's replica group.
        people = {"alice": "in wonderland", "bob": "the builder",
                  "carol": "of the bells", "dave": "null"}
        for key, value in people.items():
            kvs.put(key, value)
            print(f"  put {key:6} -> {cluster.shard_for(key)}")

        # Reads: primary read, then a quorum read (majority of replicas).
        print(f"\n  get alice            -> {kvs.get('alice')!r}")
        print(f"  get alice (quorum)   -> {kvs.get('alice', quorum=True)!r}")

        # Corrupt one backup replica behind the cluster's back; the quorum
        # outvotes it and read repair re-propagates the primary's store.
        shard = cluster.session(cluster.shard_for("alice"))
        if shard.backups:
            shard.state.facet_for(shard.backups[0])["alice"] = "#corrupted"
            print(f"  corrupted {shard.backups[0]}'s replica of 'alice'")
            print(f"  get alice (quorum)   -> {kvs.get('alice', quorum=True)!r}  "
                  "(outvoted + repaired)")
            repaired = shard.state.facet_for(shard.backups[0])["alice"]
            assert repaired == people["alice"], repaired

        # Scans fan out to every shard and merge the sorted answers.
        print(f"\n  scan ''              -> {len(kvs.scan())} items across "
              f"{len(cluster.shards)} shards")

        # Group commit: a mixed batch costs one replica-group round per
        # touched shard, not one per request.
        batch = [Request.get(k) for k in people] + [
            Request.put(f"bulk{i}", str(i)) for i in range(20)
        ]
        before = cluster.stats.total_messages
        responses = kvs.batch(batch)
        spent = cluster.stats.total_messages - before
        assert [r.value for r in responses[:4]] == [people[k] for k in people]
        print(f"  batch of {len(batch):2} requests -> {spent} messages "
              f"({spent / len(batch):.2f} per request, group commit)")

        # Grow the cluster online: only the keys the new shard takes over
        # move, re-entering through the ordinary replicated-put choreography.
        all_keys = [key for key, _value in kvs.scan()]
        keys_before = cluster.router.assignment(all_keys)
        new_shard = cluster.add_shard()
        moved = [key for key, shard_id in keys_before.items()
                 if cluster.shard_for(key) != shard_id]
        print(f"\n  add_shard() -> {new_shard}, migrated {len(moved)} of "
              f"{len(keys_before)} keys")
        assert all(kvs.get(key) is not None for key in keys_before)

        # Observability: per-shard stats roll up into one cluster view.
        print(f"\n  per-shard messages: "
              f"{ {s: st.total_messages for s, st in cluster.per_shard_stats().items()} }")
        print(f"  cluster rollup    : {cluster.stats.total_messages} messages, "
              f"{cluster.stats.total_bytes} payload bytes")


if __name__ == "__main__":
    main()
