#!/usr/bin/env python
"""The replicated key-value store of the paper's Fig. 2, run as a cluster.

A client talks to a primary server; an arbitrary number of additional servers
maintain replicas.  The protocol is census polymorphic — change ``N_SERVERS``
and nothing else changes.  Writes are deliberately unreliable (``FAULT_RATE``),
so the servers' second conclave occasionally detects divergent replicas and
resynchronises them; the client never sees any of that traffic.

Run with::

    python examples/kvs_cluster.py [number-of-servers]
"""

from __future__ import annotations

import sys

from repro import ChoreoEngine
from repro.analysis import communication_cost
from repro.baselines.kvs_haschor import kvs_serve_haschor
from repro.analysis.comm_cost import haschor_communication_cost
from repro.protocols.kvs import Request, kvs_serve

N_SERVERS = 4
FAULT_RATE = 0.3


def main() -> None:
    n_servers = int(sys.argv[1]) if len(sys.argv) > 1 else N_SERVERS
    servers = [f"server{i}" for i in range(1, n_servers + 1)]
    primary = servers[0]
    census = ["client"] + servers

    requests = [
        Request.put("alice", "in wonderland"),
        Request.get("alice"),
        Request.put("bob", "the builder"),
        Request.get("bob"),
        Request.get("nobody"),
        Request.stop(),
    ]

    def session(op):
        return kvs_serve(op, "client", primary, servers, requests,
                         fault_rate=FAULT_RATE, seed=2024)

    print(f"running a client + {n_servers}-server replicated KVS")
    # A long-lived cluster is exactly what ChoreoEngine is for: the transport
    # and per-location workers are built once and serve session after session.
    with ChoreoEngine(census, backend="local") as engine:
        result = engine.run(session)
        for request, response in zip(requests, result.returns["client"]):
            print(f"  {request.kind.value:5} {request.key or '':8} -> "
                  f"{response.kind.value}{': ' + response.value if response.value else ''}")

        print(f"\ntotal messages: {result.stats.total_messages}")
        print(f"client messages (sent+received): "
              f"{result.stats.messages_involving('client')} "
              f"(exactly 2 per request — the servers' branching never reaches it)")

        # Pipelined sessions: three more client workloads flow through the
        # same warm cluster concurrently, without interleaving.
        futures = [engine.submit(session) for _ in range(3)]
        repeat = [f.result() for f in futures]
        assert all(r.returns["client"] == result.returns["client"] for r in repeat)
        print(f"3 pipelined sessions -> {engine.stats.total_messages} messages "
              f"total on the warm engine")

    # Compare against the HasChor-style baseline, whose broadcast-based
    # Knowledge of Choice drags the client into every conditional.
    baseline = haschor_communication_cost(
        lambda op: kvs_serve_haschor(op, "client", primary, servers, requests),
        census,
    )
    ours = communication_cost(
        lambda op: kvs_serve(op, "client", primary, servers, requests), census
    )
    print("\nKnowledge-of-Choice strategy comparison (same workload):")
    print(f"  conclaves-&-MLVs : {ours.total_messages:4d} messages, "
          f"{ours.messages_involving('client'):3d} involving the client")
    print(f"  broadcast KoC    : {baseline.total_messages:4d} messages, "
          f"{baseline.messages_involving('client'):3d} involving the client")


if __name__ == "__main__":
    main()
