#!/usr/bin/env python
"""Quickstart: a bookstore-style client/server choreography.

This is the "hello world" of the library, modelled on the paper's Fig. 1
(a client sends a request to a key-value server, which answers).  One global
program describes both parties; endpoint projection derives each party's
behaviour; `run_choreography` executes every endpoint concurrently over an
in-process transport.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import run_choreography
from repro.analysis import check_choreography, communication_cost


def bookstore(op, title: str):
    """The buyer asks the seller for a price; the seller answers; both return it.

    ``op`` is the choreographic operator record (EPP-as-DI): ``locally`` runs a
    computation at one endpoint, ``comm`` moves a located value, ``broadcast``
    shares a value with the whole census so ordinary Python control flow can
    branch on it everywhere consistently.
    """
    catalogue = {"HoTT": 120, "TAPL": 80, "SICP": 40}

    # The buyer picks the title it wants (a value located at the buyer).
    wanted = op.locally("buyer", lambda _un: title)

    # Send it to the seller (now located at the seller).
    request = op.comm("buyer", "seller", wanted)

    # The seller looks up the price locally.
    price = op.locally("seller", lambda un: catalogue.get(un(request), -1))

    # The price is broadcast, so *both* parties can branch on it the same way —
    # this is Knowledge of Choice handled by a multiply-located value.
    amount = op.broadcast("seller", price)
    if amount < 0:
        return f"{title}: not in catalogue"
    if amount > 100:
        return f"{title}: too expensive ({amount})"
    return f"{title}: purchased for {amount}"


def main() -> None:
    census = ["buyer", "seller"]

    # 1. Check the choreography before running it (census/ownership hygiene).
    report = check_choreography(bookstore, census, args=("TAPL",))
    print(f"pre-run check: ok={report.ok}, messages={report.messages}")

    # 2. Predict its communication cost without any threads.
    cost = communication_cost(bookstore, census, "TAPL")
    print(f"predicted channel usage: {dict(cost.per_channel)}")

    # 3. Run it for real: one thread per endpoint, queues in between.
    for title in ["TAPL", "HoTT", "Dune"]:
        result = run_choreography(bookstore, census, args=(title,))
        print(f"{title!r:8} -> buyer sees {result.returns['buyer']!r}")
        assert result.returns["buyer"] == result.returns["seller"]

    # 4. The same choreography also runs over TCP sockets, unchanged.
    over_tcp = run_choreography(bookstore, census, args=("SICP",), transport="tcp")
    print(f"over TCP  -> {over_tcp.returns['buyer']!r}")


if __name__ == "__main__":
    main()
