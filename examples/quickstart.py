#!/usr/bin/env python
"""Quickstart: a bookstore-style client/server choreography.

This is the "hello world" of the library, modelled on the paper's Fig. 1
(a client sends a request to a key-value server, which answers).  One global
program describes both parties; endpoint projection derives each party's
behaviour; a persistent :class:`~repro.runtime.engine.ChoreoEngine` executes
choreography instances over a warm transport — the same session object works
for every backend (threads, TCP sockets, the simulated network, and the
centralized reference semantics), and independent instances pipeline through
it via ``engine.submit``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import ChoreoEngine, choreography, run_choreography


@choreography(census=["buyer", "seller"])
def bookstore(op, title: str):
    """The buyer asks the seller for a price; the seller answers; both return it.

    ``op`` is the choreographic operator record (EPP-as-DI): ``locally`` runs a
    computation at one endpoint, ``comm`` moves a located value, ``broadcast``
    shares a value with the whole census so ordinary Python control flow can
    branch on it everywhere consistently.
    """
    catalogue = {"HoTT": 120, "TAPL": 80, "SICP": 40}

    # The buyer picks the title it wants (a value located at the buyer).
    wanted = op.locally("buyer", lambda _un: title)

    # Send it to the seller (now located at the seller).
    request = op.comm("buyer", "seller", wanted)

    # The seller looks up the price locally.
    price = op.locally("seller", lambda un: catalogue.get(un(request), -1))

    # The price is broadcast, so *both* parties can branch on it the same way —
    # this is Knowledge of Choice handled by a multiply-located value.
    amount = op.broadcast("seller", price)
    if amount < 0:
        return f"{title}: not in catalogue"
    if amount > 100:
        return f"{title}: too expensive ({amount})"
    return f"{title}: purchased for {amount}"


def main() -> None:
    # The decorator made `bookstore` a first-class object carrying its census
    # contract, so checking and cost prediction need no extra plumbing.
    report = bookstore.check(args=("TAPL",))
    print(f"pre-run check: ok={report.ok}, messages={report.messages}")

    cost = bookstore.cost(None, "TAPL")
    print(f"predicted channel usage: {dict(cost.per_channel)}")

    # One persistent session serves a stream of instances: the transport and
    # the per-location workers are set up once, then stay warm.
    with ChoreoEngine(["buyer", "seller"], backend="local") as engine:
        for title in ["TAPL", "HoTT", "Dune"]:
            result = engine.run(bookstore, args=(title,))
            print(f"{title!r:8} -> buyer sees {result.returns['buyer']!r}  "
                  f"({result.stats.total_messages} messages this run)")
            assert result.returns["buyer"] == result.returns["seller"]

        # Independent instances pipeline through the same warm session.
        futures = [engine.submit(bookstore, args=(title,))
                   for title in ["SICP", "TAPL", "SICP"]]
        print("pipelined:", [f.result().returns["buyer"] for f in futures])
        print(f"session total: {engine.stats.total_messages} messages")

    # The same choreography runs unchanged on every registered backend —
    # sockets, the latency-modelling simulator, and the single-threaded
    # centralized reference semantics included.
    for backend in ["local", "tcp", "simulated", "central"]:
        with ChoreoEngine(["buyer", "seller"], backend=backend) as engine:
            result = engine.run(bookstore, args=("SICP",))
            print(f"backend {backend!r:11} -> {result.returns['buyer']!r}")

    # The paper's one-shot "main method" still exists as a thin wrapper over
    # a throwaway engine, for scripts that run a choreography exactly once.
    one_shot = run_choreography(bookstore, ["buyer", "seller"], args=("SICP",))
    print(f"one-shot  -> {one_shot.returns['buyer']!r}")

    # Where to next: engines compose into a sharded, replicated service —
    # consistent-hash routing, quorum reads, group-commit batches.  See
    # examples/kvs_cluster.py and docs/architecture.md.
    from repro.cluster import ClusterClient

    with ClusterClient(shards=2, replication=2) as kvs:
        kvs.put("HoTT", "120")
        print(f"cluster   -> HoTT is {kvs.get('HoTT', quorum=True)!r} "
              f"(shard {kvs.cluster.shard_for('HoTT')})")


if __name__ == "__main__":
    main()
