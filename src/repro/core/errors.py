"""Exception hierarchy for the choreography library.

Every error raised by :mod:`repro.core` derives from :class:`ChoreographyError`
so applications can catch choreography-level failures separately from
transport- or host-level failures.  The subclasses mirror the classes of
mistakes the paper's host-language type systems rule out statically:
census violations, ownership violations, and malformed projections.
"""

from __future__ import annotations


class ChoreographyError(Exception):
    """Base class for all errors raised by the choreography library."""


class CensusError(ChoreographyError):
    """An operator referred to a location outside the current census.

    The census is the set of parties eligible to participate in the current
    (sub-)choreography.  Instructions naming parties outside the census are
    erroneous (paper, definition of *census*).
    """


class OwnershipError(ChoreographyError):
    """A located value was used by a party that does not own it.

    Raised when unwrapping a :class:`~repro.core.located.Located` or
    :class:`~repro.core.located.Faceted` value at a non-owner, or when a
    communication operator names a sender that does not own its payload.
    """


class EmptyCensusError(CensusError):
    """A census or ownership set that must be non-empty was empty."""


class ProjectionError(ChoreographyError):
    """Endpoint projection produced an inconsistent or impossible state."""


class PlaceholderError(OwnershipError):
    """A placeholder (the projection of a value to a non-owner) was used as data.

    Corresponds to evaluating ``Empty`` / ``⊥`` in the paper's formalism.
    """


class MultiplyLocatedInvariantError(ChoreographyError):
    """The copies of a multiply-located value diverged across its owners.

    The conclaves-&-MLVs paradigm relies on the invariant that every owner of
    an MLV holds the same value (paper §4, "Relation to the implementations").
    The centralized runtime checks this invariant where it can.
    """


class TransportError(ChoreographyError):
    """A message could not be sent or received by the transport layer."""


class ChoreoTimeout(TransportError):
    """A receive timed out: ``waiter`` gave up waiting on ``peer``.

    The typed form of a transport receive timeout, carrying the structured
    fields a failure handler needs: who was waiting, which peer never
    delivered, and how long the waiter held on.  Timeouts are the raw signal
    behind failure detection — :class:`repro.cluster.ClusterEngine` follows
    the chain of ``waiter → peer`` blames across a failed instance to find
    the replica that actually went silent — so they must be distinguishable
    from other transport failures without parsing message text.
    """

    def __init__(self, waiter: str, peer: str, seconds: float):
        self.waiter = waiter
        self.peer = peer
        self.seconds = seconds
        super().__init__(
            f"{waiter!r} timed out after {seconds}s waiting for a message from {peer!r}"
        )


class ChoreographyRuntimeError(ChoreographyError):
    """A projected endpoint raised an exception while executing its role.

    Wraps the original exception and records which location failed so the
    runner can report a single coherent failure for the whole execution.
    ``failures`` holds *every* location's failure (location → exception) when
    several endpoints of one instance failed together — the usual shape of a
    crash, where the crashed location's error and its peers' induced
    :class:`ChoreoTimeout` s arrive as one bundle.
    """

    def __init__(
        self,
        location: str,
        original: BaseException,
        failures: "dict[str, BaseException] | None" = None,
    ):
        self.location = location
        self.original = original
        self.failures: "dict[str, BaseException]" = dict(
            failures if failures is not None else {location: original}
        )
        super().__init__(
            f"endpoint {location!r} failed: {type(original).__name__}: {original}"
        )
