"""Endpoint projection as dependency injection (EPP-as-DI).

A choreography is an ordinary Python callable whose first argument is a
:class:`~repro.core.ops.ChoreoOp`.  Projecting the choreography to an endpoint
means calling it with a :class:`ProjectedOp` — an operator implementation that
performs only the projection target's share of the work: its own local
computations, its own sends, its own receives, and placeholders for everything
else.  This is the pattern the paper introduces for host languages without
free monads (§5.2); Python's first-class functions make it direct.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, Optional, Protocol, TypeVar, runtime_checkable

from .errors import CensusError, OwnershipError, PlaceholderError, TransportError
from .located import ABSENT, Faceted, Located, Quire
from .locations import Census, Location, LocationsLike, as_census
from .ops import ChoreoOp, Choreography, Unwrapper

T = TypeVar("T")


@runtime_checkable
class Endpoint(Protocol):
    """The transport interface one endpoint needs: point-to-point send/recv.

    Implementations live in :mod:`repro.runtime`; anything with compatible
    ``send``/``recv`` methods (e.g. a test double) also works.
    """

    location: Location

    def send(self, receiver: Location, payload: Any) -> None:
        """Deliver ``payload`` to ``receiver`` (eventually, in FIFO order per pair)."""

    def recv(self, sender: Location) -> Any:
        """Block until the next payload from ``sender`` arrives and return it."""

    # Endpoints may additionally provide ``send_many(receivers, payload)`` —
    # a serialize-once broadcast of the same payload.  ``multicast`` uses it
    # when present and falls back to a loop of ``send`` otherwise, so minimal
    # endpoints (including test doubles) keep working unchanged.
    #
    # Coalescing endpoints also provide ``flush()``: sends may be deferred
    # into per-receiver write buffers that drain on flush, on a byte
    # high-watermark, and always before the endpoint blocks in ``recv`` (the
    # flush-before-block rule — see repro.runtime.transport).  Projected
    # operators never need to call it: a projected program only ever blocks
    # in ``recv``, which flushes first, and the engine/runner flush at
    # instance boundaries for trailing sends.


class InstanceScopedEndpoint:
    """Scope an endpoint to a single choreography *instance*.

    A persistent session (:class:`repro.runtime.engine.ChoreoEngine`) pipelines
    many independent choreography instances over one warm transport.  Each
    location runs the instances in submission order, but different locations
    may be executing *different* instances at the same moment, so messages of
    two instances can coexist on one directed channel.  This wrapper keeps them
    apart: every outgoing payload is tagged with the instance id, and receives
    demultiplex by tag.  When the wrapped endpoint offers the ``*_scoped``
    transport methods the tag rides in the transport's framing (recorded
    payload bytes stay exact); for minimal endpoints it falls back to an
    in-payload ``(instance, payload)`` tuple.

    Because each location executes instances in increasing id order and every
    channel is FIFO, tags on a channel are non-decreasing.  A received tag can
    therefore only be

    * equal to ours — deliver it;
    * greater — the sender has raced ahead to a later instance; stash the
      payload for the worker's future self (``stash[instance][sender]``); or
    * smaller — a leftover from an earlier instance that failed mid-protocol
      before consuming it; drop it.

    One worker thread drives each location, so neither the wrapped endpoint
    nor the stash needs additional locking here.
    """

    __slots__ = ("location", "_inner", "_instance", "_stash", "_scoped")

    def __init__(
        self,
        inner: Endpoint,
        instance: int,
        stash: Dict[int, Dict[Location, Deque[Any]]],
    ):
        self.location = inner.location
        self._inner = inner
        self._instance = instance
        self._stash = stash
        self._scoped = hasattr(inner, "send_scoped") and hasattr(inner, "recv_scoped")

    def send(self, receiver: Location, payload: Any) -> None:
        if self._scoped:
            self._inner.send_scoped(receiver, self._instance, payload)
        else:
            self._inner.send(receiver, (self._instance, payload))

    def send_many(self, receivers: Iterable[Location], payload: Any) -> None:
        if self._scoped:
            self._inner.send_many_scoped(receivers, self._instance, payload)
            return
        tagged = (self._instance, payload)
        send_many = getattr(self._inner, "send_many", None)
        if send_many is not None:
            send_many(receivers, tagged)
        else:
            for receiver in receivers:
                self._inner.send(receiver, tagged)

    def flush(self) -> None:
        """Drain the wrapped endpoint's deferred writes (no-op for minimal ones)."""
        flush = getattr(self._inner, "flush", None)
        if flush is not None:
            flush()

    def _recv_tagged(self, sender: Location) -> Any:
        if self._scoped:
            return self._inner.recv_scoped(sender)
        return self._untag(sender, self._inner.recv(sender))

    def recv(self, sender: Location) -> Any:
        stashed = self._stash.get(self._instance, {}).get(sender)
        if stashed:
            return stashed.popleft()
        while True:
            instance, payload = self._recv_tagged(sender)
            if instance == self._instance:
                return payload
            if instance > self._instance:
                per_sender = self._stash.setdefault(instance, {})
                per_sender.setdefault(sender, deque()).append(payload)
            # Tags below the current instance are leftovers of an earlier,
            # already-finished (failed) run at this location: drop them.

    def recv_many(self, senders: Iterable[Location]) -> Dict[Location, Any]:
        return {sender: self.recv(sender) for sender in senders}

    def _untag(self, sender: Location, message: Any) -> Any:
        if (
            not isinstance(message, tuple)
            or len(message) != 2
            or not isinstance(message[0], int)
        ):
            raise TransportError(
                f"{self.location!r} received an untagged message from {sender!r} on an "
                "instance-scoped channel; do not mix raw endpoint sends with engine runs"
            )
        return message


def _make_unwrapper(viewer: Location, required_owners: Optional[Census] = None) -> Unwrapper:
    """Build the ``un`` function handed to local/replicated computations.

    ``required_owners`` is set for ``congruently``: every replica location must
    own any located value the computation reads, otherwise the replicas could
    not all perform the same computation.
    """

    def unwrap(value: Any, owner: Optional[Location] = None) -> Any:
        if isinstance(value, Located):
            if required_owners is not None and value.owners is not None:
                missing = [loc for loc in required_owners if loc not in value.owners]
                if missing:
                    raise OwnershipError(
                        "congruent computation reads a value not owned by every "
                        f"replica; missing owners: {missing!r}"
                    )
            return value.unwrap_for(viewer)
        if isinstance(value, Faceted):
            return value.facet_for(viewer, owner)
        raise TypeError(
            f"unwrapper expects a Located or Faceted value, got {type(value).__name__}"
        )

    return unwrap


class ProjectedOp(ChoreoOp):
    """The choreographic operators as seen by a single endpoint.

    Parameters
    ----------
    census:
        The census of the (sub-)choreography being projected.
    target:
        The endpoint this projection is for.  It need not be a member of the
        census (a conclave projects to non-members as a skip), but operators
        will then only ever produce placeholders.
    endpoint:
        The transport endpoint used for this target's sends and receives.
    """

    def __init__(self, census: LocationsLike, target: Location, endpoint: Endpoint):
        super().__init__(census)
        self._target = target
        self._endpoint = endpoint

    # ------------------------------------------------------------------ basics --

    @property
    def location(self) -> Location:
        """The endpoint this operator is projected to."""
        return self._target

    @property
    def endpoint(self) -> Endpoint:
        """The transport endpoint backing this projection."""
        return self._endpoint

    def _is_target(self, location: Location) -> bool:
        return location == self._target

    # -------------------------------------------------------------- primitives --

    def locally(
        self, location: Location, computation: Callable[[Unwrapper], T]
    ) -> Located[T]:
        self._require_member(location)
        if not self._is_target(location):
            return Located.absent([location])
        value = computation(_make_unwrapper(location))
        return Located([location], value)

    def multicast(
        self, sender: Location, recipients: LocationsLike, value: Located[T]
    ) -> Located[T]:
        self._require_member(sender)
        receivers = self._require_subset(recipients)
        if not isinstance(value, Located):
            raise OwnershipError(
                f"multicast payload must be a Located value, got {type(value).__name__}; "
                "wrap constants with op.locally or op.congruently first"
            )
        if self._is_target(sender):
            payload = value.unwrap_for(sender)
            others = [receiver for receiver in receivers if receiver != sender]
            send_many = getattr(self._endpoint, "send_many", None)
            if send_many is not None and len(others) > 1:
                # Serialize-once broadcast: one serialization, N deliveries.
                send_many(others, payload)
            else:
                for receiver in others:
                    self._endpoint.send(receiver, payload)
            if sender in receivers:
                return Located(receivers, payload)
            return Located.absent(receivers)
        if self._target in receivers:
            payload = self._endpoint.recv(sender)
            return Located(receivers, payload)
        return Located.absent(receivers)

    def naked(self, value: Located[T]) -> T:
        if not isinstance(value, Located):
            raise OwnershipError(
                f"naked expects a Located value, got {type(value).__name__}"
            )
        if value.owners is not None:
            missing = [loc for loc in self._census if loc not in value.owners]
            if missing:
                raise OwnershipError(
                    "naked requires the whole census to own the value; "
                    f"census members {missing!r} are not owners of {value!r}"
                )
        if self._target not in self._census:
            raise CensusError(
                f"endpoint {self._target!r} is outside the census "
                f"{list(self._census)!r} and cannot unwrap census-wide values"
            )
        return value.unwrap_for(self._target)

    def congruently(
        self, locations: LocationsLike, computation: Callable[[Unwrapper], T]
    ) -> Located[T]:
        replicas = self._require_subset(locations)
        if self._target not in replicas:
            return Located.absent(replicas)
        value = computation(_make_unwrapper(self._target, required_owners=replicas))
        return Located(replicas, value)

    def conclave(
        self, sub_census: LocationsLike, choreography: Choreography, *args: Any, **kwargs: Any
    ) -> Located[Any]:
        sub = self._require_subset(sub_census)
        if self._target not in sub:
            # EPP of a conclave to a non-member is a skip.
            return Located.absent(sub)
        child = ProjectedOp(sub, self._target, self._endpoint)
        result = choreography(child, *args, **kwargs)
        return Located(sub, result)


def project(
    choreography: Choreography,
    census: LocationsLike,
    target: Location,
    endpoint: Endpoint,
) -> Callable[..., Any]:
    """Return the endpoint program for ``target``: a plain callable.

    Calling the returned function with the choreography's arguments executes
    ``target``'s role.  This is the run-time analogue of the paper's EPP
    ``⟦·⟧_p``.
    """
    full_census = as_census(census)

    def endpoint_program(*args: Any, **kwargs: Any) -> Any:
        op = ProjectedOp(full_census, target, endpoint)
        return choreography(op, *args, **kwargs)

    endpoint_program.__name__ = f"{getattr(choreography, '__name__', 'choreography')}@{target}"
    return endpoint_program
