"""Located values (MLVs), faceted values, and quires.

These are the three data abstractions the paper builds its Knowledge-of-Choice
and census-polymorphism story on:

* :class:`Located` — a *multiply-located value* (MLV): one value annotated with
  a non-empty set of owners.  Projection to an owner yields the value;
  projection to anyone else yields a placeholder.  All owners hold the *same*
  value (the MLV invariant).
* :class:`Faceted` — a value annotated with a set of owners where each owner
  holds its *own*, possibly different, value; non-owners hold a placeholder.
  Optionally a set of *common* owners know every facet (the return type of
  ``scatter`` has the sender as a common owner).
* :class:`Quire` — a plain, non-choreographic vector of values indexed by
  location.  Endpoint projection has no effect on a quire; it is the shape of
  ``gather``'s payload.

Construction of :class:`Located` and :class:`Faceted` is reserved to the
library (the ``ChoreoOp`` implementations); user code only ever *unwraps* them
through the unwrappers passed to ``locally`` / ``parallel`` / ``congruently``
or through ``naked`` / ``broadcast``.  This mirrors how MultiChor hides the
``Wrap``/``Empty`` constructors inside its core module.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generic, Iterator, Mapping, Optional, Tuple, TypeVar

from .errors import OwnershipError, PlaceholderError
from .locations import Census, Location, LocationsLike, as_census

T = TypeVar("T")


class _Absent:
    """The placeholder a non-owner holds in place of a located value.

    Corresponds to ``Empty`` in HasChor/MultiChor and ``⊥`` in the paper's
    formal model: not an error, simply "somebody else's problem".
    """

    _instance: Optional["_Absent"] = None

    def __new__(cls) -> "_Absent":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ABSENT"

    def __bool__(self) -> bool:
        raise PlaceholderError(
            "a placeholder (the projection of a located value to a non-owner) "
            "was used as data; only owners may inspect a located value"
        )


#: Singleton placeholder for "this endpoint does not own the value".
ABSENT = _Absent()


class Located(Generic[T]):
    """A multiply-located value: one value owned by one or more locations.

    At an owning endpoint the instance carries the actual value; at any other
    endpoint it carries :data:`ABSENT`.  The ``owners`` annotation may be
    ``None`` at endpoints that received the wrapper second-hand (e.g. the
    result of a conclave they did not participate in); such endpoints can pass
    the wrapper around but can never unwrap it.
    """

    __slots__ = ("_owners", "_value", "_present")

    def __init__(
        self,
        owners: Optional[LocationsLike],
        value: Any = ABSENT,
        *,
        present: Optional[bool] = None,
    ):
        self._owners: Optional[Census] = None if owners is None else as_census(owners)
        if self._owners is not None:
            self._owners.require_nonempty()
        self._value = value
        if present is None:
            present = value is not ABSENT
        self._present = present

    # -- introspection -------------------------------------------------------------

    @property
    def owners(self) -> Optional[Census]:
        """The ownership set, or ``None`` when unknown at this endpoint."""
        return self._owners

    def is_present(self) -> bool:
        """True when this endpoint holds the actual value (i.e. it is an owner)."""
        return self._present

    def owned_by(self, location: Location) -> bool:
        """True when ``location`` is a known owner of this value."""
        return self._owners is not None and location in self._owners

    def __repr__(self) -> str:
        owner_list = list(self._owners) if self._owners is not None else "?"
        if self._present:
            return f"Located(owners={owner_list}, value={self._value!r})"
        return f"Located(owners={owner_list}, <absent>)"

    # -- controlled access ---------------------------------------------------------

    def unwrap_for(self, location: Location) -> T:
        """Return the value on behalf of ``location``, which must be an owner.

        This is the library-internal unwrapping primitive; user code receives
        it pre-applied as the ``un`` argument of ``locally`` and friends.
        """
        if self._owners is not None and location not in self._owners:
            raise OwnershipError(
                f"location {location!r} is not an owner of {self!r}"
            )
        if not self._present:
            raise PlaceholderError(
                f"endpoint {location!r} holds only a placeholder for {self!r}; "
                "it cannot unwrap a value it never received"
            )
        return self._value

    def peek(self) -> T:
        """Return the value without an ownership check.

        Reserved for the centralized (reference) semantics and for analyses;
        projected endpoints never call this.
        """
        if not self._present:
            raise PlaceholderError(f"cannot peek an absent located value {self!r}")
        return self._value

    # -- structural helpers --------------------------------------------------------

    def map(self, fn: Callable[[T], Any]) -> "Located[Any]":
        """Apply a pure function to the value, preserving ownership.

        The function must be pure: it runs congruently at every owner, so an
        impure function would break the MLV invariant.  (In MultiChor this is
        ``congruently`` specialised to one argument.)
        """
        if self._present:
            return Located(self._owners, fn(self._value))
        return Located(self._owners, ABSENT, present=False)

    @staticmethod
    def absent(owners: Optional[LocationsLike] = None) -> "Located[Any]":
        """A placeholder wrapper (what EPP hands to non-owners)."""
        return Located(owners, ABSENT, present=False)


class Faceted(Generic[T]):
    """A per-party value: each owner holds its own facet.

    ``owners`` is the list of parties that each hold a facet.  ``common`` is
    the (possibly empty) list of parties that know *all* facets — e.g. the
    sender of a ``scatter``.  At a projected endpoint only the facets that
    endpoint is entitled to see are populated.
    """

    __slots__ = ("_owners", "_common", "_facets")

    def __init__(
        self,
        owners: LocationsLike,
        facets: Mapping[Location, Any],
        common: LocationsLike = (),
    ):
        self._owners = as_census(owners).require_nonempty()
        self._common = as_census(common)
        unknown = [loc for loc in facets if loc not in self._owners]
        if unknown:
            raise OwnershipError(
                f"facets supplied for non-owners {unknown!r} of Faceted over "
                f"{list(self._owners)!r}"
            )
        self._facets: Dict[Location, Any] = dict(facets)

    @property
    def owners(self) -> Census:
        """The parties that each hold a facet."""
        return self._owners

    @property
    def common(self) -> Census:
        """The parties that know every facet (may be empty)."""
        return self._common

    def has_facet(self, location: Location) -> bool:
        """True when this endpoint's copy actually holds ``location``'s facet."""
        return location in self._facets

    def facet_for(self, viewer: Location, owner: Optional[Location] = None) -> T:
        """Return the facet visible to ``viewer``.

        A plain owner sees only its own facet; a *common* owner may name any
        ``owner`` whose facet it wants.  Mirrors MultiChor's ``viewFacet``/
        ``localize``.
        """
        owner = viewer if owner is None else owner
        if owner not in self._owners:
            raise OwnershipError(
                f"{owner!r} is not an owner of Faceted over {list(self._owners)!r}"
            )
        if viewer != owner and viewer not in self._common:
            raise OwnershipError(
                f"{viewer!r} may not view {owner!r}'s facet; only common owners "
                f"{list(self._common)!r} see every facet"
            )
        if owner not in self._facets:
            raise PlaceholderError(
                f"endpoint holds no facet for {owner!r}; it only has "
                f"{sorted(self._facets)!r}"
            )
        return self._facets[owner]

    def localize(self, owner: Location) -> Located[T]:
        """View one party's facet as a singly-located value (MultiChor ``localize``)."""
        self._owners.require_member(owner)
        if owner in self._facets:
            return Located([owner], self._facets[owner])
        return Located.absent([owner])

    def to_quire(self) -> "Quire[T]":
        """Collapse to a quire.  Only meaningful where every facet is visible
        (the centralized semantics, or a common owner)."""
        missing = [loc for loc in self._owners if loc not in self._facets]
        if missing:
            raise PlaceholderError(
                f"cannot build a quire: facets for {missing!r} are not visible here"
            )
        return Quire(self._owners, {loc: self._facets[loc] for loc in self._owners})

    def visible_facets(self) -> Dict[Location, Any]:
        """The facets populated at this endpoint (a copy)."""
        return dict(self._facets)

    def __repr__(self) -> str:
        return (
            f"Faceted(owners={list(self._owners)!r}, common={list(self._common)!r}, "
            f"facets={self._facets!r})"
        )


class Quire(Generic[T]):
    """A vector of same-typed values indexed by location.

    A quire is *not* a choreographic data type: endpoint projection has no
    effect on it.  It is how ``gather`` hands a recipient the full collection
    of values, one per sender, and how ``scatter`` accepts the values to
    distribute.
    """

    __slots__ = ("_census", "_values")

    def __init__(self, census: LocationsLike, values: Mapping[Location, T]):
        self._census = as_census(census).require_nonempty()
        missing = [loc for loc in self._census if loc not in values]
        if missing:
            raise OwnershipError(f"quire over {list(self._census)!r} missing values for {missing!r}")
        extra = [loc for loc in values if loc not in self._census]
        if extra:
            raise OwnershipError(f"quire over {list(self._census)!r} has extra values for {extra!r}")
        self._values: Dict[Location, T] = {loc: values[loc] for loc in self._census}

    @classmethod
    def from_function(cls, census: LocationsLike, fn: Callable[[Location], T]) -> "Quire[T]":
        """Build a quire by applying ``fn`` to each location of ``census``."""
        members = as_census(census)
        return cls(members, {loc: fn(loc) for loc in members})

    @property
    def census(self) -> Census:
        """The locations indexing this quire, in order."""
        return self._census

    def __getitem__(self, location: Location) -> T:
        self._census.require_member(location)
        return self._values[location]

    def __iter__(self) -> Iterator[Tuple[Location, T]]:
        return iter(self._values.items())

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Quire):
            return self._census == other._census and self._values == other._values
        return NotImplemented

    def values(self) -> Tuple[T, ...]:
        """The values in census order."""
        return tuple(self._values[loc] for loc in self._census)

    def to_dict(self) -> Dict[Location, T]:
        """A plain dict copy of the quire."""
        return dict(self._values)

    def map(self, fn: Callable[[T], Any]) -> "Quire[Any]":
        """Apply a function to every entry, preserving the index."""
        return Quire(self._census, {loc: fn(value) for loc, value in self._values.items()})

    def modify(self, location: Location, fn: Callable[[T], T]) -> "Quire[T]":
        """Return a copy with ``location``'s entry replaced by ``fn(old)``
        (MultiChor's ``qModify``)."""
        self._census.require_member(location)
        updated = dict(self._values)
        updated[location] = fn(updated[location])
        return Quire(self._census, updated)

    def __repr__(self) -> str:
        return f"Quire({self._values!r})"
