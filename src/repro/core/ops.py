"""The choreographic operator surface (``ChoreoOp``).

This is the *dependency-injection record* of the paper's EPP-as-DI pattern
(§5.2): a choreography is an ordinary Python callable whose first argument is
a :class:`ChoreoOp`; endpoint projection consists of calling the choreography
with an operator implementation specialised to one endpoint
(:class:`repro.core.epp.ProjectedOp`) or with the centralized reference
implementation (:class:`repro.runtime.central.CentralOp`).

Only a small set of operators is primitive — ``locally``, ``multicast``,
``naked``, ``congruently``, and ``conclave`` — mirroring MultiChor's four
core constructors.  Everything else (point-to-point ``comm``, ``broadcast``,
``parallel``, ``fanout``, ``fanin``, ``scatter``, ``gather``) is *derived*
here from the primitives, exactly as the paper argues they can be (§3.4,
§5.4): census polymorphism needs no new primitives, only a loop over the
census.

Choreographies written against this surface are oblivious to *how* they are
executed: one-shot (``run_choreography``), under the centralized reference
semantics, or as one of many pipelined instances inside a persistent
:class:`~repro.runtime.engine.ChoreoEngine` session, where the endpoint
behind the projected operators is scoped to a single instance
(:class:`~repro.core.epp.InstanceScopedEndpoint`).  Nothing here may assume
exclusive ownership of a transport.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, Optional, TypeVar

from .errors import CensusError, OwnershipError, PlaceholderError
from .located import ABSENT, Faceted, Located, Quire
from .locations import Census, Location, LocationsLike, as_census, single

T = TypeVar("T")
R = TypeVar("R")

#: A choreography is any callable taking a ChoreoOp as its first argument.
Choreography = Callable[..., Any]

#: The unwrapper handed to ``locally`` / ``parallel`` / ``congruently`` bodies.
#: ``un(located)`` yields the value; ``un(faceted)`` yields the caller's facet;
#: ``un(faceted, owner)`` yields ``owner``'s facet when the caller may see it.
Unwrapper = Callable[..., Any]


class ChoreoOp(abc.ABC):
    """Abstract choreographic operators, parameterised by a census.

    Concrete subclasses provide the five primitives; this base class supplies
    the derived, census-polymorphic layer on top of them.
    """

    def __init__(self, census: LocationsLike):
        self._census = as_census(census).require_nonempty()

    # ------------------------------------------------------------------ census --

    @property
    def census(self) -> Census:
        """The parties eligible to participate in the current (sub-)choreography."""
        return self._census

    @property
    def location(self) -> Optional[Location]:
        """The endpoint this operator is projected to, or ``None`` for the
        centralized semantics."""
        return None

    def _require_member(self, location: Location) -> Location:
        return self._census.require_member(location)

    def _require_subset(self, locations: LocationsLike) -> Census:
        return self._census.require_subset(locations).require_nonempty()

    # -------------------------------------------------------------- primitives --

    @abc.abstractmethod
    def locally(
        self, location: Location, computation: Callable[[Unwrapper], T]
    ) -> Located[T]:
        """Run ``computation`` at ``location`` only.

        The computation receives an unwrapper valid for ``location`` and may
        be impure.  Every other endpoint skips it and receives a placeholder.
        """

    @abc.abstractmethod
    def multicast(
        self, sender: Location, recipients: LocationsLike, value: Located[T]
    ) -> Located[T]:
        """Send ``value`` (owned by ``sender``) to every recipient.

        Returns a multiply-located value owned by the recipient set.  If the
        sender is among the recipients it keeps its copy without a message.
        The recipient list must be a subset of the census.
        """

    @abc.abstractmethod
    def naked(self, value: Located[T]) -> T:
        """Unwrap a value owned by the *entire* census.

        Because every census member holds the value, the unwrapped result may
        drive plain host-language control flow: this is how conclaves-&-MLVs
        answers Knowledge of Choice without extra messages.
        """

    @abc.abstractmethod
    def congruently(
        self, locations: LocationsLike, computation: Callable[[Unwrapper], T]
    ) -> Located[T]:
        """Run a *pure* computation replicated at every location in ``locations``.

        All replicas must compute the same result (the MLV invariant); the
        library cannot enforce purity in Python, so the computation must not
        read local state or randomness.
        """

    @abc.abstractmethod
    def conclave(
        self, sub_census: LocationsLike, choreography: Choreography, *args: Any, **kwargs: Any
    ) -> Located[Any]:
        """Run ``choreography`` with the census narrowed to ``sub_census``.

        Endpoints outside the sub-census skip the body entirely (no messages,
        no branching) and receive a placeholder; endpoints inside receive the
        body's result as a value multiply-located at the sub-census.
        """

    # ------------------------------------------------------- derived operators --

    def comm(self, sender: Location, receiver: Location, value: Located[T]) -> Located[T]:
        """Point-to-point communication: the classic ``~>`` operator."""
        return self.multicast(sender, single(receiver), value)

    def broadcast(self, sender: Location, value: Located[T]) -> T:
        """Send ``value`` to the whole census and unwrap it everywhere.

        Inside a conclave the census is the conclave's census, so a broadcast
        only reaches the parties that actually need Knowledge of Choice.
        Under projection the underlying multicast is a serialize-once
        ``send_many``: one serialization shared by every receiver.
        """
        return self.naked(self.multicast(sender, self._census, value))

    def locally_(self, location: Location, computation: Callable[[], T]) -> Located[T]:
        """``locally`` for computations that need no located inputs."""
        return self.locally(location, lambda _un: computation())

    def flatten(self, value: Located[Any]) -> Located[Any]:
        """Un-nest ``Located(outer, Located(inner, x))`` to ``Located(inner, x)``.

        Needed when a conclave returns a located value: the conclave wraps it
        once more (MultiChor's ``flatten``).
        """
        if value.is_present():
            inner = value.peek()
            if isinstance(inner, Located):
                return inner
            raise OwnershipError(
                f"flatten expects a nested located value, found {type(inner).__name__}"
            )
        return Located.absent(None)

    def restrict(self, value: Located[T], owners: LocationsLike) -> Located[T]:
        """Shrink the ownership set of a located value (MultiChor ``othersForget``).

        Endpoints outside ``owners`` forget the value: their copy becomes a
        placeholder.  Used e.g. by secret sharing, where the dealer must not be
        considered an owner of the shares it dealt.
        """
        kept = self._require_subset(owners)
        endpoint = self.location
        if endpoint is None:
            # Centralized semantics: keep the value, adjust ownership.
            if value.is_present():
                return Located(kept, value.peek())
            return Located.absent(kept)
        if endpoint in kept and value.is_present():
            return Located(kept, value.peek())
        return Located.absent(kept)

    def forget_common(self, value: Faceted[T]) -> Faceted[T]:
        """Drop the *common* owners of a faceted value (MultiChor ``othersForget``).

        After forgetting, each owner may only view its own facet; the parties
        that used to see every facet (e.g. the dealer of a ``scatter``) lose
        that right.  Used by secret sharing, where the dealer of the shares
        must not be treated as knowing the shares it dealt.
        """
        if not isinstance(value, Faceted):
            raise OwnershipError(
                f"forget_common expects a Faceted value, got {type(value).__name__}"
            )
        endpoint = self.location
        facets = value.visible_facets()
        if endpoint is not None:
            if endpoint in value.owners and endpoint in facets:
                facets = {endpoint: facets[endpoint]}
            else:
                facets = {}
        return Faceted(value.owners, facets, ())

    def conclave_to(
        self,
        sub_census: LocationsLike,
        result_owners: LocationsLike,
        choreography: Choreography,
        *args: Any,
        **kwargs: Any,
    ) -> Located[Any]:
        """Run a conclave whose body returns a located value, and flatten it.

        ``result_owners`` documents (and checks) who owns the flattened result;
        endpoints outside the conclave receive a placeholder annotated with
        that ownership set so later operators can still reason about it.
        """
        owners = self._require_subset(result_owners)
        wrapped = self.conclave(sub_census, choreography, *args, **kwargs)
        flattened = self.flatten(wrapped)
        if flattened.is_present():
            return Located(owners, flattened.peek())
        return Located.absent(owners)

    # ----------------------------------------------- census-polymorphic layer --

    def parallel(
        self,
        locations: LocationsLike,
        computation: Callable[[Location, Unwrapper], T],
    ) -> Faceted[T]:
        """Run ``computation`` at every location of ``locations`` in parallel.

        Unlike ``congruently`` the computation receives its own location and
        may be impure, so results may diverge: the result is faceted.
        """
        members = self._require_subset(locations)
        facets: Dict[Location, Any] = {}
        for member in members:
            result = self.locally(member, lambda un, _m=member: computation(_m, un))
            if result.is_present():
                facets[member] = result.peek()
        return Faceted(members, facets)

    def fanout(
        self,
        locations: LocationsLike,
        body: Callable[[Location], Located[T]],
        common: LocationsLike = (),
    ) -> Faceted[T]:
        """Loop over ``locations``; each iteration produces a value located at
        the loop variable (plus any ``common`` owners); aggregate as a Faceted.

        The whole census participates in every iteration (the body may
        communicate); conclave inside the body if that is not desired.
        """
        members = self._require_subset(locations)
        common_census = as_census(common)
        facets: Dict[Location, Any] = {}
        for member in members:
            produced = body(member)
            if not isinstance(produced, Located):
                raise OwnershipError(
                    f"fanout body for {member!r} must return a Located value, got "
                    f"{type(produced).__name__}"
                )
            if produced.is_present():
                facets[member] = produced.peek()
        return Faceted(members, facets, common_census)

    def fanin(
        self,
        locations: LocationsLike,
        recipients: LocationsLike,
        body: Callable[[Location], Located[T]],
    ) -> Located[Quire[T]]:
        """Loop over ``locations``; each iteration produces a value located at
        the (fixed) ``recipients``; aggregate the results into a quire owned by
        the recipients."""
        members = self._require_subset(locations)
        receivers = self._require_subset(recipients)
        collected: Dict[Location, Any] = {}
        complete = True
        for member in members:
            produced = body(member)
            if not isinstance(produced, Located):
                raise OwnershipError(
                    f"fanin body for {member!r} must return a Located value, got "
                    f"{type(produced).__name__}"
                )
            if produced.is_present():
                collected[member] = produced.peek()
            else:
                complete = False
        if complete:
            return Located(receivers, Quire(members, collected))
        return Located.absent(receivers)

    def scatter(
        self,
        sender: Location,
        recipients: LocationsLike,
        values: Located[Quire[T]],
    ) -> Faceted[T]:
        """Distribute one value per recipient from a quire owned by ``sender``.

        The sender keeps knowledge of every value it sent, so it is recorded
        as a *common* owner of the resulting faceted value.
        """
        self._require_member(sender)
        receivers = self._require_subset(recipients)

        def send_one(recipient: Location) -> Located[T]:
            payload = values.map(lambda quire, _r=recipient: quire[_r])
            destinations = [recipient] if recipient == sender else [recipient, sender]
            return self.multicast(sender, destinations, payload)

        return self.fanout(receivers, send_one, common=[sender])

    def gather(
        self,
        senders: LocationsLike,
        recipients: LocationsLike,
        values: Faceted[T],
    ) -> Located[Quire[T]]:
        """Collect every sender's facet at the recipients, as a quire.

        With multiple recipients each sender's multicast rides the
        serialize-once ``send_many`` path: its facet is serialized once and
        delivered to every recipient.
        """
        sources = self._require_subset(senders)
        receivers = self._require_subset(recipients)

        def send_one(sender: Location) -> Located[T]:
            return self.multicast(sender, receivers, values.localize(sender))

        return self.fanin(sources, receivers, send_one)
