"""Core choreographic programming abstractions.

The public surface mirrors the paper's MultiChor/ChoRus/ChoreoTS libraries:
locations and censuses, multiply-located values, faceted values and quires,
the ``ChoreoOp`` operator record, and endpoint projection as dependency
injection.
"""

from .errors import (
    CensusError,
    ChoreographyError,
    ChoreographyRuntimeError,
    ChoreoTimeout,
    EmptyCensusError,
    MultiplyLocatedInvariantError,
    OwnershipError,
    PlaceholderError,
    ProjectionError,
    TransportError,
)
from .epp import Endpoint, ProjectedOp, project
from .located import ABSENT, Faceted, Located, Quire
from .locations import Census, Location, as_census, single
from .ops import ChoreoOp, Choreography, Unwrapper

__all__ = [
    "ABSENT",
    "Census",
    "CensusError",
    "ChoreoOp",
    "Choreography",
    "ChoreographyError",
    "ChoreographyRuntimeError",
    "ChoreoTimeout",
    "EmptyCensusError",
    "Endpoint",
    "Faceted",
    "Located",
    "Location",
    "MultiplyLocatedInvariantError",
    "OwnershipError",
    "PlaceholderError",
    "ProjectedOp",
    "ProjectionError",
    "Quire",
    "TransportError",
    "Unwrapper",
    "as_census",
    "project",
    "single",
]
