"""Locations, censuses, and membership/subset relations.

In the paper's Haskell implementation (MultiChor) locations are type-level
strings and membership is witnessed by term-level proof objects; in ChoRus
membership is a trait; in ChoreoTS it is union-type subtyping.  Python has no
comparable static machinery, so this module provides the *runtime* half of
the same design: locations are plain strings, a :class:`Census` is an ordered,
duplicate-free collection of locations, and the membership/subset checks that
the host type systems perform statically are explicit functions that raise
:class:`~repro.core.errors.CensusError` when violated.

The ordering of a census is significant: census-polymorphic loops (fan-out,
fan-in, gather, …) iterate the census in order at *every* endpoint, which is
what keeps the projected send/receive sequences aligned.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple, Union

from .errors import CensusError, EmptyCensusError

#: A location (party / role / endpoint) is identified by a string,
#: mirroring MultiChor's type-level ``Symbol`` locations.
Location = str

LocationsLike = Union["Census", Sequence[Location], Iterable[Location]]


def _as_location_tuple(locations: LocationsLike) -> Tuple[Location, ...]:
    """Normalize any iterable of locations to a tuple, validating entries."""
    if isinstance(locations, Census):
        return locations.members
    if isinstance(locations, str):
        # A bare string is almost always a mistake ("abc" would iterate chars).
        raise CensusError(
            f"expected a collection of locations, got the single string {locations!r}; "
            "wrap it in a list, e.g. ['" + locations + "']"
        )
    items = tuple(locations)
    for item in items:
        if not isinstance(item, str) or not item:
            raise CensusError(f"locations must be non-empty strings, got {item!r}")
    return items


class Census:
    """An ordered, duplicate-free set of locations.

    A census is the list of parties eligible to participate in a
    choreographic expression.  Conclaves narrow the census to a subset;
    census-polymorphic operators loop over it.

    Censuses compare equal when they contain the same locations in the same
    order, are hashable, and support the usual containment and subset
    operations.
    """

    __slots__ = ("_members", "_index")

    def __init__(self, locations: LocationsLike):
        members = _as_location_tuple(locations)
        seen = {}
        for position, member in enumerate(members):
            if member in seen:
                raise CensusError(
                    f"duplicate location {member!r} in census {members!r}"
                )
            seen[member] = position
        self._members: Tuple[Location, ...] = members
        self._index = seen

    # -- basic container protocol -------------------------------------------------

    @property
    def members(self) -> Tuple[Location, ...]:
        """The locations of this census, in order."""
        return self._members

    def __iter__(self) -> Iterator[Location]:
        return iter(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, location: object) -> bool:
        return location in self._index

    def __getitem__(self, index: int) -> Location:
        return self._members[index]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Census):
            return self._members == other._members
        if isinstance(other, (tuple, list)):
            return self._members == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._members)

    def __repr__(self) -> str:
        return f"Census({list(self._members)!r})"

    # -- membership / subset relations --------------------------------------------

    def index_of(self, location: Location) -> int:
        """Return the position of ``location``, raising if it is not a member.

        This is the runtime analogue of MultiChor's ``Member l ls`` proof
        witness, whose underlying form is exactly such an index.
        """
        try:
            return self._index[location]
        except KeyError:
            raise CensusError(
                f"location {location!r} is not in census {list(self._members)!r}"
            ) from None

    def require_member(self, location: Location) -> Location:
        """Assert that ``location`` is a member and return it."""
        self.index_of(location)
        return location

    def require_subset(self, locations: LocationsLike) -> "Census":
        """Assert that ``locations`` are all members; return them as a Census.

        The returned census preserves the *argument's* ordering, matching the
        paper's ``Subset`` witnesses which are functions from member indices.
        """
        subset = locations if isinstance(locations, Census) else Census(locations)
        missing = [member for member in subset if member not in self]
        if missing:
            raise CensusError(
                f"locations {missing!r} are not in census {list(self._members)!r}"
            )
        return subset

    def is_subset_of(self, other: "Census") -> bool:
        """True when every member of this census belongs to ``other``."""
        return all(member in other for member in self._members)

    def require_nonempty(self) -> "Census":
        """Assert that this census has at least one member."""
        if not self._members:
            raise EmptyCensusError("census must contain at least one location")
        return self

    # -- construction helpers ------------------------------------------------------

    def restricted_to(self, locations: LocationsLike) -> "Census":
        """Return the sub-census of members that also appear in ``locations``.

        This is the runtime analogue of the paper's mask operator ``▷`` applied
        to an ownership set: the result preserves *this* census's ordering.
        """
        other = locations if isinstance(locations, Census) else Census(locations)
        return Census([member for member in self._members if member in other])

    def union(self, locations: LocationsLike) -> "Census":
        """Return a census with the members of both, preserving first-seen order."""
        other = _as_location_tuple(locations)
        merged = list(self._members)
        for member in other:
            if member not in self._index and member not in merged[len(self._members):]:
                merged.append(member)
        return Census(merged)

    def without(self, locations: LocationsLike) -> "Census":
        """Return a census excluding the given locations (which need not be members)."""
        excluded = set(_as_location_tuple(locations))
        return Census([member for member in self._members if member not in excluded])


def as_census(locations: LocationsLike) -> Census:
    """Coerce a census-like value (Census, list, tuple) to a :class:`Census`."""
    if isinstance(locations, Census):
        return locations
    return Census(locations)


def single(location: Location) -> Census:
    """The one-member census containing ``location`` (MultiChor's ``l @@ nobody``)."""
    if not isinstance(location, str) or not location:
        raise CensusError(f"locations must be non-empty strings, got {location!r}")
    return Census([location])
