"""The blocking/futures facade over a sharded cluster.

:class:`ClusterEngine` speaks in choreography runs; an application wants a
key-value API.  :class:`ClusterClient` is that thin layer: ``put``/``get``
return plain values (blocking), the ``*_async`` variants return Futures of
:class:`~repro.protocols.kvs.Response` for pipelined traffic, and ``scan``
issues one per-shard scan choreography and merges the sorted results.

The client either *wraps* an existing :class:`ClusterEngine` (borrowed —
``close()`` leaves it open) or *builds* one from the same keyword options
(owned — ``close()`` tears it down)::

    with ClusterClient(shards=4, replication=2) as kvs:
        kvs.put("user:42", "ada")
        kvs.get("user:42")            # -> "ada"
        kvs.get("user:42", quorum=True)
        kvs.scan("user:")             # -> [("user:42", "ada")]

The blocking read paths are **retrying**: ``get`` and ``scan`` are
idempotent, so when a shard run fails under them — a transient connect
failure, a replica dying mid-read before the cluster's failover has demoted
it — the client simply re-issues the request (``retries`` times) against the
possibly-degraded shard rather than surfacing a failure the next attempt
would not reproduce.  ``retries`` applies **only** to those idempotent
reads: ``put``, ``delete``, ``batch``, and ``txn`` are *never* auto-retried
here, whatever ``retries`` says.  The cluster layer already replays writes
whose failure is attributable to a dead backup, blindly re-running a write
that failed for any other reason could double-apply it, and re-running a
transaction would re-contend for intents its own first attempt may still
hold.  A retried read costs the client nothing extra per attempt beyond the
re-issue: a quorum ``get`` is still exactly two client-side messages per
attempt (key out, majority answer back — the quorum traffic stays inside
the replica conclave).
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import ChoreographyRuntimeError
from ..protocols.kvs import Request, Response, ResponseKind
from ..runtime.engine import ChoreographyResult
from .engine import ClusterEngine, ShardHealth, TxnResult
from .router import ShardId


def _mapped(source: "Future[ChoreographyResult]",
            transform: Callable[[ChoreographyResult], Any]) -> "Future[Any]":
    """A Future resolving to ``transform`` of ``source``'s result."""
    out: "Future[Any]" = Future()

    def _propagate(done: "Future[ChoreographyResult]") -> None:
        try:
            out.set_result(transform(done.result()))
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            out.set_exception(exc)

    source.add_done_callback(_propagate)
    return out


class ClusterClient:
    """``put``/``get``/``scan`` over a sharded, replicated KVS cluster.

    Args:
        cluster: An existing :class:`ClusterEngine` to borrow.  When omitted,
            a cluster is built from the remaining keyword options and owned
            by this client.
        retries: How many times the blocking ``get``/``scan`` paths re-issue
            an idempotent read whose shard run failed (see the module
            docstring); ``0`` disables client-side retry.  Writes —
            ``put``/``delete``/``batch``/``txn`` — ignore this knob and are
            never auto-retried by the client.
        **cluster_options: Forwarded to :class:`ClusterEngine` when building
            (``shards=``, ``replication=``, ``backend=``, ...).

    Raises:
        ValueError: If both a pre-built cluster and build options are given,
            or ``retries`` is negative.
    """

    def __init__(self, cluster: Optional[ClusterEngine] = None, *,
                 retries: int = 2, **cluster_options: Any):
        if cluster is not None and cluster_options:
            raise ValueError(
                "pass either a pre-built ClusterEngine or build options, not both"
            )
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries!r}")
        if cluster is None:
            cluster = ClusterEngine(**cluster_options)
            self._owns_cluster = True
        else:
            self._owns_cluster = False
        self.cluster = cluster
        self.retries = retries

    def _retrying_read(self, attempt: Callable[[], Any]) -> Any:
        """Run an idempotent read, re-issuing it on choreography failure."""
        for _ in range(self.retries):
            try:
                return attempt()
            except ChoreographyRuntimeError:
                continue
        return attempt()

    # ------------------------------------------------------------- async surface --

    def put_async(self, key: str, value: str) -> "Future[Response]":
        """Enqueue a replicated Put; resolve to the server's ack Response."""
        return _mapped(self.cluster.submit_put(key, value), self.cluster.response_of)

    def get_async(
        self, key: str, *, quorum: bool = False, read_repair: bool = True
    ) -> "Future[Response]":
        """Enqueue a Get; resolve to the (primary or majority) Response."""
        return _mapped(
            self.cluster.submit_get(key, quorum=quorum, read_repair=read_repair),
            self.cluster.response_of,
        )

    def delete_async(self, key: str) -> "Future[Response]":
        """Enqueue a replicated Delete; resolve to the server's Response."""
        return _mapped(self.cluster.submit_delete(key), self.cluster.response_of)

    def txn_async(
        self,
        requests: Sequence[Request],
        *,
        expects: "Optional[Dict[str, Optional[str]]]" = None,
        txn_id: Optional[str] = None,
    ) -> "Future[TxnResult]":
        """Enqueue a cross-shard transaction; resolve to its :class:`TxnResult`.

        A thin alias for :meth:`ClusterEngine.submit_txn`; the Future raises
        :class:`~repro.cluster.TxnConflict` / :class:`~repro.cluster.TxnAborted`
        on an abort.
        """
        return self.cluster.submit_txn(requests, expects=expects, txn_id=txn_id)

    # ---------------------------------------------------------- blocking surface --

    def put(self, key: str, value: str) -> Optional[str]:
        """Store ``value`` under ``key``, replicated across the shard.

        Returns:
            The previous value bound to ``key``, or ``None`` for a fresh key.
        """
        response = self.put_async(key, value).result()
        return response.value if response.kind is ResponseKind.FOUND else None

    def get(
        self, key: str, *, quorum: bool = False, read_repair: bool = True
    ) -> Optional[str]:
        """Read ``key`` from its shard.

        Args:
            key: The key to read.
            quorum: Ask every replica and take the majority answer instead of
                trusting the shard primary alone.
            read_repair: With ``quorum``, resynchronise the replicas from the
                primary when their answers diverge.

        Returns:
            The value, or ``None`` when the key is unbound.

        A failed shard run is transparently re-issued up to ``retries``
        times (reads are idempotent); the final attempt's failure, if any,
        propagates.
        """
        response = self._retrying_read(
            lambda: self.get_async(key, quorum=quorum, read_repair=read_repair).result()
        )
        return response.value if response.kind is ResponseKind.FOUND else None

    def delete(self, key: str) -> Optional[str]:
        """Unbind ``key`` across its shard's replica group.

        A write, so it is not retried here (see the module docstring); the
        cluster layer's dead-backup replay still applies.

        Returns:
            The value that was bound to ``key``, or ``None`` when the key
            was already absent.
        """
        response = self.delete_async(key).result()
        return response.value if response.kind is ResponseKind.FOUND else None

    def batch(self, requests: Sequence[Request]) -> List[Response]:
        """Serve a mixed Put/Get batch, one group-commit round per shard.

        The throughput-shaped entry point: requests are routed by key,
        grouped, and served by one
        :func:`~repro.protocols.kvs.kvs_serve_batch` instance per touched
        shard (see :meth:`ClusterEngine.submit_batch`).  Per-key order within
        the batch is preserved.

        Args:
            requests: Any mix of :meth:`Request.put` / :meth:`Request.get` /
                :meth:`Request.delete`.

        Returns:
            One :class:`Response` per request, in the order given.
        """
        return [future.result() for future in self.cluster.submit_batch(requests)]

    def txn(
        self,
        requests: Sequence[Request],
        *,
        expects: "Optional[Dict[str, Optional[str]]]" = None,
        txn_id: Optional[str] = None,
    ) -> TxnResult:
        """Atomically apply a multi-key write set, across shards, or nothing.

        Two-phase commit over the participating shards
        (:meth:`ClusterEngine.submit_txn`): either every write in
        ``requests`` commits — atomically per shard, all shards or none —
        or the transaction aborts with a typed error and no write is
        applied anywhere.

        A transaction is *never* auto-retried, whatever ``retries`` says: a
        conflict is an answer (re-read, rebuild the write set, try a fresh
        transaction), and a failure mid-commit must surface rather than
        re-contend for the intents the first attempt may still hold.

        Args:
            requests: The write set — :meth:`Request.put` /
                :meth:`Request.delete` only.
            expects: Optimistic-concurrency guards: ``key ->`` the committed
                value the caller read (``None`` expects the key unbound).
                Any mismatch at prepare time aborts the transaction.
            txn_id: Pin the transaction id (tests); auto-generated when
                omitted.

        Returns:
            The :class:`~repro.cluster.TxnResult` on commit.

        Raises:
            TxnConflict: A shard refused the prepare — conflicting write
                intent or failed ``expects`` guard; nothing was applied.
            TxnAborted: A participant failed in a way failover could not
                heal; nothing was committed.
        """
        return self.txn_async(requests, expects=expects, txn_id=txn_id).result()

    def scan(self, prefix: str = "") -> List[Tuple[str, str]]:
        """All bindings under ``prefix``, across every shard, in key order.

        One scan choreography runs per shard (they pipeline concurrently);
        each returns its shard's items pre-sorted, and the per-shard lists
        are merged here.  Shards partition the keyspace, so the merge needs
        no deduplication.

        Returns:
            The matching ``(key, value)`` pairs, sorted by key.

        Like ``get``, a scan is idempotent and re-issued (whole) up to
        ``retries`` times when any shard's run fails.
        """

        def attempt() -> List[Tuple[str, str]]:
            futures = self.cluster.submit_scan(prefix)
            items: List[Tuple[str, str]] = []
            for future in futures.values():
                items.extend(self.cluster.response_of(future.result()))
            return sorted(items)

        return self._retrying_read(attempt)

    # ------------------------------------------------------------------ plumbing --

    @property
    def stats(self):
        """Cluster-wide :class:`~repro.runtime.stats.ChannelStats` rollup."""
        return self.cluster.stats

    @property
    def shards(self) -> Tuple[ShardId, ...]:
        """The live shard ids."""
        return self.cluster.shards

    def health(self) -> Dict[ShardId, ShardHealth]:
        """Per-shard replica liveness (see :meth:`ClusterEngine.health`)."""
        return self.cluster.health()

    def close(self) -> None:
        """Close the cluster if this client built it; otherwise leave it open."""
        if self._owns_cluster:
            self.cluster.close()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
