"""A sharded cluster of warm choreography sessions.

One :class:`~repro.runtime.engine.ChoreoEngine` serves one census.  A
service-shaped deployment wants *many* disjoint censuses — one replica group
per shard — with requests routed by key and pipelined into every group
concurrently.  :class:`ClusterEngine` is that layer:

* a :class:`~repro.cluster.router.ShardRouter` (consistent-hash ring) maps
  each key to a shard;
* every shard owns a **warm engine** over its own census — a shared client
  location plus ``replication`` replica locations — and a persistent replica
  store (one facet per replica), so state survives across choreography
  instances;
* requests are **pipelined**: ``submit_*`` returns a Future immediately, and
  ops for different shards run genuinely concurrently while ops for the same
  shard (hence the same key) execute in submission order — per-key
  linearizability for free, from the engine's instance ordering;
* the data plane is pure choreography — puts replicate through
  :func:`~repro.protocols.kvs.kvs_with_backups`, quorum reads and
  read-repair through :func:`~repro.protocols.kvs.kvs_quorum_get`, scans
  through :func:`~repro.protocols.kvs.kvs_scan` — so every message a shard
  sends is visible in its engine's :class:`~repro.runtime.stats.ChannelStats`,
  and the cluster-wide rollup is their
  :meth:`~repro.runtime.stats.ChannelStats.merge_all`.

The cluster also owns the **degradation story** a production deployment
needs when a replica dies mid-traffic:

* a failed shard run is attributed to a culprit by following the chain of
  typed receive-timeout blames (:class:`~repro.core.errors.ChoreoTimeout`
  records who waited on whom) across the instance's per-location failures;
* a culprit that is a *backup* is marked down and the shard's choreographies
  are re-bound through :func:`~repro.protocols.kvs.kvs_with_backups`'s
  zero-backup degradation path — census polymorphism is the failover
  mechanism, no new protocol is needed;
* the failed submit (and any other in-flight submit the dead backup takes
  down) is **replayed** against the degraded binding, so callers' Futures
  resolve with real results instead of the crash;
* :meth:`ClusterEngine.health` reports per-replica up/down state, and
  :meth:`ClusterEngine.probe` actively checks liveness with the two-message
  :func:`~repro.protocols.kvs.kvs_ping` choreography.

Demotion is no longer forever.  With a ``durability=`` configuration every
replica's store is a :class:`~repro.storage.DurableState` — mutations are
write-ahead logged and periodically snapshotted (``docs/durability.md``) —
and a crashed backup can come all the way back:
:meth:`ClusterEngine.rejoin_backup` restarts the replica's store from disk
(snapshot + WAL-suffix replay), closes the gap to the primary with the
hash-verified :func:`~repro.protocols.kvs.kvs_catchup` choreography, and
re-binds the shard with the restored membership — the replica's
:class:`ShardHealth` status walks ``down → rejoining → up``.  Re-join works
without durability too (the catch-up degrades to a full transfer), so the
same control-plane call heals ephemeral clusters.

A dead *primary* no longer fails loudly: when the blame chain sinks at the
shard's head, the cluster **promotes the senior surviving backup** — the
first remaining backup in census order, whose store is authoritative by the
ack-before-apply invariant — stamps a monotonically increasing **shard
epoch** (persisted as a WAL promotion record on every surviving durable
replica, so a cluster restart recovers the promoted head), re-binds the
shard's choreographies around the new head, and replays the in-flight
submits that died with the old one (:class:`PromotionReport` extends the
``failovers`` audit trail).  Bindings from before the promotion are fenced:
they carry their epoch and fail with the typed
:class:`~repro.protocols.kvs.StaleEpoch` before any message moves, so a
zombie old primary can never serve a read or acknowledge a write
(split-brain fence).  The deposed head re-joins *as a backup* through the
ordinary :meth:`ClusterEngine.rejoin_backup` path — its diverged suffix is
exactly the case the hash-verified full-transfer fallback of
:func:`~repro.protocols.kvs.kvs_catchup` exists for.  Only a shard whose
last replica dies still fails loudly; see ``docs/testing.md`` for the chaos
suite that pins all of this down.

Multi-key atomicity crosses shards with **choreographic two-phase commit**:
:meth:`ClusterEngine.submit_txn` plays the coordinator over the existing
warm engines — one :func:`~repro.protocols.kvs.kvs_txn_prepare` per
participating shard parks the write set as replicated, WAL-logged intents
(conflict detection plus optional ``expects`` guards decide each shard's
vote), the commit verdict is durably recorded in the coordinator's decision
log *before* any participant learns it, and one
:func:`~repro.protocols.kvs.kvs_txn_decide` per shard lands the writes
atomically or rolls the intents back.  Both phases ride the same
failover/replay machinery as every other shard op, aborts are presumed
(only commits are logged; :meth:`recover_in_doubt` resolves survivors on a
cold restart, intent expiry handles a dead coordinator on a live one), and
refusals surface as typed :class:`TxnConflict` / :class:`TxnAborted`.

:class:`~repro.cluster.client.ClusterClient` wraps this with a blocking
``put/get/scan/txn`` facade; ``benchmarks/bench_cluster.py`` drives it with
a YCSB-style mixed workload plus a 2PC transfer workload.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..chor import ChoreographyDef, choreography
from ..core.errors import ChoreographyRuntimeError, ChoreoTimeout
from ..core.located import Faceted
from ..core.locations import Census, Location, as_census
from ..protocols.kvs import (
    WRITE_KINDS,
    CatchupReport,
    Request,
    RequestKind,
    Response,
    ResponseKind,
    ShardEpoch,
    StaleEpoch,
    State,
    kvs_catchup,
    kvs_delete,
    kvs_ping,
    kvs_quorum_get,
    kvs_scan,
    kvs_serve_batch,
    kvs_txn_decide,
    kvs_txn_prepare,
    kvs_with_backups,
)
from ..runtime.engine import ChoreoEngine, ChoreographyResult
from ..runtime.stats import ChannelStats
from ..runtime.transport import DEFAULT_TIMEOUT
from ..storage import (
    Durability,
    DurableState,
    EphemeralState,
    promotion_of,
    txns_of,
)
from .router import DEFAULT_VNODES, ShardId, ShardRouter

#: The location name every shard census shares for the requesting side.
DEFAULT_CLIENT = "client"


class ClusterClosed(RuntimeError):
    """Submitted to (or asked control-plane work of) a closed cluster.

    A :class:`RuntimeError` subclass so pre-existing callers that caught the
    untyped error keep working; new code should catch the type.
    """


class ClusterRebalancing(RuntimeError):
    """Submitted while a control-plane operation owns the cluster.

    Raised instead of accepting the submit: a request dispatched mid-
    rebalance (or mid-rejoin) could route through a half-migrated ring or a
    half-bound replica group, and its Future might never resolve.  Callers
    should drain their in-flight work, let the control-plane call finish, and
    resubmit.
    """


class RejoinError(RuntimeError):
    """A replica re-join could not run or could not be verified."""


class TxnAborted(RuntimeError):
    """A cross-shard transaction aborted instead of committing.

    Raised from the transaction's Future (``ClusterEngine.submit_txn``) and
    the blocking ``ClusterClient.txn``.  Nothing was applied anywhere: a
    prepare that failed or was refused leads to an abort decide at every
    participant, which drops the parked intents.  The transaction as issued
    is safe to retry — under a fresh ``txn_id`` — once the condition that
    aborted it (a conflicting transaction, a mid-prepare crash) has passed.
    """

    def __init__(self, txn_id: str, reason: str):
        self.txn_id = txn_id
        self.reason = reason
        super().__init__(f"transaction {txn_id!r} aborted: {reason}")


class TxnConflict(TxnAborted):
    """A transaction's prepare was refused: conflicting keys, nothing applied.

    The :class:`TxnAborted` subtype for the *expected* abort: another
    prepared transaction holds a write intent on one of this transaction's
    keys, or an ``expects`` guard no longer matches the committed value
    (the optimistic-concurrency signal of a read-modify-write transaction —
    re-read and retry).  :attr:`keys` names the blocking keys.
    """

    def __init__(self, txn_id: str, keys: Sequence[str]):
        self.keys: Tuple[str, ...] = tuple(keys)
        super().__init__(txn_id, f"conflict on {', '.join(self.keys)}")


# -- the per-shard data-plane choreographies ------------------------------------------
#
# Census polymorphic over (client, primary, backups); the ClusterEngine binds
# each to one shard's concrete censuses and state via ChoreographyDef.bind,
# so a submitted request carries only its own data (key/value/prefix).


@choreography(name="shard_put")
def shard_put(op, client, server, backups, state_refs, key, value,
              epoch=None, fence=None):
    """Replicate one Put through the shard's replica group, ack at the client."""
    request = op.locally(client, lambda _un: Request.put(key, value))
    return kvs_with_backups(op, client, server, backups, state_refs, request,
                            epoch=epoch, fence=fence)


@choreography(name="shard_get")
def shard_get(op, client, server, backups, state_refs, key,
              quorum=False, read_repair=True, epoch=None, fence=None):
    """Read one key: from the primary, or from a replica quorum.

    ``quorum`` and ``read_repair`` are deployment knobs (global knowledge),
    so branching on them needs no Knowledge-of-Choice traffic.  A quorum
    read over a replication-1 shard degenerates to a primary read.
    """
    if quorum and len(as_census(backups)) > 0:
        located_key = op.locally(client, lambda _un: key)
        return kvs_quorum_get(
            op, client, server, backups, state_refs, located_key,
            read_repair=read_repair, epoch=epoch, fence=fence,
        )
    request = op.locally(client, lambda _un: Request.get(key))
    return kvs_with_backups(op, client, server, backups, state_refs, request,
                            epoch=epoch, fence=fence)


@choreography(name="shard_delete")
def shard_delete(op, client, server, backups, state_refs, key,
                 epoch=None, fence=None):
    """Unbind one key across the shard's replica group, ack at the client."""
    located_key = op.locally(client, lambda _un: key)
    return kvs_delete(op, client, server, backups, state_refs, located_key,
                      epoch=epoch, fence=fence)


@choreography(name="shard_serve")
def shard_serve(op, client, server, backups, state_refs, requests,
                epoch=None, fence=None):
    """Serve a whole request batch in one replica-group round (group commit).

    The cluster's high-throughput path: one instance and ``2 + 2·backups``
    messages per batch, however many requests it carries
    (:func:`~repro.protocols.kvs.kvs_serve_batch`).
    """
    located_batch = op.locally(client, lambda _un: list(requests))
    return kvs_serve_batch(op, client, server, backups, state_refs, located_batch,
                           epoch=epoch, fence=fence)


@choreography(name="shard_txn_prepare")
def shard_txn_prepare(op, client, server, backups, state_refs,
                      txn_id, writes, expects, epoch=None, fence=None):
    """Phase one of 2PC at one shard: vote and park the write intent.

    The cluster coordinator (``ClusterEngine.submit_txn``) drives one of
    these per participating shard (:func:`~repro.protocols.kvs.
    kvs_txn_prepare`); the shard's vote comes back as the client response.
    """
    payload = op.locally(
        client, lambda _un: (txn_id, dict(writes), dict(expects or {}))
    )
    return kvs_txn_prepare(op, client, server, backups, state_refs, payload,
                           epoch=epoch, fence=fence)


@choreography(name="shard_txn_decide")
def shard_txn_decide(op, client, server, backups, state_refs,
                     txn_id, verdict, writes, epoch=None, fence=None):
    """Phase two of 2PC at one shard: commit the parked writes or roll back.

    Idempotent and self-contained (the payload carries the writes), so the
    cluster's replay-after-failover machinery can re-dispatch it safely
    (:func:`~repro.protocols.kvs.kvs_txn_decide`).
    """
    payload = op.locally(client, lambda _un: (txn_id, verdict, dict(writes)))
    return kvs_txn_decide(op, client, server, backups, state_refs, payload,
                          epoch=epoch, fence=fence)


@choreography(name="shard_scan")
def shard_scan(op, client, server, state_refs, prefix, epoch=None, fence=None):
    """Scan one shard's bindings under ``prefix`` (primary answers alone)."""
    located_prefix = op.locally(client, lambda _un: prefix)
    return kvs_scan(op, client, server, state_refs, located_prefix,
                    epoch=epoch, fence=fence)


@choreography(name="shard_ping")
def shard_ping(op, client, replica, token):
    """Probe one replica's liveness (two messages, state untouched)."""
    located_token = op.locally(client, lambda _un: token)
    return kvs_ping(op, client, replica, located_token)


@choreography(name="shard_catchup")
def shard_catchup(op, client, server, rejoiner, state_refs, epoch=None, fence=None):
    """Bring a restarted replica to parity with the primary before re-join.

    The transfer itself runs in a primary/rejoiner conclave
    (:func:`~repro.protocols.kvs.kvs_catchup`); the other replicas complete
    the instance vacuously, and the client receives the verified
    :class:`~repro.protocols.kvs.CatchupReport`.
    """
    return kvs_catchup(op, client, server, rejoiner, state_refs,
                       epoch=epoch, fence=fence)


@dataclass(frozen=True)
class ShardHealth:
    """One shard's replica liveness, as the cluster currently believes it.

    ``replicas`` maps every replica the shard was *created* with — including
    demoted ones — to ``"up"``, ``"down"``, or ``"rejoining"`` (mid
    re-admission: restarted and catching up, not yet serving).  A shard is
    ``degraded`` whenever any replica is not ``"up"``; it keeps serving
    through the remaining replicas (down to an unreplicated primary) the
    whole time, and a successful :meth:`ClusterEngine.rejoin_backup` walks a
    replica ``down → rejoining → up`` and the shard back to healthy.
    """

    shard_id: ShardId
    primary: Location
    replicas: Mapping[Location, str]
    #: Replicas detected dead and dropped out of the replica group (demoted
    #: backups *and* deposed primaries), in detection order.
    down: Tuple[Location, ...] = field(default=())
    #: The shard engine's in-flight instance count at snapshot time — the
    #: per-shard queue depth behind :attr:`ClusterEngine.pending`.  This is
    #: the signal an admission controller keys off (the gateway sheds load
    #: once the cluster-wide sum passes its high-water mark) and the number
    #: that tells an operator *where* a backlog sits, not just that one
    #: exists.
    pending: int = field(default=0)
    #: The shard's current epoch: 0 until a primary promotion, bumped by one
    #: per promotion.  Bindings from older epochs are fenced with
    #: :class:`~repro.protocols.kvs.StaleEpoch`.
    epoch: int = field(default=0)
    #: Each configured replica's current role, ``"primary"`` or
    #: ``"backup"`` — after a failover the primary is *not* ``servers[0]``,
    #: and this mapping is how an operator sees who serves as head now.
    roles: Mapping[Location, str] = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        """True when at least one replica is not serving (down or rejoining)."""
        return any(status != "up" for status in self.replicas.values())


@dataclass(frozen=True)
class PromotionReport:
    """What one primary failover did: who was deposed, who now serves, when.

    Appended to :attr:`ClusterEngine.promotions` (alongside the
    ``(shard_id, replica)`` entry in :attr:`ClusterEngine.failovers`) the
    moment the promotion commits, before any in-flight submit is replayed —
    the audit trail a chaos run checks and ``benchmarks/bench_failover.py``
    times against.
    """

    shard_id: ShardId
    #: The deposed head (now in the shard's ``down`` list).
    old_primary: Location
    #: The senior surviving backup that took over — the first remaining
    #: backup in census order, authoritative by ack-before-apply.
    new_primary: Location
    #: The shard epoch the promotion stamped (monotonically increasing).
    epoch: int
    #: The replica group serving after the promotion, head first.
    survivors: Tuple[Location, ...]
    #: Wall-clock seconds the promotion itself took (re-bind + WAL stamps).
    promote_seconds: float


@dataclass(frozen=True)
class TxnResult:
    """What a committed cross-shard transaction looked like to the coordinator.

    Only commits produce one — an aborted transaction raises
    :class:`TxnAborted` (or its :class:`TxnConflict` subtype) from the
    Future instead, after the abort decide has cleaned every participant's
    intent.
    """

    #: The transaction id the intents and decision were recorded under.
    txn_id: str
    #: The shards that prepared and committed, in routing order.
    shards: Tuple[ShardId, ...]
    #: True — present so callers reading a :class:`TxnResult` off a Future
    #: can assert the invariant without knowing the abort story.
    committed: bool = True


@dataclass(frozen=True)
class RejoinReport:
    """What one successful :meth:`ClusterEngine.rejoin_backup` did and cost."""

    shard_id: ShardId
    replica: Location
    #: WAL records the restart replayed from disk (0 for ephemeral stores).
    replayed_records: int
    #: Wall-clock seconds spent reopening + replaying the on-disk state.
    replay_seconds: float
    #: Wall-clock seconds spent in the catch-up choreography.
    catchup_seconds: float
    #: The catch-up transfer mode that stuck: ``"delta"`` or ``"full"``.
    mode: str
    #: True when a delta transfer failed hash verification and the
    #: full-transfer fallback ran instead.
    fell_back: bool


class _ShardSession:
    """One shard's worth of warm machinery: census, engine, state, bound ops."""

    __slots__ = (
        "shard_id", "client", "census", "servers", "primary", "backups", "down",
        "rejoining", "durability", "state", "engine", "epoch", "fence",
        "put", "get", "delete", "scan", "serve", "txn_prepare", "txn_decide",
        "pings",
    )

    def __init__(
        self,
        shard_id: ShardId,
        client: Location,
        replication: int,
        backend: Any,
        timeout: float,
        backend_options: Dict[str, Any],
        durability: Optional[Durability] = None,
    ):
        self.shard_id = shard_id
        self.client = client
        self.servers: List[Location] = [f"{shard_id}.r{i}" for i in range(replication)]
        self.primary: Location = self.servers[0]
        self.backups: List[Location] = self.servers[1:]
        #: Backups demoted out of the replica group, in detection order.
        self.down: List[Location] = []
        #: Demoted backups currently being re-admitted (restart + catch-up).
        self.rejoining: List[Location] = []
        self.durability = durability
        self.census: Census = as_census([client] + self.servers)
        # The replica stores persist across choreography instances: the engine
        # keeps one worker thread per location alive for the session, and each
        # worker only ever unwraps its own facet, so sharing the Faceted
        # across instances is race-free (per-location instances run in
        # submission order).  With durability, each facet is a DurableState
        # whose construction is the recovery path: snapshot + WAL replay.
        self.state: Faceted[State] = Faceted(
            self.servers, {s: self._open_store(s) for s in self.servers}
        )
        #: The shard's current epoch and its live fence cell.  Bumped by
        #: :meth:`promote`; every data-plane binding captures the epoch value
        #: current at bind time and is checked against the cell at run time.
        self.epoch: int = 0
        self.fence = ShardEpoch(0)
        self._recover_promoted_head()
        self.engine = ChoreoEngine(
            self.census, backend=backend, timeout=timeout, **backend_options
        )
        self.pings: Dict[Location, ChoreographyDef] = {
            replica: shard_ping.bind(
                client, replica, name=f"shard_ping@{shard_id}:{replica}"
            )
            for replica in self.servers
        }
        self._bind_data_plane()

    def _recover_promoted_head(self) -> None:
        """Reopen under the head the durable promotion records elect.

        Census order says ``servers[0]`` leads — but a promotion may have
        moved the head, and that fact is persisted as WAL promotion records
        (``docs/durability.md``).  The replica reporting the highest
        recovered epoch knows the current head: re-arrange primary/backups
        around it and restore the epoch, so a full cluster restart serves
        from the store that was authoritative at shutdown, not from a
        deposed ``r0``.
        """
        epoch, head = 0, None
        for replica in self.servers:
            replica_epoch, replica_head = promotion_of(self.state.facet_for(replica))
            if replica_epoch > epoch:
                epoch, head = replica_epoch, replica_head
        if epoch > 0 and head in self.servers:
            self.epoch = epoch
            self.fence.advance(epoch)
            self.primary = head
            self.backups = [s for s in self.servers if s != head]

    def _bind_data_plane(self) -> None:
        """(Re-)bind the data-plane choreographies to the live replica set.

        Called at session open and again after each demotion or promotion:
        the *same* census-polymorphic choreographies are simply
        re-instantiated with the current head and backup list —
        :func:`~repro.protocols.kvs.kvs_with_backups` and friends degrade
        gracefully down to an unreplicated primary, so failover needs no
        protocol of its own.  The engine census never changes; a demoted
        location's worker stays alive but the degraded bindings give it
        nothing to do, so even a crashed endpoint completes every later
        instance vacuously.

        Every binding captures the current epoch and the shard's live fence
        cell: after a later promotion the cell moves on, and a submit still
        carrying this binding fails with
        :class:`~repro.protocols.kvs.StaleEpoch` before its first message —
        the split-brain fence that keeps a deposed head from serving.
        """
        client = self.client
        bind_name = lambda op_name: f"{op_name}@{self.shard_id}"  # noqa: E731
        fencing = {"epoch": self.epoch, "fence": self.fence}
        self.put: ChoreographyDef = shard_put.bind(
            client, self.primary, list(self.backups), self.state,
            name=bind_name("shard_put"), **fencing,
        )
        self.get: ChoreographyDef = shard_get.bind(
            client, self.primary, list(self.backups), self.state,
            name=bind_name("shard_get"), **fencing,
        )
        self.delete: ChoreographyDef = shard_delete.bind(
            client, self.primary, list(self.backups), self.state,
            name=bind_name("shard_delete"), **fencing,
        )
        self.scan: ChoreographyDef = shard_scan.bind(
            client, self.primary, self.state, name=bind_name("shard_scan"),
            **fencing,
        )
        self.serve: ChoreographyDef = shard_serve.bind(
            client, self.primary, list(self.backups), self.state,
            name=bind_name("shard_serve"), **fencing,
        )
        self.txn_prepare: ChoreographyDef = shard_txn_prepare.bind(
            client, self.primary, list(self.backups), self.state,
            name=bind_name("shard_txn_prepare"), **fencing,
        )
        self.txn_decide: ChoreographyDef = shard_txn_decide.bind(
            client, self.primary, list(self.backups), self.state,
            name=bind_name("shard_txn_decide"), **fencing,
        )

    def _open_store(self, replica: Location) -> State:
        """One replica's store: durable (recovered from disk) or ephemeral.

        Ephemeral stores are :class:`~repro.storage.EphemeralState`, not
        plain dicts: the transaction choreographies need the in-doubt intent
        table either way, and the class degrades to exactly a dict for every
        other choreography.
        """
        if self.durability is None:
            return EphemeralState()
        return self.durability.open_state(self.shard_id, replica)

    def demote_backup(self, replica: Location) -> None:
        """Drop a dead backup from the replica group and re-bind around it."""
        self.backups.remove(replica)
        self.down.append(replica)
        self._bind_data_plane()

    def senior_surviving_backup(self) -> Optional[Location]:
        """The backup next in line for promotion, or ``None`` if none survive.

        The backup list is maintained in census order, so its first entry is
        the *senior* survivor — deterministic across processes and failure
        histories, and authoritative by the ack-before-apply invariant
        (every write the deposed head acknowledged was applied at every
        then-serving backup *first*).
        """
        return self.backups[0] if self.backups else None

    def promote(self, new_primary: Location) -> None:
        """Fail over to ``new_primary``: bump the epoch, fence, re-bind.

        The deposed head joins the ``down`` list (it can re-join later as a
        backup through the ordinary catch-up path); the new epoch is stamped
        into every surviving durable replica's WAL so a cluster restart
        recovers the promoted head; the fence cell advances, invalidating
        every binding made under the old epoch; and the data plane re-binds
        around the new head with the remaining backups.
        """
        deposed = self.primary
        self.epoch += 1
        self.primary = new_primary
        self.backups.remove(new_primary)
        self.down.append(deposed)
        for replica in (self.primary, *self.backups):
            facet = self.state.facet_for(replica)
            if isinstance(facet, DurableState):
                facet.log_promotion(self.epoch, new_primary)
        self.fence.advance(self.epoch)
        self._bind_data_plane()

    # ------------------------------------------------------------------- rejoin --

    def restart_replica_state(self, replica: Location) -> State:
        """Model the replica's process restart: rebuild its store from disk.

        The in-memory facet is discarded — whatever a dead process held in
        RAM is gone — and replaced by a freshly opened store, whose
        construction *is* the recovery replay (snapshot + WAL suffix) when
        the shard is durable, and an empty dict when it is not.  The other
        replicas' facet objects are untouched; only the Faceted wrapper is
        rebuilt, so the caller must re-bind any choreography that should see
        the new facet.
        """
        facets = dict(self.state.visible_facets())
        old = facets.get(replica)
        if isinstance(old, DurableState):
            old.close()
        fresh = self._open_store(replica)
        facets[replica] = fresh
        self.state = Faceted(self.servers, facets)
        return fresh

    def begin_rejoin(self, replica: Location) -> None:
        """Move ``replica`` from the demoted list into the rejoining state."""
        self.down.remove(replica)
        self.rejoining.append(replica)

    def abort_rejoin(self, replica: Location) -> None:
        """A re-join failed: the replica goes back to plain demoted."""
        if replica in self.rejoining:
            self.rejoining.remove(replica)
        if replica not in self.down:
            self.down.append(replica)

    def finish_rejoin(self, replica: Location) -> None:
        """Re-admit ``replica``: restore membership and re-bind the shard.

        The backup list is rebuilt in census order (not append order), so a
        shard that loses and regains replicas converges to the same binding
        it started with — bindings stay deterministic across failure
        histories.  The *current* head is excluded, not ``servers[0]``: after
        a promotion the deposed ``r0`` re-enters here as a backup, senior in
        census order but a backup all the same.
        """
        self.rejoining.remove(replica)
        self.backups = [
            server for server in self.servers
            if server != self.primary
            and server not in self.down and server not in self.rejoining
        ]
        self._bind_data_plane()

    def close_storage(self) -> None:
        """Flush and close every durable facet (no-op for ephemeral shards)."""
        for facet in self.state.visible_facets().values():
            if isinstance(facet, DurableState):
                facet.close()

    def health(self) -> ShardHealth:
        """This shard's current :class:`ShardHealth` snapshot."""

        def status(replica: Location) -> str:
            if replica in self.down:
                return "down"
            if replica in self.rejoining:
                return "rejoining"
            return "up"

        return ShardHealth(
            self.shard_id,
            self.primary,
            {replica: status(replica) for replica in self.servers},
            down=tuple(self.down),
            pending=self.engine.pending,
            epoch=self.epoch,
            roles={
                replica: "primary" if replica == self.primary else "backup"
                for replica in self.servers
            },
        )


def _highest_txn_serial(txn_log: DurableState) -> int:
    """The largest ``txn-<n>`` serial the decision record has committed.

    Auto-generated transaction ids continue above it across restarts, so a
    fresh transaction can never collide with a *committed* predecessor.
    (Aborted ids are reusable by design — presumed abort records nothing —
    which is safe because recovery resolves every dangling intent before
    new traffic runs.)  Caller-supplied ids are the caller's business.
    """
    highest = 0
    for txn_id in txn_log:
        if txn_id.startswith("txn-"):
            try:
                highest = max(highest, int(txn_id[4:]))
            except ValueError:
                pass
    return highest


class ClusterEngine:
    """A sharded KVS service: one warm :class:`ChoreoEngine` per shard.

    Args:
        shards: Shard count (ids default to ``"shard0"`` …) or explicit ids.
        replication: Replicas per shard (primary + ``replication - 1``
            backups); must be at least 1.
        backend: Backend name or factory options understood by
            :class:`~repro.runtime.engine.ChoreoEngine`; every shard gets its
            own backend instance, so shard traffic never shares a transport.
        client: The location name the requesting side uses in every shard
            census.
        vnodes: Consistent-hash ring points per shard
            (:class:`~repro.cluster.router.ShardRouter`).
        timeout: Per-endpoint receive timeout, forwarded to each engine.
        durability: ``None`` (ephemeral stores, the default), a directory
            path, or a full :class:`~repro.storage.Durability` configuration.
            With durability on, every replica store is a
            :class:`~repro.storage.DurableState` rooted at
            ``<root>/<shard_id>/<replica>/`` — opening the cluster *is*
            crash recovery (snapshot + WAL replay), and
            :meth:`rejoin_backup` can re-admit a crashed, restarted backup.
        **backend_options: Extra backend factory options (e.g. ``latency=``
            for ``"simulated"``), forwarded to each engine.

    Raises:
        ValueError: On ``replication < 1`` or an invalid shard spec.

    The engine is a context manager; leaving the ``with`` block closes every
    shard session.
    """

    def __init__(
        self,
        shards: Union[int, Sequence[ShardId]] = 4,
        *,
        replication: int = 2,
        backend: Any = "local",
        client: Location = DEFAULT_CLIENT,
        vnodes: int = DEFAULT_VNODES,
        timeout: float = DEFAULT_TIMEOUT,
        durability: "Union[None, str, os.PathLike, Durability]" = None,
        **backend_options: Any,
    ):
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.client = client
        self.replication = replication
        self.router = ShardRouter(shards, vnodes=vnodes)
        if durability is not None and not isinstance(durability, Durability):
            durability = Durability(root=os.fspath(durability))
        self.durability: Optional[Durability] = durability
        self._backend = backend
        self._timeout = timeout
        self._backend_options = dict(backend_options)
        self._lock = threading.Lock()
        self._closed = False
        #: The control-plane operation currently owning the cluster (a short
        #: description, or ``None``); submits are refused while set.
        self._control_op: Optional[str] = None
        #: Every replica dropped from a replica group — demoted backups *and*
        #: deposed primaries — as ``(shard_id, replica)`` in detection order:
        #: the cluster's failover audit trail (guarded by ``_lock``).
        self.failovers: List[Tuple[ShardId, Location]] = []
        #: Every primary promotion performed, in commit order — the detailed
        #: half of the audit trail (guarded by ``_lock``).
        self.promotions: List[PromotionReport] = []
        #: Every successful re-join, in completion order — the recovery side
        #: of the audit trail (guarded by ``_lock``).
        self.rejoins: List[RejoinReport] = []
        #: The coordinator's durable transaction decision record: ``txn_id ->
        #: "commit"``, written *before* any participant learns the verdict.
        #: Only commits are recorded — an absent id means presumed abort —
        #: so a cold restart can resolve every in-doubt participant intent
        #: (``None`` for ephemeral clusters; guarded by ``_lock``).
        self._txn_log: Optional[DurableState] = None
        self._txn_counter = itertools.count(1)
        self._sessions: Dict[ShardId, _ShardSession] = {}
        try:
            if durability is not None:
                self._txn_log = DurableState(
                    durability.state_dir("_txn", "coordinator"),
                    fsync=durability.fsync,
                    snapshot_every=durability.snapshot_every,
                )
                self._txn_counter = itertools.count(
                    _highest_txn_serial(self._txn_log) + 1
                )
            for shard_id in self.router.shards:
                self._sessions[shard_id] = self._open_session(shard_id)
            if durability is not None:
                # Opening the cluster *is* crash recovery; that includes
                # resolving transactions a previous incarnation left in
                # doubt, from the decision record just reopened.
                self.recover_in_doubt()
        except BaseException:
            self.close()
            raise

    def _open_session(self, shard_id: ShardId) -> _ShardSession:
        return _ShardSession(
            shard_id, self.client, self.replication,
            self._backend, self._timeout, self._backend_options,
            durability=self.durability,
        )

    # ---------------------------------------------------------------- routing --

    @property
    def shards(self) -> Tuple[ShardId, ...]:
        """The live shard ids, in creation order."""
        return self.router.shards

    def shard_for(self, key: str) -> ShardId:
        """The shard serving ``key`` (see :meth:`ShardRouter.shard_for`)."""
        return self.router.shard_for(key)

    def session(self, shard_id: ShardId) -> _ShardSession:
        """The warm per-shard session (census, engine, bound choreographies).

        Raises:
            KeyError: For an unknown shard id.
        """
        return self._sessions[shard_id]

    # ------------------------------------------------------------- data plane --

    def _submit(self, shard_id: ShardId, op_name: str,
                args: Sequence[Any] = (), kwargs: Optional[Dict[str, Any]] = None,
                ) -> "Future[ChoreographyResult]":
        """Dispatch one shard operation, with dead-backup failover built in.

        ``op_name`` names a :class:`_ShardSession` choreography attribute
        (``"put"``/``"get"``/``"scan"``/``"serve"``) rather than a bound
        object, because failover *re-binds* those attributes: a replay after
        a demotion must pick up the degraded binding, not the one the request
        was first dispatched with.  The returned Future resolves with the
        final (possibly replayed) run, or with the original failure when no
        replay is warranted.

        Replay is **at-least-once and re-enqueued at failure time**, which
        bounds the ordering guarantee during a failover: a replayed write
        lands *behind* anything submitted between its failure and its
        replay.  A caller that awaits each write before issuing the next on
        the same key (the blocking :class:`ClusterClient` paths do) keeps
        strict per-key order across failovers; a caller that pipelines
        multiple unacknowledged writes to one key concurrently with a
        replica crash may observe the replayed (older) write re-applied
        after a newer one.  ``docs/testing.md`` spells out the contract.
        """
        outer: "Future[ChoreographyResult]" = Future()
        # Replay budget: each replay consumes either a membership shrink (a
        # demotion or a promotion — at most replication-1 of those before an
        # unreplicated head) or a stale-epoch retry (a submit whose binding a
        # concurrent promotion invalidated — at most one per promotion), so
        # 2·(replication-1) bounds the chain and it always terminates.
        self._dispatch(
            shard_id, op_name, tuple(args), dict(kwargs or {}), outer,
            replays_left=max(0, 2 * (self.replication - 1)),
        )
        return outer

    def _dispatch(self, shard_id: ShardId, op_name: str, args: tuple,
                  kwargs: Dict[str, Any], outer: "Future[ChoreographyResult]",
                  replays_left: int) -> None:
        with self._lock:
            if self._closed:
                raise ClusterClosed("cannot submit to a closed ClusterEngine")
            if self._control_op is not None:
                raise ClusterRebalancing(
                    f"cannot submit while the cluster is busy with "
                    f"{self._control_op}; drain in-flight futures and retry"
                )
            session = self._sessions[shard_id]
            chor = getattr(session, op_name)
        inner = session.engine.submit(chor, args=args, kwargs=kwargs)
        inner.add_done_callback(
            lambda done: self._settle(
                done, shard_id, op_name, args, kwargs, outer, replays_left
            )
        )

    def _settle(self, done: "Future[ChoreographyResult]", shard_id: ShardId,
                op_name: str, args: tuple, kwargs: Dict[str, Any],
                outer: "Future[ChoreographyResult]", replays_left: int) -> None:
        """Resolve ``outer`` from a finished shard run, failing over if due."""
        try:
            outer.set_result(done.result())
            return
        except ChoreographyRuntimeError as exc:
            error: BaseException = exc
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            outer.set_exception(exc)
            return
        try:
            if replays_left > 0 and self._should_replay(shard_id, error):
                self._dispatch(
                    shard_id, op_name, args, kwargs, outer, replays_left - 1
                )
                return
        except BaseException:  # noqa: BLE001 - replay plumbing failed
            pass  # fall through: the original failure is the honest answer
        outer.set_exception(error)

    def _should_replay(self, shard_id: ShardId,
                       error: ChoreographyRuntimeError) -> bool:
        """Decide whether a failed run warrants a replay, healing first.

        Three replayable conditions, in order of precedence:

        1. the run was **fenced** — it raised
           :class:`~repro.protocols.kvs.StaleEpoch` because a concurrent
           promotion invalidated its binding.  The shard is already healthy
           under the new head; re-dispatching picks up the current-epoch
           binding;
        2. the blame chain sinks at a **backup** — demote it (idempotently)
           and replay against the shrunk replica group;
        3. the blame chain sinks at the **primary** — promote the senior
           surviving backup (idempotently) and replay against the new head.

        ``False`` means the failure is the honest answer: an unattributable
        failure, or a shard whose last replica died.
        """
        if self._is_stale_epoch(error):
            return True
        suspect = self._suspect_replica(shard_id, error)
        if suspect is None:
            return False
        with self._lock:
            session = self._sessions.get(shard_id)
            if session is not None and suspect == session.primary:
                primary_died = True
            else:
                primary_died = False
        if primary_died:
            return self._mark_primary_down(shard_id, suspect)
        return self._mark_backup_down(shard_id, suspect)

    @staticmethod
    def _is_stale_epoch(error: ChoreographyRuntimeError) -> bool:
        """True when the failure bundle is rooted in a stale-epoch fence."""
        failures = getattr(error, "failures", None) or {error.location: error.original}
        return any(
            isinstance(failure, StaleEpoch) for failure in failures.values()
        )

    def _suspect_replica(self, shard_id: ShardId,
                         error: ChoreographyRuntimeError) -> Optional[Location]:
        """The shard replica a failed run points at, or ``None``.

        Walks the chain of receive-timeout blames: every
        :class:`~repro.core.errors.ChoreoTimeout` in the failure bundle says
        *who* gave up waiting on *whom*, and the chain's sink — the location
        everyone else is transitively waiting on, which itself blames nobody
        — is the one that actually went silent.  A crashed location that
        failed outright (a non-timeout error) is its own sink: the engine
        already reports it as the root cause.

        Any replica of the shard may be returned — the current primary
        included, which is how traffic-driven detection triggers a
        promotion.  A silent *client* is never attributed: that failure sits
        on the requesting side and this layer does not mask it.
        """
        failures = getattr(error, "failures", None) or {error.location: error.original}
        blames = {
            waiter: exc.peer
            for waiter, exc in failures.items()
            if isinstance(exc, ChoreoTimeout) and exc.peer is not None
        }
        sink = error.location
        visited = {sink}
        while sink in blames:
            sink = blames[sink]
            if sink in visited:  # a genuine wait cycle: nobody is "the" culprit
                return None
            visited.add(sink)
        with self._lock:
            session = self._sessions.get(shard_id)
            if session is not None and sink in session.servers:
                return sink
        return None

    def _mark_backup_down(self, shard_id: ShardId, replica: Location) -> bool:
        """Record ``replica`` as dead; True when it is (now) confirmed down.

        Idempotent under concurrency: many in-flight runs typically fail on
        the same dead backup at once, and each of them should *replay* —
        only the first one performs the demotion and logs the failover.
        """
        with self._lock:
            session = self._sessions[shard_id]
            if replica in session.down:
                return True
            if replica not in session.backups:
                return False
            session.demote_backup(replica)
            self.failovers.append((shard_id, replica))
            return True

    def _mark_primary_down(self, shard_id: ShardId, replica: Location) -> bool:
        """Fail over a dead primary; True when a replay is warranted.

        Promotes the senior surviving backup (first in census order — its
        store is authoritative by ack-before-apply), stamps the new epoch,
        and records the :class:`PromotionReport`.  Idempotent under
        concurrency exactly like :meth:`_mark_backup_down`: every in-flight
        run that died with the old head calls this, only the first performs
        the promotion, and all of them replay against the new binding.

        Returns ``False`` — fail loudly, no replay — when no backup
        survives: the shard's last replica is gone and masking that would
        turn data loss into silence.
        """
        with self._lock:
            session = self._sessions[shard_id]
            if replica in session.down:
                return True  # a racing settle already promoted past it
            if replica != session.primary:
                return False
            successor = session.senior_surviving_backup()
            if successor is None:
                return False
            started = time.perf_counter()
            session.promote(successor)
            self.failovers.append((shard_id, replica))
            self.promotions.append(PromotionReport(
                shard_id=shard_id,
                old_primary=replica,
                new_primary=successor,
                epoch=session.epoch,
                survivors=(session.primary, *session.backups),
                promote_seconds=time.perf_counter() - started,
            ))
            return True

    def submit_put(self, key: str, value: str) -> "Future[ChoreographyResult]":
        """Enqueue a replicated Put on ``key``'s shard; returns immediately.

        Returns:
            A Future resolving to the shard run's
            :class:`~repro.runtime.engine.ChoreographyResult`; the client's
            :class:`~repro.protocols.kvs.Response` is its
            ``value_at(cluster.client)``.  If the run fails on a backup that
            is (or is then confirmed) dead, the Put is replayed against the
            demoted replica group and the Future resolves with the replay.
        """
        shard_id = self.shard_for(key)
        return self._submit(shard_id, "put", args=(key, value))

    def submit_get(
        self, key: str, *, quorum: bool = False, read_repair: bool = True
    ) -> "Future[ChoreographyResult]":
        """Enqueue a Get on ``key``'s shard.

        Args:
            key: The key to read.
            quorum: Read from every replica and answer with the majority
                instead of trusting the primary alone.
            read_repair: With ``quorum``, re-propagate the primary's store
                when the replicas' votes diverge.

        Returns:
            A Future of the shard run's result (see :meth:`submit_put`);
            dead-backup failures are replayed like Puts.
        """
        shard_id = self.shard_for(key)
        return self._submit(
            shard_id, "get",
            args=(key,), kwargs={"quorum": quorum, "read_repair": read_repair},
        )

    def submit_delete(self, key: str) -> "Future[ChoreographyResult]":
        """Enqueue a replicated Delete on ``key``'s shard; returns immediately.

        Deletion is a write: it replicates through
        :func:`~repro.protocols.kvs.kvs_delete` with the same
        ack-before-apply discipline (and the same dead-backup replay) as a
        Put, and on durable shards the ``("del", key)`` record hits each
        replica's WAL before memory, so an acknowledged delete survives
        crash-restart replay.

        Returns:
            A Future of the shard run's result (see :meth:`submit_put`); the
            client-side :class:`~repro.protocols.kvs.Response` holds the
            previous binding (``found``) or ``not_found`` for an absent key.
        """
        shard_id = self.shard_for(key)
        return self._submit(shard_id, "delete", args=(key,))

    def submit_batch(self, requests: Sequence[Request]) -> List["Future[Response]"]:
        """Serve a request batch with one group-commit instance per shard.

        The batch is split by key routing; each shard receives *its* requests
        in batch order as a single :func:`~repro.protocols.kvs.kvs_serve_batch`
        instance, so a batch costs ``2 + 2·backups`` messages per touched
        shard instead of per request.  Per-key ordering is preserved: a key's
        requests stay in one shard's sub-batch, in order, and batches to the
        same shard execute in submission order.

        Args:
            requests: Any mix of Put/Get/Delete requests.  Each request
                routes by its ``key`` (a batch may span every shard).

        Returns:
            One Future per request, in the order given; each resolves to that
            request's :class:`~repro.protocols.kvs.Response` (or raises the
            shard run's error).
        """
        per_shard: Dict[ShardId, List[int]] = {}
        for index, request in enumerate(requests):
            # Keyless requests (STOP) have no ring position; route them by
            # the empty key so they deterministically reach one shard and
            # come back answered ``stopped``, as kvs_serve_batch promises.
            per_shard.setdefault(self.shard_for(request.key or ""), []).append(index)
        futures: List["Future[Response]"] = [Future() for _ in requests]

        def _fan_out(done: "Future[ChoreographyResult]", indices: List[int]) -> None:
            try:
                responses = self.response_of(done.result())
            except BaseException as exc:  # noqa: BLE001 - relayed per request
                for index in indices:
                    futures[index].set_exception(exc)
                return
            for index, response in zip(indices, responses):
                futures[index].set_result(response)

        for shard_id, indices in per_shard.items():
            sub_batch = [requests[index] for index in indices]
            shard_future = self._submit(shard_id, "serve", args=(sub_batch,))
            shard_future.add_done_callback(
                lambda done, indices=indices: _fan_out(done, indices)
            )
        return futures

    def submit_txn(
        self,
        requests: Sequence[Request],
        *,
        expects: Optional[Mapping[str, Optional[str]]] = None,
        txn_id: Optional[str] = None,
    ) -> "Future[TxnResult]":
        """Atomically apply a cross-shard write set with two-phase commit.

        The cluster engine is the coordinator; each participating shard's
        replica group is one participant conclave.  Phase one submits a
        :func:`~repro.protocols.kvs.kvs_txn_prepare` to every shard the
        write set (or an ``expects`` guard) routes to — each shard votes
        and, when granting, parks the write intent on every replica, WAL-
        first on durable clusters.  When all votes are in, the verdict is
        decided: *commit* iff every shard granted.  A commit is recorded in
        the coordinator's durable decision log **before** any participant
        learns it — the classic 2PC write — then phase two fans a
        :func:`~repro.protocols.kvs.kvs_txn_decide` out to every
        participant, which applies the whole per-shard write set atomically
        (one WAL record) or rolls the intent back.  Prepare and decide both
        ride the ordinary :meth:`_submit` machinery, so participant crashes
        and promotions mid-transaction heal exactly like any other shard
        op: the phase is replayed against the re-bound group, idempotently
        (a re-prepare of a parked id re-grants; decides are idempotent).

        Aborts are **presumed**: only commits are logged, an in-doubt
        participant whose coordinator record holds nothing is rolled back
        (:meth:`recover_in_doubt` on a cold restart, intent expiry after
        :data:`~repro.storage.TXN_INTENT_TTL` later prepares on a live
        one).  Transactions are never auto-retried — the conflict that
        refused a prepare is a *answer*, not a transient — and nothing in a
        refused or aborted transaction is ever applied.

        Args:
            requests: The write set — Put and Delete requests only (reads
                belong before the transaction; guard them with ``expects``).
            expects: Optional optimistic-concurrency guards, ``key -> the
                committed value the caller read`` (``None`` expects the key
                unbound).  A mismatch at prepare time refuses that shard's
                vote with :class:`TxnConflict`.
            txn_id: Override the auto-generated transaction id (chaos tests
                pin these for deterministic schedules).  Must be unique
                among live transactions.

        Returns:
            A Future resolving to a :class:`TxnResult` on commit, or
            raising :class:`TxnConflict` (a refused vote: conflicting
            intent or failed guard) / :class:`TxnAborted` (a participant
            failure the failover machinery could not heal) — in both cases
            only after the abort decide has been fanned out.

        Raises:
            ValueError: For an empty write set or a non-write request.
        """
        requests = list(requests)
        if not requests:
            raise ValueError("a transaction needs at least one write")
        for request in requests:
            if request.kind not in WRITE_KINDS:
                raise ValueError(
                    f"transactions carry writes only, got {request.kind!r}; "
                    "read before the transaction and guard with expects="
                )
        if txn_id is None:
            txn_id = f"txn-{next(self._txn_counter)}"
        writes_by_shard: Dict[ShardId, Dict[str, Optional[str]]] = {}
        for request in requests:
            shard_writes = writes_by_shard.setdefault(self.shard_for(request.key), {})
            shard_writes[request.key] = (
                request.value if request.kind is RequestKind.PUT else None
            )
        expects_by_shard: Dict[ShardId, Dict[str, Optional[str]]] = {}
        for key, expected in dict(expects or {}).items():
            expects_by_shard.setdefault(self.shard_for(key), {})[key] = expected
        participants = tuple(
            shard_id for shard_id in self.shards
            if shard_id in writes_by_shard or shard_id in expects_by_shard
        )

        outer: "Future[TxnResult]" = Future()
        votes: Dict[ShardId, Response] = {}
        failures: Dict[ShardId, BaseException] = {}
        remaining = [len(participants)]
        vote_lock = threading.Lock()

        def on_prepared(shard_id: ShardId,
                        done: "Future[ChoreographyResult]") -> None:
            with vote_lock:
                try:
                    votes[shard_id] = self.response_of(done.result())
                except BaseException as exc:  # noqa: BLE001 - becomes the verdict
                    failures[shard_id] = exc
                remaining[0] -= 1
                if remaining[0]:
                    return
            self._decide_phase(
                txn_id, participants, writes_by_shard, votes, failures, outer
            )

        for shard_id in participants:
            prepared = self._submit(
                shard_id, "txn_prepare",
                args=(txn_id, writes_by_shard.get(shard_id, {}),
                      expects_by_shard.get(shard_id, {})),
            )
            prepared.add_done_callback(
                lambda done, shard_id=shard_id: on_prepared(shard_id, done)
            )
        return outer

    def _decide_phase(
        self,
        txn_id: str,
        participants: Tuple[ShardId, ...],
        writes_by_shard: Dict[ShardId, Dict[str, Optional[str]]],
        votes: Dict[ShardId, Response],
        failures: Dict[ShardId, BaseException],
        outer: "Future[TxnResult]",
    ) -> None:
        """Resolve the votes into a verdict and fan the decide out.

        A separate method so the chaos suite can crash the coordinator at
        the worst moment: between the last vote and the decides (patch this
        to do nothing — presumed abort), or between the durable decision
        and the decides (patch to stop after the log write — recovery must
        finish the commit).
        """
        granted = not failures and all(
            vote.kind is ResponseKind.FOUND for vote in votes.values()
        )
        verdict = "commit" if granted else "abort"
        if granted and self._txn_log is not None:
            with self._lock:
                # The decision record is the commit point: once this is on
                # disk, a crashed coordinator's restart finishes the commit;
                # before it, every intent resolves to presumed abort.
                self._txn_log[txn_id] = "commit"
        decided: Dict[ShardId, "Future[ChoreographyResult]"] = {}
        try:
            for shard_id in participants:
                decided[shard_id] = self._submit(
                    shard_id, "txn_decide",
                    args=(txn_id, verdict, writes_by_shard.get(shard_id, {})),
                )
        except BaseException as exc:  # noqa: BLE001 - cluster closed mid-txn
            outer.set_exception(exc)
            return
        remaining = [len(decided)]
        errors: List[BaseException] = []
        ack_lock = threading.Lock()

        def on_decided(done: "Future[ChoreographyResult]") -> None:
            with ack_lock:
                try:
                    done.result()
                except BaseException as exc:  # noqa: BLE001 - tallied below
                    errors.append(exc)
                remaining[0] -= 1
                if remaining[0]:
                    return
            if verdict == "commit":
                if errors:
                    # The commit is durably decided, but a participant never
                    # acknowledged it (even after the failover replays) —
                    # surface the failure; recovery will finish the commit.
                    outer.set_exception(errors[0])
                else:
                    outer.set_result(TxnResult(txn_id, participants))
                return
            # Abort: the decide fan-out is best-effort cleanup (a shard that
            # refused parked nothing; a dead one expires or recovers its
            # intent), so the refusal itself is the answer.
            conflicts = sorted({
                key
                for vote in votes.values()
                if vote.kind is ResponseKind.NOT_FOUND and vote.value
                for key in vote.value.split(",")
            })
            if failures:
                shard_id, cause = next(iter(failures.items()))
                error: TxnAborted = TxnAborted(
                    txn_id, f"prepare failed at {shard_id}: {cause}"
                )
                error.__cause__ = cause
            else:
                error = TxnConflict(txn_id, conflicts)
            outer.set_exception(error)

        for future in decided.values():
            future.add_done_callback(on_decided)

    def in_doubt(self) -> Dict[ShardId, Dict[str, Dict[str, Any]]]:
        """Every prepared-but-undecided transaction, per shard.

        A control-plane snapshot of the replicas' intent tables (the
        primary's facet speaks for the shard): ``{shard_id: {txn_id:
        {"writes": ..., "tick": ...}}}``, empty mappings omitted.  Chaos
        tests assert this drains to nothing — no dangling intents — after
        crashes and recoveries.
        """
        with self._lock:
            report: Dict[ShardId, Dict[str, Dict[str, Any]]] = {}
            for shard_id, session in self._sessions.items():
                table = txns_of(session.state.facet_for(session.primary))
                if table:
                    report[shard_id] = {
                        txn_id: dict(entry) for txn_id, entry in table.items()
                    }
            return report

    def recover_in_doubt(self) -> Dict[str, str]:
        """Resolve every in-doubt transaction from the durable decision record.

        The coordinator side of 2PC crash recovery, run automatically when a
        durable cluster opens: every intent still parked on a shard (its
        participant prepared, then the world went down before the decide
        landed) is decided now — *commit* when the coordinator's decision
        log recorded one, *presumed abort* otherwise — through the ordinary
        decide choreography, so the resolution replicates and WAL-logs like
        any live decide.

        Returns:
            ``{txn_id: verdict}`` for every transaction resolved.
        """
        pending: List[Tuple[ShardId, str, Dict[str, Optional[str]]]] = []
        with self._lock:
            committed = dict(self._txn_log) if self._txn_log is not None else {}
            for shard_id, session in self._sessions.items():
                seen: Dict[str, Dict[str, Optional[str]]] = {}
                for replica in session.servers:
                    for txn_id, entry in txns_of(
                        session.state.facet_for(replica)
                    ).items():
                        seen.setdefault(txn_id, dict(entry["writes"]))
                for txn_id, writes in seen.items():
                    pending.append((shard_id, txn_id, writes))
        verdicts: Dict[str, str] = {}
        waits = []
        for shard_id, txn_id, writes in pending:
            verdict = "commit" if committed.get(txn_id) == "commit" else "abort"
            verdicts[txn_id] = verdict
            waits.append(self._submit(
                shard_id, "txn_decide", args=(txn_id, verdict, writes)
            ))
        for future in waits:
            future.result()
        return verdicts

    def submit_scan(self, prefix: str = "") -> Dict[ShardId, "Future[ChoreographyResult]"]:
        """Enqueue a prefix scan on *every* shard.

        Returns:
            One Future per shard; each resolves to a run whose client value
            is that shard's sorted ``(key, value)`` list.  Merging is the
            caller's business (:meth:`ClusterClient.scan` does a sorted
            merge).
        """
        return {
            shard_id: self._submit(shard_id, "scan", args=(prefix,))
            for shard_id in self.shards
        }

    def response_of(self, result: ChoreographyResult) -> Response:
        """Unwrap the client-side :class:`Response` from a shard run result."""
        return result.value_at(self.client)

    # ------------------------------------------------------------ observability --

    @property
    def stats(self) -> ChannelStats:
        """Cluster-wide message accounting: the merge of every shard's stats.

        Built with :meth:`ChannelStats.merge_all` over the per-shard engines'
        cumulative stats, so the rollup's totals equal the sum of the
        per-shard totals (shard censuses are disjoint apart from the shared
        client location *name*, and channels are keyed by (sender, receiver)
        names, so the client's channels aggregate across shards by design).
        """
        return ChannelStats.merge_all(
            session.engine.stats for session in self._sessions.values()
        )

    def per_shard_stats(self) -> Dict[ShardId, ChannelStats]:
        """Each shard engine's cumulative :class:`ChannelStats`, by shard id."""
        return {
            shard_id: session.engine.stats
            for shard_id, session in self._sessions.items()
        }

    @property
    def pending(self) -> int:
        """In-flight instances across all shard engines (0 = quiescent)."""
        return sum(session.engine.pending for session in self._sessions.values())

    def health(self) -> Dict[ShardId, ShardHealth]:
        """Every shard's replica liveness, as currently believed.

        Passive: reports what traffic-driven detection (and any
        :meth:`probe` calls) have established so far, without sending a
        message.  A replica the cluster has never seen fail is ``"up"``.

        Returns:
            ``{shard_id: ShardHealth}`` for every live shard; a shard with a
            demoted backup has ``health()[shard_id].degraded == True``.
        """
        with self._lock:
            return {
                shard_id: session.health()
                for shard_id, session in self._sessions.items()
            }

    def probe(self, shard_id: Optional[ShardId] = None, *,
              demote: bool = True) -> Dict[ShardId, Dict[Location, bool]]:
        """Actively check replica liveness with per-replica ping choreographies.

        Each configured replica (demoted ones included — a probe answering
        from a demoted replica is the operator's cue that the process is back
        and :meth:`rejoin_backup` can re-admit it) is sent one two-message
        :func:`~repro.protocols.kvs.kvs_ping`.  A replica that fails or
        times out is reported dead; probing a dead replica costs one receive
        timeout, so point ``shard_id`` at the shard you care about when the
        cluster is large.

        Args:
            shard_id: Probe only this shard; every shard when ``None``.
            demote: Also act on newly-confirmed-dead replicas, the same
                paths traffic-driven detection takes: a dead *backup* is
                demoted, a dead *primary* triggers a promotion of the senior
                surviving backup (with the usual epoch stamp and re-bind).

        Returns:
            ``{shard_id: {replica: alive}}`` for the probed shards.

        ``alive=False`` means "unreachable from the client", which is not
        proof the replica itself is dead — the failure could sit on the
        client's side of the channel.  Demotion (and promotion) therefore
        reuses the same blame-chain attribution as traffic-driven detection
        (:meth:`_suspect_replica`): only a failure whose blame chain sinks at
        the probed replica acts on it, so a flaky *client* link reports the
        replica unreachable without kicking a healthy replica out of the
        replica group.
        """
        with self._lock:
            if shard_id is None:
                targets = list(self._sessions.values())
            else:
                targets = [self._sessions[shard_id]]
        report: Dict[ShardId, Dict[Location, bool]] = {}
        for session in targets:
            alive: Dict[Location, bool] = {}
            for replica in session.servers:
                token = f"ping:{session.shard_id}:{replica}"
                culprit: Optional[Location] = None
                try:
                    result = session.engine.run(session.pings[replica], args=(token,))
                    alive[replica] = result.value_at(self.client) == token
                except ChoreographyRuntimeError as failure:
                    alive[replica] = False
                    culprit = self._suspect_replica(session.shard_id, failure)
                if demote and culprit == replica:
                    if replica == session.primary:
                        self._mark_primary_down(session.shard_id, replica)
                    else:
                        self._mark_backup_down(session.shard_id, replica)
            report[session.shard_id] = alive
        return report

    # ------------------------------------------------------------ control plane --

    def add_shard(self, shard_id: Optional[ShardId] = None) -> ShardId:
        """Grow the cluster by one shard and migrate the keys it takes over.

        The rebalance is the graceful path: a new warm session is opened, the
        ring gains the shard's points, and every key whose ring position now
        falls to the new shard is re-put through the ordinary replicated-put
        choreography (so the new shard's replicas are populated with the same
        message discipline as live traffic) and dropped from its old shard's
        replica stores.  Consistent hashing guarantees the surviving shards
        exchange nothing.

        The cluster must be quiescent: callers resolve their in-flight
        Futures first.

        Args:
            shard_id: Id for the new shard; auto-numbered when omitted.

        Returns:
            The new shard's id.

        Raises:
            ClusterClosed: If the cluster is closed.
            ClusterRebalancing: If another control-plane operation owns the
                cluster.  While *this* rebalance runs, racing submits get the
                same typed error instead of a Future that interleaves with
                (or hangs on) the migration.
            RuntimeError: If requests are still in flight (``pending != 0``).
            ValueError: If the shard id is already on the ring.
        """
        with self._lock:
            if self._closed:
                raise ClusterClosed("cannot rebalance a closed ClusterEngine")
            if self._control_op is not None:
                raise ClusterRebalancing(
                    f"cluster is already busy with {self._control_op}"
                )
            if self.pending:
                raise RuntimeError(
                    "rebalance requires a quiescent cluster; resolve in-flight "
                    f"futures first ({self.pending} still pending)"
                )
            self._control_op = "a shard rebalance"
        try:
            return self._rebalance(shard_id)
        finally:
            with self._lock:
                self._control_op = None

    def _rebalance(self, shard_id: Optional[ShardId]) -> ShardId:
        """The body of :meth:`add_shard`, run with ``_control_op`` held."""
        with self._lock:
            if shard_id is None:
                for index in itertools.count(len(self._sessions)):
                    shard_id = f"shard{index}"
                    if shard_id not in self._sessions:
                        break
            session = self._open_session(shard_id)
            self.router.add_shard(shard_id)
            self._sessions[shard_id] = session

            # Migrate: the primary's facet of each old shard is authoritative
            # for what that shard holds (control-plane read; the data plane is
            # quiescent).  Moved keys re-enter through the choreographic put.
            moves: List["Future[ChoreographyResult]"] = []
            moved_per_session: List["tuple[_ShardSession, List[str]]"] = []
            for old in self._sessions.values():
                if old.shard_id == shard_id:
                    continue
                primary_state = old.state.facet_for(old.primary)
                moved = [key for key in primary_state
                         if self.router.shard_for(key) == shard_id]
                moved_per_session.append((old, moved))
                for key in moved:
                    moves.append(session.engine.submit(session.put,
                                                       args=(key, primary_state[key])))
        # Copy-then-delete: the old replicas keep every moved key until the
        # new shard has acknowledged all of its re-puts, so a failed
        # migration leaves the data intact at its old home (the ring already
        # points at the new shard, but nothing has been destroyed).
        for future in moves:
            future.result()
        for old, moved in moved_per_session:
            for replica in old.servers:
                replica_state = old.state.facet_for(replica)
                for key in moved:
                    replica_state.pop(key, None)
        return shard_id

    def rejoin_backup(self, shard_id: ShardId, replica: Location) -> RejoinReport:
        """Re-admit a demoted replica as a backup: restart, catch up, re-bind.

        The recovery half of the failover story — for demoted backups *and*
        deposed primaries alike: an old head crashed out by a promotion sits
        in the same ``down`` list and comes back through this same call,
        catching up from the replica that usurped it (its diverged suffix is
        what the catch-up's hash-verified full-transfer fallback exists
        for) and re-entering as an ordinary backup, senior in census order.
        The replica must currently be demoted
        (``health()[shard_id].replicas[replica] == "down"``); the call then:

        1. **restarts** the replica's process model — on a fault-injected
           backend its crashed transport endpoints are revived
           (:meth:`~repro.faults.FaultSession.revive`), and its in-memory
           store is discarded and reopened from disk, which replays the
           snapshot + WAL suffix when the cluster is durable;
        2. **catches up** to the primary with the hash-verified
           :func:`~repro.protocols.kvs.kvs_catchup` choreography (a WAL
           delta when possible, a full transfer otherwise);
        3. **re-binds** the shard's data-plane choreographies with the
           restored membership — the same census-polymorphic re-binding
           demotion uses, run in reverse.

        The replica's :class:`ShardHealth` status walks ``down → rejoining →
        up``; on any failure it returns to ``down`` and the shard keeps
        serving degraded, exactly as before the attempt.

        Like :meth:`add_shard`, this is a quiescent-cluster control-plane
        operation: in-flight Futures must be resolved first, and submits
        racing the re-join are refused with :class:`ClusterRebalancing`.

        Args:
            shard_id: The shard whose replica group is being healed.
            replica: The demoted backup to re-admit.

        Returns:
            A :class:`RejoinReport` with the replay/catch-up costs — the
            recovery-time metrics ``benchmarks/bench_recovery.py`` tracks.

        Raises:
            ClusterClosed: If the cluster is closed.
            ClusterRebalancing: If another control-plane operation owns the
                cluster.
            RejoinError: If the replica is the primary or is not demoted, or
                the catch-up transfer could not be verified against the
                primary's store.
            RuntimeError: If requests are still in flight.
        """
        with self._lock:
            if self._closed:
                raise ClusterClosed("cannot rejoin on a closed ClusterEngine")
            if self._control_op is not None:
                raise ClusterRebalancing(
                    f"cluster is already busy with {self._control_op}"
                )
            session = self._sessions[shard_id]
            if replica == session.primary:
                raise RejoinError(
                    f"{replica!r} is the primary of {shard_id!r}; only demoted "
                    "backups can rejoin"
                )
            if replica not in session.down:
                raise RejoinError(
                    f"replica {replica!r} of shard {shard_id!r} is not demoted; "
                    "nothing to rejoin"
                )
            if self.pending:
                raise RuntimeError(
                    "rejoin requires a quiescent cluster; resolve in-flight "
                    f"futures first ({self.pending} still pending)"
                )
            self._control_op = f"rejoining {replica} into {shard_id}"
            session.begin_rejoin(replica)
        try:
            # 1. The dead process comes back: revive its crashed transport
            # endpoints (fault-injected backends) and recover its store from
            # disk.  Opening the DurableState *is* the replay.
            faults = getattr(session.engine.transport, "faults", None)
            if faults is not None:
                faults.revive(replica)
            started = time.perf_counter()
            fresh = session.restart_replica_state(replica)
            replayed = getattr(fresh, "replayed_records", 0)
            replay_seconds = time.perf_counter() - started

            # 2. Close the gap to the primary, hash-verified end to end.  The
            # binding names the *current* head and carries the current epoch:
            # a deposed primary re-joining here catches up FROM its usurper,
            # and a promotion racing the transfer fences it like any other
            # stale binding instead of letting it stream from a dead head.
            started = time.perf_counter()
            catchup = shard_catchup.bind(
                self.client, session.primary, replica, session.state,
                name=f"shard_catchup@{shard_id}:{replica}",
                epoch=session.epoch, fence=session.fence,
            )
            report: CatchupReport = session.engine.run(catchup).value_at(self.client)
            catchup_seconds = time.perf_counter() - started
            if not report.verified:
                raise RejoinError(
                    f"catch-up for {replica!r} could not be verified against "
                    f"the primary ({report.mode} transfer, "
                    f"fell_back={report.fell_back})"
                )

            # 3. Restore membership; the shard serves replicated again.  A
            # durable rejoiner is stamped with the current epoch first: a
            # delta transfer replayed the head's promotion records, but a
            # full transfer installs items only, and the re-admitted replica
            # must recover the promoted head on a later cluster restart.
            with self._lock:
                if session.epoch:
                    facet = session.state.facet_for(replica)
                    if isinstance(facet, DurableState):
                        facet.log_promotion(session.epoch, session.primary)
                session.finish_rejoin(replica)
                rejoin = RejoinReport(
                    shard_id=shard_id, replica=replica,
                    replayed_records=replayed, replay_seconds=replay_seconds,
                    catchup_seconds=catchup_seconds, mode=report.mode,
                    fell_back=report.fell_back,
                )
                self.rejoins.append(rejoin)
            return rejoin
        except BaseException:
            with self._lock:
                session.abort_rejoin(replica)
            raise
        finally:
            with self._lock:
                self._control_op = None

    def close(self) -> None:
        """Close every shard session (idempotent); pending work drains first.

        Racing submits that arrive once the flag is set get a typed
        :class:`ClusterClosed` instead of a Future enqueued on a dying
        engine.  Durable stores are flushed and closed *after* their engine
        has drained, so the WAL holds every acknowledged mutation.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions.values())
            txn_log = self._txn_log
        for session in sessions:
            session.engine.close()
            session.close_storage()
        if txn_log is not None:
            txn_log.close()

    def __enter__(self) -> "ClusterEngine":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ClusterEngine(shards={list(self.shards)!r}, "
            f"replication={self.replication}, client={self.client!r})"
        )


def rejoin_backup(
    cluster: ClusterEngine, shard_id: ShardId, replica: Location
) -> RejoinReport:
    """Re-admit a demoted backup into ``cluster``'s replica group.

    A free-function spelling of :meth:`ClusterEngine.rejoin_backup`, exported
    at the package top level for operator scripts::

        from repro import rejoin_backup
        report = rejoin_backup(cluster, "shard0", "shard0.r1")
    """
    return cluster.rejoin_backup(shard_id, replica)
