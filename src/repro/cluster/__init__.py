"""Sharded key-value service built from census-polymorphic choreographies.

The paper's primitives — parameterized replica groups
(:func:`~repro.protocols.kvs.kvs_with_backups`), quorum-style voting, and
:func:`~repro.protocols.kvs.resynch` repair — are exactly the building blocks
of a horizontally sharded service.  This package assembles them:

* :class:`~repro.cluster.router.ShardRouter` — a deterministic
  consistent-hash ring mapping keys to shards (stable under shard
  addition);
* :class:`~repro.cluster.engine.ClusterEngine` — one warm
  :class:`~repro.runtime.engine.ChoreoEngine` per shard, pipelined
  ``submit_*`` calls multiplexed across them, per-shard
  :class:`~repro.runtime.stats.ChannelStats` rolled up cluster-wide, and a
  graceful ``add_shard`` rebalance;
* :class:`~repro.cluster.client.ClusterClient` — the ``put``/``get``/``scan``
  facade, with quorum-read and read-repair options and retrying idempotent
  reads.

The cluster degrades rather than dies: a backup that stops answering is
detected (through typed receive timeouts or an active
:meth:`~repro.cluster.engine.ClusterEngine.probe`), demoted, and routed
around via the zero-backup degradation path of
:func:`~repro.protocols.kvs.kvs_with_backups`, with in-flight submits
replayed against the shrunken replica group;
:meth:`~repro.cluster.engine.ClusterEngine.health` reports per-replica
up/down state.  ``tests/test_cluster_failover.py`` chaos-tests all of this
under seeded :class:`~repro.faults.FaultPlan` schedules.

See ``docs/architecture.md`` for the layer map and the message flow of a
sharded put, ``docs/testing.md`` for the chaos-testing guide, and
``benchmarks/bench_cluster.py`` for the YCSB-style workload that measures
shard scaling.
"""

from .client import ClusterClient
from .engine import ClusterEngine, ShardHealth, shard_get, shard_ping, shard_put, shard_scan
from .router import DEFAULT_VNODES, ShardRouter

__all__ = [
    "DEFAULT_VNODES",
    "ClusterClient",
    "ClusterEngine",
    "ShardHealth",
    "ShardRouter",
    "shard_get",
    "shard_ping",
    "shard_put",
    "shard_scan",
]
