"""Sharded key-value service built from census-polymorphic choreographies.

The paper's primitives — parameterized replica groups
(:func:`~repro.protocols.kvs.kvs_with_backups`), quorum-style voting, and
:func:`~repro.protocols.kvs.resynch` repair — are exactly the building blocks
of a horizontally sharded service.  This package assembles them:

* :class:`~repro.cluster.router.ShardRouter` — a deterministic
  consistent-hash ring mapping keys to shards (stable under shard
  addition);
* :class:`~repro.cluster.engine.ClusterEngine` — one warm
  :class:`~repro.runtime.engine.ChoreoEngine` per shard, pipelined
  ``submit_*`` calls multiplexed across them, per-shard
  :class:`~repro.runtime.stats.ChannelStats` rolled up cluster-wide, and a
  graceful ``add_shard`` rebalance;
* :class:`~repro.cluster.client.ClusterClient` — the ``put``/``get``/``scan``
  facade, with quorum-read and read-repair options and retrying idempotent
  reads.

The cluster degrades rather than dies — and heals.  A backup that stops
answering is detected (through typed receive timeouts or an active
:meth:`~repro.cluster.engine.ClusterEngine.probe`), demoted, and routed
around via the zero-backup degradation path of
:func:`~repro.protocols.kvs.kvs_with_backups`, with in-flight submits
replayed against the shrunken replica group.  A dead *primary* is failed
over the same way: the senior surviving backup is promoted to head, the
shard's epoch is bumped and stamped into every surviving durable replica's
WAL, stale-epoch bindings are fenced with the typed
:class:`~repro.protocols.kvs.StaleEpoch` (no split brain), and the
promotion is recorded as a
:class:`~repro.cluster.engine.PromotionReport`.  With a ``durability=``
configuration (:class:`~repro.storage.Durability`) every replica store is
write-ahead logged and snapshotted, and
:meth:`~repro.cluster.engine.ClusterEngine.rejoin_backup` re-admits a
crashed, restarted replica — deposed primaries included, which re-enter as
backups: WAL replay, a hash-verified
:func:`~repro.protocols.kvs.kvs_catchup` transfer, and a re-bind with the
restored membership.  :meth:`~repro.cluster.engine.ClusterEngine.health`
reports per-replica ``up``/``down``/``rejoining`` state plus each shard's
epoch and role assignment.
Cross-shard writes get atomicity through choreographic two-phase commit:
:meth:`~repro.cluster.engine.ClusterEngine.submit_txn` prepares per-key
write intents on every participating shard (the ``kvs_txn_prepare``
conclave), records the commit verdict in a durable coordinator decision
log, then fans out ``kvs_txn_decide`` — all-or-nothing across shards, with
presumed-abort recovery (:meth:`~repro.cluster.engine.ClusterEngine.recover_in_doubt`)
for transactions caught in flight by a coordinator crash.  Aborts surface
as the typed :class:`~repro.cluster.engine.TxnConflict` /
:class:`~repro.cluster.engine.TxnAborted`.
``tests/test_cluster_failover.py``, ``tests/test_cluster_promotion.py``,
``tests/test_cluster_recovery.py``, and ``tests/test_cluster_txn.py``
chaos-test all of this under seeded :class:`~repro.faults.FaultPlan`
schedules.

See ``docs/architecture.md`` for the layer map and the message flow of a
sharded put, ``docs/durability.md`` for the persistence and recovery
walkthrough, ``docs/testing.md`` for the chaos-testing guide, and
``benchmarks/bench_cluster.py`` for the YCSB-style workload that measures
shard scaling.
"""

from .client import ClusterClient
from .engine import (
    ClusterClosed,
    ClusterEngine,
    ClusterRebalancing,
    PromotionReport,
    RejoinError,
    RejoinReport,
    ShardHealth,
    TxnAborted,
    TxnConflict,
    TxnResult,
    rejoin_backup,
    shard_catchup,
    shard_delete,
    shard_get,
    shard_ping,
    shard_put,
    shard_scan,
    shard_txn_decide,
    shard_txn_prepare,
)
from .router import DEFAULT_VNODES, ShardRouter

__all__ = [
    "DEFAULT_VNODES",
    "ClusterClient",
    "ClusterClosed",
    "ClusterEngine",
    "ClusterRebalancing",
    "PromotionReport",
    "RejoinError",
    "RejoinReport",
    "ShardHealth",
    "ShardRouter",
    "TxnAborted",
    "TxnConflict",
    "TxnResult",
    "rejoin_backup",
    "shard_catchup",
    "shard_delete",
    "shard_get",
    "shard_ping",
    "shard_put",
    "shard_scan",
    "shard_txn_decide",
    "shard_txn_prepare",
]
