"""Consistent-hash routing of keys to shards.

A sharded key-value service needs a key → shard mapping that is

* **deterministic across processes** — every client and every server must
  agree on where a key lives without coordination, so the hash cannot be
  Python's salted builtin ``hash``;
* **stable under membership change** — adding a shard must move only the
  keys the new shard takes over (≈ ``1/(n+1)`` of the keyspace), never
  reshuffle the survivors among themselves.

:class:`ShardRouter` provides both with a classic consistent-hash ring:
every shard contributes :attr:`~ShardRouter.vnodes` points (virtual nodes)
on a 64-bit ring, a key routes to the first shard point at or after the
key's own hash (wrapping at the top), and virtual nodes keep the expected
load per shard balanced even for small clusters.

The router maps keys to *shard ids* only.  What a shard id denotes — a
census of replica locations, a warm :class:`~repro.runtime.engine.ChoreoEngine`
session — is the cluster layer's business (:mod:`repro.cluster.engine`);
keeping the ring free of any transport state is what makes it cheap to hold
a copy anywhere a routing decision is needed.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple, Union

#: Default number of ring points contributed per shard.  64 keeps the
#: max/min load ratio across shards within a few percent for realistic key
#: counts while the whole ring for a 16-shard cluster stays ~1k entries.
DEFAULT_VNODES = 64

ShardId = str


def _ring_hash(data: str) -> int:
    """A process-independent 64-bit hash used for ring points and keys.

    blake2b is deterministic (unlike ``hash(str)``, which is salted per
    process), fast for short inputs, and uniformly distributed.
    """
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRouter:
    """A consistent-hash ring mapping keys to shard ids.

    Args:
        shards: The initial shards: either a count (shards are named
            ``"shard0"`` … ``"shardN-1"``) or an explicit sequence of shard
            ids.  At least one shard is required.
        vnodes: Ring points per shard; higher values smooth the load
            distribution at the cost of a larger ring.

    Raises:
        ValueError: On zero shards, duplicate shard ids, or ``vnodes < 1``.

    Two routers built with the same shard ids (added in the same order) and
    the same ``vnodes`` agree on every key, in every process — pinned by
    ``tests/test_cluster.py``.
    """

    def __init__(self, shards: Union[int, Sequence[ShardId]] = 4, *, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self._vnodes = vnodes
        self._shards: List[ShardId] = []
        self._points: List[int] = []
        self._owners: List[ShardId] = []
        if isinstance(shards, int):
            shard_ids: Sequence[ShardId] = [f"shard{i}" for i in range(shards)]
        else:
            shard_ids = list(shards)
        if not shard_ids:
            raise ValueError("a ShardRouter needs at least one shard")
        for shard_id in shard_ids:
            self.add_shard(shard_id)

    # ------------------------------------------------------------------ lookup --

    @property
    def shards(self) -> Tuple[ShardId, ...]:
        """The shard ids, in the order they were added."""
        return tuple(self._shards)

    @property
    def vnodes(self) -> int:
        """Ring points contributed per shard."""
        return self._vnodes

    def shard_for(self, key: str) -> ShardId:
        """The shard responsible for ``key``.

        Args:
            key: Any string key.

        Returns:
            The id of the shard owning the first ring point at or after the
            key's hash (wrapping past the top of the ring).
        """
        index = bisect.bisect_left(self._points, _ring_hash(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def assignment(self, keys: Iterable[str]) -> Dict[str, ShardId]:
        """Route many keys at once.

        Returns:
            ``{key: shard_id}`` for every key given.
        """
        return {key: self.shard_for(key) for key in keys}

    # -------------------------------------------------------------- membership --

    def add_shard(self, shard_id: ShardId) -> None:
        """Add a shard's ring points.

        Only keys whose first-point-at-or-after now belongs to ``shard_id``
        change owner; every other key keeps its shard — the ring-stability
        property a rebalance relies on.

        Args:
            shard_id: The new shard's id.

        Raises:
            ValueError: If the shard is already on the ring.
        """
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id!r} is already on the ring")
        self._shards.append(shard_id)
        for vnode in range(self._vnodes):
            point = _ring_hash(f"{shard_id}#{vnode}")
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, shard_id)

    def remove_shard(self, shard_id: ShardId) -> None:
        """Remove a shard's ring points; its key ranges fall to the survivors.

        Args:
            shard_id: The shard to remove.

        Raises:
            ValueError: If the shard is not on the ring, or it is the last
                one (an empty ring cannot route).
        """
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id!r} is not on the ring")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.remove(shard_id)
        kept = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != shard_id
        ]
        self._points = [point for point, _owner in kept]
        self._owners = [owner for _point, owner in kept]

    def __len__(self) -> int:
        return len(self._shards)

    def __repr__(self) -> str:
        return f"ShardRouter(shards={self._shards!r}, vnodes={self._vnodes})"
