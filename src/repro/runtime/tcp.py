"""TCP transport: endpoints exchange length-prefixed messages over localhost.

The paper's libraries run the same choreography unchanged over HTTP(S) between
machines or over channels between threads.  This transport provides the
socket-based half of that story without requiring a network: every location
listens on a loopback port and each endpoint demultiplexes incoming frames
into per-sender FIFO queues so the ``recv(sender)`` discipline matches the
abstract transport exactly.

Frames are laid out as
``[u32 length][u16 sender-length][sender][uvarint instance][payload]`` where
``sender`` is the wire-encoded sender location, ``instance`` is the
choreography-instance id (0 for one-shot sends; used by the persistent
engine to demultiplex pipelined instances), and ``payload`` is the
:func:`~repro.runtime.transport.serialize`-d message — so the payload is
serialized exactly once per send (shared across all receivers of a
``send_many``), the instance tag rides in the frame header like the sender
does, and the byte count recorded in
:class:`~repro.runtime.stats.ChannelStats` is the exact payload byte count on
the wire.  The format lives in :mod:`repro.runtime.framing`, shared with the
asyncio backend (:mod:`repro.runtime.asyncio_tcp`), so the two socket
backends interoperate byte for byte on the same wire.

Both directions of the hot path are *coalesced* so that syscall count, not
byte count, stops being the bottleneck for small-message storms:

* **Writes are deferred.**  ``send``/``send_many``/``*_scoped`` append
  pre-framed bytes (a precomputed per-endpoint sender prefix; no header
  rebuild per send) to a per-receiver write buffer.  A buffer drains on an
  explicit :meth:`~repro.runtime.transport.TransportEndpoint.flush`, once its
  pending bytes pass :data:`~repro.runtime.transport.FLUSH_WATERMARK`, and
  always before this endpoint blocks in a receive (the flush-before-block
  rule that keeps coalescing deadlock-free).  A drain writes *many frames in
  one* ``sendmsg`` writev per live connection instead of one syscall per
  ``(receiver, message)``.
* **Reads are buffered.**  The per-connection reader pulls up to 64 KiB per
  ``recv`` and parses every complete frame in the chunk through one
  ``memoryview`` (zero-copy slicing; one ``bytes`` copy per payload as it
  enters the inbox), instead of two-plus ``recv`` syscalls per frame.

Sockets run with ``TCP_NODELAY``, so an explicit flush hits the wire
immediately; reader threads drain the kernel buffers independently of the
application's ``recv`` discipline, so a flush (or watermark drain) can never
distributed-deadlock against a peer's un-flushed buffer.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Dict, List

from ..core.errors import TransportError
from ..core.locations import Location, LocationsLike
from .framing import FrameCorruption, FramedCoalescingEndpoint, FrameParser
from .transport import DEFAULT_TIMEOUT, Transport, TransportEndpoint

#: Bytes asked of the kernel per reader-loop ``recv``.
_READ_CHUNK = 64 * 1024

#: Buffers handed to one ``sendmsg``; comfortably under any platform IOV_MAX
#: (Linux: 1024) while still coalescing hundreds of frames per syscall.
_IOV_BATCH = 512


def _send_buffers(sock: socket.socket, buffers: List[bytes]) -> None:
    """Write ``buffers`` to ``sock`` as writev batches, finishing short writes."""
    for start in range(0, len(buffers), _IOV_BATCH):
        batch = buffers[start:start + _IOV_BATCH]
        total = sum(len(buffer) for buffer in batch)
        sent = sock.sendmsg(batch)
        if sent < total:  # pragma: no cover - kernel-buffer dependent
            sock.sendall(b"".join(batch)[sent:])


class _TCPEndpoint(FramedCoalescingEndpoint):
    """One location's listening socket plus outgoing connections."""

    def __init__(self, location: Location, transport: "TCPTransport", timeout: float):
        # The framed base supplies the per-peer inboxes, the frame-header
        # builder, and the serialize-once send paths (repro.runtime.framing).
        super().__init__(location, transport, timeout)
        # The coalescing base class supplies the write buffers; ``_out_lock``
        # (also from the base) additionally guards this socket cache — but
        # never connection setup: a slow connect must not serialize sends.
        self._out_sockets: Dict[Location, socket.socket] = {}
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(len(transport.census) + 4)
        self.port = self._server.getsockname()[1]
        self._closed = threading.Event()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"tcp-accept-{location}", daemon=True
        )
        self._accept_thread.start()

    # -- incoming ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._reader_loop, args=(conn,), daemon=True,
                name=f"tcp-read-{self.location}",
            ).start()

    def _reader_loop(self, conn: socket.socket) -> None:
        """Buffered frame reader: one ``recv`` yields every frame it contains.

        Pulls up to :data:`_READ_CHUNK` bytes per syscall and hands them to
        the shared incremental :class:`~repro.runtime.framing.FrameParser`
        (memoryview slicing, one ``bytes`` copy per payload, a trailing
        partial frame buffered for the next chunk).  A stream that stops
        parsing — a runaway varint, an undecodable sender — poisons every
        inbox with the typed :class:`FrameCorruption` and drops the
        connection, so blocked receivers fail loudly rather than timing out.
        """
        parser = FrameParser()
        with conn:
            while not self._closed.is_set():
                try:
                    chunk = conn.recv(_READ_CHUNK)
                except OSError:
                    return
                if not chunk:
                    return
                try:
                    frames = parser.feed(chunk)
                except FrameCorruption as exc:
                    self._poison_inboxes(exc)
                    return
                for sender, instance, payload in frames:
                    inbox = self._inboxes.get(sender)
                    if inbox is not None:
                        inbox.put((instance, payload))

    # -- outgoing ------------------------------------------------------------------

    def _connection_to(self, receiver: Location) -> socket.socket:
        """The (cached) outgoing connection to ``receiver``.

        Only the cache dict is touched under ``_out_lock``; the connect
        itself happens outside it, so one slow peer cannot serialize sends
        (or flushes) to every other receiver behind a global lock.
        """
        with self._out_lock:
            sock = self._out_sockets.get(receiver)
        if sock is not None:
            return sock
        port = self._transport.port_of(receiver)
        sock = socket.create_connection(("127.0.0.1", port), timeout=self._timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._out_lock:
            raced = self._out_sockets.get(receiver)
            if raced is not None:  # pragma: no cover - depends on thread timing
                try:
                    sock.close()
                except OSError:
                    pass
                return raced
            self._out_sockets[receiver] = sock
        return sock

    def _deliver(self, receiver: Location, batch: List[bytes]) -> None:
        """A drained batch goes out as writev calls: many frames, few syscalls."""
        try:
            _send_buffers(self._connection_to(receiver), batch)
        except OSError as exc:
            raise TransportError(
                f"{self.location!r} failed to send to {receiver!r}: {exc}"
            ) from exc

    def close(self) -> None:
        self._closed.set()
        try:
            self._server.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self._discard_buffers()
        with self._out_lock:
            for sock in self._out_sockets.values():
                try:
                    sock.close()
                except OSError:  # pragma: no cover - defensive
                    pass
            self._out_sockets.clear()


class TCPTransport(Transport):
    """Socket-based transport over the loopback interface.

    All endpoints must be created (via :meth:`endpoint`) before any of them
    sends, so that every listener's port is known; :func:`repro.runtime.runner.
    run_choreography` does this automatically.

    ``faults`` takes a :class:`repro.faults.FaultPlan`: every endpoint is
    then wrapped in a :class:`repro.faults.FaultyEndpoint` injecting the
    plan's delays, reorders, crashes, and connect flakes (real ``time.sleep``
    delays on this backend).  The live :class:`repro.faults.FaultSession` is
    exposed as :attr:`faults`.
    """

    def __init__(
        self,
        census: LocationsLike,
        timeout: float = DEFAULT_TIMEOUT,
        *,
        faults: "Any | None" = None,
    ):
        super().__init__(census, timeout)
        self.faults = faults.session() if faults is not None else None

    def _make_endpoint(self, location: Location) -> TransportEndpoint:
        endpoint: TransportEndpoint = _TCPEndpoint(location, self, self.timeout)
        if self.faults is not None:
            endpoint = self.faults.wrap(endpoint)
        return endpoint

    def port_of(self, location: Location) -> int:
        """The loopback port ``location`` listens on."""
        endpoint = self.endpoint(location)
        return endpoint.port  # type: ignore[attr-defined]

    def close(self) -> None:
        for endpoint in self._endpoints.values():
            endpoint.close()  # type: ignore[attr-defined]
