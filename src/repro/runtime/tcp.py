"""TCP transport: endpoints exchange length-prefixed messages over localhost.

The paper's libraries run the same choreography unchanged over HTTP(S) between
machines or over channels between threads.  This transport provides the
socket-based half of that story without requiring a network: every location
listens on a loopback port, messages are length-prefixed pickled frames tagged
with the sender, and each endpoint demultiplexes incoming frames into
per-sender FIFO queues so the ``recv(sender)`` discipline matches the abstract
transport exactly.
"""

from __future__ import annotations

import queue
import socket
import struct
import threading
from typing import Any, Dict, Optional, Tuple

from ..core.errors import TransportError
from ..core.locations import Location, LocationsLike
from .transport import DEFAULT_TIMEOUT, Transport, TransportEndpoint, deserialize, serialize

_HEADER = struct.Struct("!I")


def _send_frame(sock: socket.socket, data: bytes) -> None:
    sock.sendall(_HEADER.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, size: int) -> Optional[bytes]:
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class _TCPEndpoint(TransportEndpoint):
    """One location's listening socket plus outgoing connections."""

    def __init__(self, location: Location, transport: "TCPTransport", timeout: float):
        super().__init__(location, transport.stats, timeout)
        self._transport = transport
        self._inboxes: Dict[Location, "queue.SimpleQueue[bytes]"] = {
            peer: queue.SimpleQueue() for peer in transport.census if peer != location
        }
        self._out_sockets: Dict[Location, socket.socket] = {}
        self._out_lock = threading.Lock()
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(len(transport.census) + 4)
        self.port = self._server.getsockname()[1]
        self._closed = threading.Event()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"tcp-accept-{location}", daemon=True
        )
        self._accept_thread.start()

    # -- incoming ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return
            threading.Thread(
                target=self._reader_loop, args=(conn,), daemon=True,
                name=f"tcp-read-{self.location}",
            ).start()

    def _reader_loop(self, conn: socket.socket) -> None:
        with conn:
            while not self._closed.is_set():
                header = _recv_exact(conn, _HEADER.size)
                if header is None:
                    return
                (length,) = _HEADER.unpack(header)
                frame = _recv_exact(conn, length)
                if frame is None:
                    return
                sender, payload = deserialize(frame)
                if sender in self._inboxes:
                    self._inboxes[sender].put(payload)

    # -- outgoing ------------------------------------------------------------------

    def _connection_to(self, receiver: Location) -> socket.socket:
        with self._out_lock:
            sock = self._out_sockets.get(receiver)
            if sock is None:
                port = self._transport.port_of(receiver)
                sock = socket.create_connection(("127.0.0.1", port), timeout=self._timeout)
                self._out_sockets[receiver] = sock
            return sock

    def send(self, receiver: Location, payload: Any) -> None:
        if receiver not in self._transport.census:
            raise TransportError(f"unknown receiver {receiver!r}")
        data = serialize(payload)
        self._record(receiver, len(data))
        try:
            _send_frame(self._connection_to(receiver), serialize((self.location, payload)))
        except OSError as exc:
            raise TransportError(
                f"{self.location!r} failed to send to {receiver!r}: {exc}"
            ) from exc

    def recv(self, sender: Location) -> Any:
        if sender not in self._inboxes:
            raise TransportError(f"unknown sender {sender!r}")
        try:
            return self._inboxes[sender].get(timeout=self._timeout)
        except queue.Empty:
            raise TransportError(
                f"{self.location!r} timed out after {self._timeout}s waiting for a "
                f"message from {sender!r}"
            ) from None

    def close(self) -> None:
        self._closed.set()
        try:
            self._server.close()
        except OSError:  # pragma: no cover - defensive
            pass
        with self._out_lock:
            for sock in self._out_sockets.values():
                try:
                    sock.close()
                except OSError:  # pragma: no cover - defensive
                    pass
            self._out_sockets.clear()


class TCPTransport(Transport):
    """Socket-based transport over the loopback interface.

    All endpoints must be created (via :meth:`endpoint`) before any of them
    sends, so that every listener's port is known; :func:`repro.runtime.runner.
    run_choreography` does this automatically.
    """

    def __init__(self, census: LocationsLike, timeout: float = DEFAULT_TIMEOUT):
        super().__init__(census, timeout)

    def _make_endpoint(self, location: Location) -> TransportEndpoint:
        return _TCPEndpoint(location, self, self.timeout)

    def port_of(self, location: Location) -> int:
        """The loopback port ``location`` listens on."""
        endpoint = self.endpoint(location)
        return endpoint.port  # type: ignore[attr-defined]

    def close(self) -> None:
        for endpoint in self._endpoints.values():
            endpoint.close()  # type: ignore[attr-defined]
