"""TCP transport: endpoints exchange length-prefixed messages over localhost.

The paper's libraries run the same choreography unchanged over HTTP(S) between
machines or over channels between threads.  This transport provides the
socket-based half of that story without requiring a network: every location
listens on a loopback port and each endpoint demultiplexes incoming frames
into per-sender FIFO queues so the ``recv(sender)`` discipline matches the
abstract transport exactly.

Frames are laid out as
``[u32 length][u16 sender-length][sender][uvarint instance][payload]`` where
``sender`` is the wire-encoded sender location, ``instance`` is the
choreography-instance id (0 for one-shot sends; used by the persistent
engine to demultiplex pipelined instances), and ``payload`` is the
:func:`~repro.runtime.transport.serialize`-d message — so the payload is
serialized exactly once per send (shared across all receivers of a
``send_many``), the instance tag rides in the frame header like the sender
does, and the byte count recorded in
:class:`~repro.runtime.stats.ChannelStats` is the exact payload byte count on
the wire.  Sockets run with ``TCP_NODELAY`` and each frame goes out as one
``sendmsg`` writev (header + payload scatter/gather), so small frames are
neither delayed by Nagle's algorithm nor copied into a concatenated buffer.
"""

from __future__ import annotations

import queue
import socket
import struct
import threading
from typing import Any, Dict, Iterable, List, Optional

from ..core.errors import TransportError
from ..core.locations import Location, LocationsLike
from . import wire
from .transport import DEFAULT_TIMEOUT, Transport, TransportEndpoint, deserialize, serialize

_LENGTH = struct.Struct("!I")
_SENDER_LENGTH = struct.Struct("!H")


def _send_buffers(sock: socket.socket, buffers: List[bytes]) -> None:
    """Write ``buffers`` to ``sock`` as one writev, finishing any short write."""
    total = sum(len(buffer) for buffer in buffers)
    sent = sock.sendmsg(buffers)
    if sent < total:  # pragma: no cover - kernel-buffer dependent
        sock.sendall(b"".join(buffers)[sent:])


def _recv_exact(sock: socket.socket, size: int) -> Optional[bytes]:
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class _TCPEndpoint(TransportEndpoint):
    """One location's listening socket plus outgoing connections."""

    def __init__(self, location: Location, transport: "TCPTransport", timeout: float):
        super().__init__(location, transport.stats, timeout)
        self._transport = transport
        # Inbox items are ``(instance, payload bytes)`` pairs.
        self._inboxes: Dict[Location, "queue.SimpleQueue[tuple]"] = {
            peer: queue.SimpleQueue() for peer in transport.census if peer != location
        }
        self._sender_tag = wire.encode(location)
        self._out_sockets: Dict[Location, socket.socket] = {}
        self._out_lock = threading.Lock()
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind(("127.0.0.1", 0))
        self._server.listen(len(transport.census) + 4)
        self.port = self._server.getsockname()[1]
        self._closed = threading.Event()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"tcp-accept-{location}", daemon=True
        )
        self._accept_thread.start()

    # -- incoming ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._reader_loop, args=(conn,), daemon=True,
                name=f"tcp-read-{self.location}",
            ).start()

    def _reader_loop(self, conn: socket.socket) -> None:
        with conn:
            while not self._closed.is_set():
                header = _recv_exact(conn, _LENGTH.size)
                if header is None:
                    return
                (length,) = _LENGTH.unpack(header)
                frame = _recv_exact(conn, length)
                if frame is None:
                    return
                (sender_length,) = _SENDER_LENGTH.unpack_from(frame)
                sender_end = _SENDER_LENGTH.size + sender_length
                sender = wire.decode(frame[_SENDER_LENGTH.size:sender_end])
                instance, body_start = wire.read_uvarint(frame, sender_end)
                if sender in self._inboxes:
                    self._inboxes[sender].put((instance, frame[body_start:]))

    # -- outgoing ------------------------------------------------------------------

    def _connection_to(self, receiver: Location) -> socket.socket:
        with self._out_lock:
            sock = self._out_sockets.get(receiver)
            if sock is None:
                port = self._transport.port_of(receiver)
                sock = socket.create_connection(("127.0.0.1", port), timeout=self._timeout)
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self._out_sockets[receiver] = sock
            return sock

    def _frame_header(self, payload: bytes, instance: int) -> bytes:
        """The ``[length][sender-length][sender][instance]`` prefix for ``payload``."""
        header = bytearray()
        header += _SENDER_LENGTH.pack(len(self._sender_tag))
        header += self._sender_tag
        wire.write_uvarint(header, instance)
        return _LENGTH.pack(len(header) + len(payload)) + bytes(header)

    def _send_serialized(self, receiver: Location, data: bytes, instance: int = 0) -> None:
        if receiver not in self._transport.census:
            raise TransportError(f"unknown receiver {receiver!r}")
        self._record(receiver, len(data))
        try:
            _send_buffers(
                self._connection_to(receiver), [self._frame_header(data, instance), data]
            )
        except OSError as exc:
            raise TransportError(
                f"{self.location!r} failed to send to {receiver!r}: {exc}"
            ) from exc

    def send(self, receiver: Location, payload: Any) -> None:
        self._send_serialized(receiver, serialize(payload))

    def send_scoped(self, receiver: Location, instance: int, payload: Any) -> None:
        self._send_serialized(receiver, serialize(payload), instance)

    def send_many(self, receivers: Iterable[Location], payload: Any) -> None:
        self.send_many_scoped(receivers, 0, payload)

    def send_many_scoped(
        self, receivers: Iterable[Location], instance: int, payload: Any
    ) -> None:
        targets = list(receivers)
        for receiver in targets:  # all-or-nothing: validate before the first frame
            if receiver not in self._transport.census:
                raise TransportError(f"unknown receiver {receiver!r}")
        data = serialize(payload)  # one serialization shared by all receivers
        for receiver in targets:
            self._send_serialized(receiver, data, instance)

    def _recv_serialized(self, sender: Location) -> "tuple[int, bytes]":
        if sender not in self._inboxes:
            raise TransportError(f"unknown sender {sender!r}")
        try:
            return self._inboxes[sender].get(timeout=self._timeout)
        except queue.Empty:
            raise TransportError(
                f"{self.location!r} timed out after {self._timeout}s waiting for a "
                f"message from {sender!r}"
            ) from None

    def recv(self, sender: Location) -> Any:
        _instance, data = self._recv_serialized(sender)
        return deserialize(data)

    def recv_scoped(self, sender: Location) -> "tuple[int, Any]":
        instance, data = self._recv_serialized(sender)
        return instance, deserialize(data)

    def close(self) -> None:
        self._closed.set()
        try:
            self._server.close()
        except OSError:  # pragma: no cover - defensive
            pass
        with self._out_lock:
            for sock in self._out_sockets.values():
                try:
                    sock.close()
                except OSError:  # pragma: no cover - defensive
                    pass
            self._out_sockets.clear()


class TCPTransport(Transport):
    """Socket-based transport over the loopback interface.

    All endpoints must be created (via :meth:`endpoint`) before any of them
    sends, so that every listener's port is known; :func:`repro.runtime.runner.
    run_choreography` does this automatically.
    """

    def __init__(self, census: LocationsLike, timeout: float = DEFAULT_TIMEOUT):
        super().__init__(census, timeout)

    def _make_endpoint(self, location: Location) -> TransportEndpoint:
        return _TCPEndpoint(location, self, self.timeout)

    def port_of(self, location: Location) -> int:
        """The loopback port ``location`` listens on."""
        endpoint = self.endpoint(location)
        return endpoint.port  # type: ignore[attr-defined]

    def close(self) -> None:
        for endpoint in self._endpoints.values():
            endpoint.close()  # type: ignore[attr-defined]
