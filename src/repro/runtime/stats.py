"""Message accounting.

Every experiment in the paper's efficiency story (broadcast KoC vs
conclaves-&-MLVs, KoC re-use, census-polymorphic scaling) reduces to *which
messages were sent*.  :class:`ChannelStats` records exactly that: a count and
byte total per ordered (sender, receiver) pair, thread-safely, so both the
projected runtime and the centralized reference semantics can report
communication costs on the same scale.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from ..core.locations import Location

Channel = Tuple[Location, Location]


def record_broadcast_on(
    sink: object, sender: Location, receivers: Iterable[Location], nbytes: int
) -> None:
    """Record one ``nbytes`` message to each receiver on an arbitrary sink.

    The one place that knows the batched-accounting duck-type: sinks offering
    ``record_broadcast`` (a :class:`ChannelStats`, the engine's stats tee)
    take it in one call; minimal sinks fall back to per-receiver ``record``.
    """
    record_broadcast = getattr(sink, "record_broadcast", None)
    if record_broadcast is not None:
        record_broadcast(sender, receivers, nbytes)
    else:
        for receiver in receivers:
            sink.record(sender, receiver, nbytes)  # type: ignore[attr-defined]


@dataclass
class ChannelStats:
    """Counts of messages and payload bytes per directed channel."""

    messages: Dict[Channel, int] = field(default_factory=dict)
    payload_bytes: Dict[Channel, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def _record_locked(self, channel: Channel, nbytes: int) -> None:
        """One message on ``channel``; the caller holds ``_lock``."""
        self.messages[channel] = self.messages.get(channel, 0) + 1
        self.payload_bytes[channel] = self.payload_bytes.get(channel, 0) + nbytes

    def record(self, sender: Location, receiver: Location, nbytes: int) -> None:
        """Record one message of ``nbytes`` payload bytes from sender to receiver."""
        with self._lock:
            self._record_locked((sender, receiver), nbytes)

    def record_broadcast(
        self, sender: Location, receivers: Iterable[Location], nbytes: int
    ) -> None:
        """Record one ``nbytes`` message from ``sender`` to *each* receiver.

        Equivalent to a loop over :meth:`record` but takes the lock once for
        the whole broadcast — the accounting analogue of the transports'
        serialize-once/coalescing batch paths.
        """
        with self._lock:
            for receiver in receivers:
                self._record_locked((sender, receiver), nbytes)

    # -- aggregate views ----------------------------------------------------------

    @property
    def total_messages(self) -> int:
        """Total number of messages recorded."""
        with self._lock:
            return sum(self.messages.values())

    @property
    def total_bytes(self) -> int:
        """Total payload bytes recorded."""
        with self._lock:
            return sum(self.payload_bytes.values())

    def messages_sent_by(self, sender: Location) -> int:
        """Messages whose sender is ``sender``."""
        with self._lock:
            return sum(count for (src, _dst), count in self.messages.items() if src == sender)

    def messages_received_by(self, receiver: Location) -> int:
        """Messages whose receiver is ``receiver``."""
        with self._lock:
            return sum(count for (_src, dst), count in self.messages.items() if dst == receiver)

    def messages_involving(self, location: Location) -> int:
        """Messages sent or received by ``location``."""
        return self.messages_sent_by(location) + self.messages_received_by(location)

    def channels(self) -> Iterable[Channel]:
        """The directed channels that carried at least one message."""
        with self._lock:
            return tuple(self.messages)

    def snapshot(self) -> Dict[Channel, int]:
        """A plain-dict copy of the per-channel message counts."""
        with self._lock:
            return dict(self.messages)

    def merge(self, other: "ChannelStats") -> "ChannelStats":
        """Return a new ChannelStats combining this one with ``other``."""
        return ChannelStats.merge_all((self, other))

    @classmethod
    def merge_all(cls, sources: Iterable["ChannelStats"]) -> "ChannelStats":
        """Combine any number of ChannelStats into one new instance.

        Each source is read under its own lock, so live stats (e.g. the
        per-shard engines of a running cluster) can be rolled up safely; the
        result is a consistent-per-source snapshot, not a global atomic one.

        Args:
            sources: The stats to combine; may be empty.

        Returns:
            A new :class:`ChannelStats` whose per-channel counts and byte
            totals are the sums over all sources.
        """
        merged = cls()
        for source in sources:
            with source._lock:
                for channel, count in source.messages.items():
                    merged.messages[channel] = merged.messages.get(channel, 0) + count
                for channel, nbytes in source.payload_bytes.items():
                    merged.payload_bytes[channel] = merged.payload_bytes.get(channel, 0) + nbytes
        return merged

    def reset(self) -> None:
        """Drop all recorded counts."""
        with self._lock:
            self.messages.clear()
            self.payload_bytes.clear()
