"""Message accounting.

Every experiment in the paper's efficiency story (broadcast KoC vs
conclaves-&-MLVs, KoC re-use, census-polymorphic scaling) reduces to *which
messages were sent*.  :class:`ChannelStats` records exactly that: a count and
byte total per ordered (sender, receiver) pair, thread-safely, so both the
projected runtime and the centralized reference semantics can report
communication costs on the same scale.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from ..core.locations import Location

Channel = Tuple[Location, Location]


@dataclass
class ChannelStats:
    """Counts of messages and payload bytes per directed channel."""

    messages: Dict[Channel, int] = field(default_factory=dict)
    payload_bytes: Dict[Channel, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def record(self, sender: Location, receiver: Location, nbytes: int) -> None:
        """Record one message of ``nbytes`` payload bytes from sender to receiver."""
        channel = (sender, receiver)
        with self._lock:
            self.messages[channel] = self.messages.get(channel, 0) + 1
            self.payload_bytes[channel] = self.payload_bytes.get(channel, 0) + nbytes

    # -- aggregate views ----------------------------------------------------------

    @property
    def total_messages(self) -> int:
        """Total number of messages recorded."""
        with self._lock:
            return sum(self.messages.values())

    @property
    def total_bytes(self) -> int:
        """Total payload bytes recorded."""
        with self._lock:
            return sum(self.payload_bytes.values())

    def messages_sent_by(self, sender: Location) -> int:
        """Messages whose sender is ``sender``."""
        with self._lock:
            return sum(count for (src, _dst), count in self.messages.items() if src == sender)

    def messages_received_by(self, receiver: Location) -> int:
        """Messages whose receiver is ``receiver``."""
        with self._lock:
            return sum(count for (_src, dst), count in self.messages.items() if dst == receiver)

    def messages_involving(self, location: Location) -> int:
        """Messages sent or received by ``location``."""
        return self.messages_sent_by(location) + self.messages_received_by(location)

    def channels(self) -> Iterable[Channel]:
        """The directed channels that carried at least one message."""
        with self._lock:
            return tuple(self.messages)

    def snapshot(self) -> Dict[Channel, int]:
        """A plain-dict copy of the per-channel message counts."""
        with self._lock:
            return dict(self.messages)

    def merge(self, other: "ChannelStats") -> "ChannelStats":
        """Return a new ChannelStats combining this one with ``other``."""
        merged = ChannelStats()
        for source in (self, other):
            with source._lock:
                for channel, count in source.messages.items():
                    merged.messages[channel] = merged.messages.get(channel, 0) + count
                for channel, nbytes in source.payload_bytes.items():
                    merged.payload_bytes[channel] = merged.payload_bytes.get(channel, 0) + nbytes
        return merged

    def reset(self) -> None:
        """Drop all recorded counts."""
        with self._lock:
            self.messages.clear()
            self.payload_bytes.clear()
