"""In-process transport: one FIFO queue per directed channel.

This is the "threads on a single machine communicating through channels"
execution mode every library in the paper supports.  Payloads are serialised
on send and deserialised on receive, so endpoints cannot accidentally share
mutable state and message sizes are accounted accurately.
"""

from __future__ import annotations

import queue
from typing import Any, Dict, Tuple

from ..core.errors import TransportError
from ..core.locations import Location, LocationsLike
from .transport import DEFAULT_TIMEOUT, Transport, TransportEndpoint, deserialize, serialize


class _QueueEndpoint(TransportEndpoint):
    """Endpoint backed by shared per-channel queues."""

    def __init__(
        self,
        location: Location,
        channels: Dict[Tuple[Location, Location], "queue.SimpleQueue[bytes]"],
        stats,
        timeout: float,
    ):
        super().__init__(location, stats, timeout)
        self._channels = channels

    def send(self, receiver: Location, payload: Any) -> None:
        channel = (self.location, receiver)
        if channel not in self._channels:
            raise TransportError(
                f"no channel from {self.location!r} to {receiver!r}; is the receiver "
                "part of this transport's census?"
            )
        data = serialize(payload)
        self._record(receiver, len(data))
        self._channels[channel].put(data)

    def recv(self, sender: Location) -> Any:
        channel = (sender, self.location)
        if channel not in self._channels:
            raise TransportError(
                f"no channel from {sender!r} to {self.location!r}; is the sender "
                "part of this transport's census?"
            )
        try:
            data = self._channels[channel].get(timeout=self._timeout)
        except queue.Empty:
            raise TransportError(
                f"{self.location!r} timed out after {self._timeout}s waiting for a "
                f"message from {sender!r}"
            ) from None
        return deserialize(data)


class LocalTransport(Transport):
    """Thread-friendly transport where every directed pair has its own FIFO queue."""

    def __init__(self, census: LocationsLike, timeout: float = DEFAULT_TIMEOUT):
        super().__init__(census, timeout)
        self._channels: Dict[Tuple[Location, Location], "queue.SimpleQueue[bytes]"] = {
            (sender, receiver): queue.SimpleQueue()
            for sender in self.census
            for receiver in self.census
            if sender != receiver
        }

    def _make_endpoint(self, location: Location) -> TransportEndpoint:
        return _QueueEndpoint(location, self._channels, self.stats, self.timeout)
