"""In-process transport: one FIFO queue per directed channel.

This is the "threads on a single machine communicating through channels"
execution mode every library in the paper supports.  Payloads are serialised
on send and deserialised on receive, so endpoints cannot accidentally share
mutable state and message sizes are accounted accurately.

Channels are created lazily on first use: a census of *n* locations has n²−n
directed pairs, but most choreographies only ever touch a few of them, so
eager allocation would make large-census benchmarks pay a quadratic setup tax
before the first message moves.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Dict, Iterable, Tuple

from ..core.errors import TransportError
from ..core.locations import Location, LocationsLike
from .transport import DEFAULT_TIMEOUT, Transport, TransportEndpoint, deserialize, serialize


class _QueueEndpoint(TransportEndpoint):
    """Endpoint backed by shared per-channel queues."""

    def __init__(self, location: Location, transport: "LocalTransport"):
        super().__init__(location, transport.stats, transport.timeout)
        self._transport = transport

    def _require_peer(self, peer: Location, direction: str) -> None:
        if peer == self.location or peer not in self._transport.census:
            preposition = "to" if direction == "receiver" else "from"
            raise TransportError(
                f"no channel {preposition} {peer!r} at {self.location!r}; is the "
                f"{direction} part of this transport's census?"
            )

    def _send_serialized(self, receiver: Location, data: bytes, instance: int = 0) -> None:
        # The instance id rides next to the payload, not inside it, so the
        # recorded byte count is exactly the payload's serialization.
        self._record(receiver, len(data))
        self._transport.channel(self.location, receiver).put((instance, data))

    def send(self, receiver: Location, payload: Any) -> None:
        self._require_peer(receiver, "receiver")
        self._send_serialized(receiver, serialize(payload))

    def send_scoped(self, receiver: Location, instance: int, payload: Any) -> None:
        self._require_peer(receiver, "receiver")
        self._send_serialized(receiver, serialize(payload), instance)

    def send_many(self, receivers: Iterable[Location], payload: Any) -> None:
        self.send_many_scoped(receivers, 0, payload)

    def send_many_scoped(
        self, receivers: Iterable[Location], instance: int, payload: Any
    ) -> None:
        targets = list(receivers)
        for receiver in targets:
            self._require_peer(receiver, "receiver")
        data = serialize(payload)  # one serialization shared by all receivers
        for receiver in targets:
            self._send_serialized(receiver, data, instance)

    def _recv_serialized(self, sender: Location) -> Tuple[int, bytes]:
        self._require_peer(sender, "sender")
        try:
            return self._transport.channel(sender, self.location).get(timeout=self._timeout)
        except queue.Empty:
            raise TransportError(
                f"{self.location!r} timed out after {self._timeout}s waiting for a "
                f"message from {sender!r}"
            ) from None

    def recv(self, sender: Location) -> Any:
        _instance, data = self._recv_serialized(sender)
        return deserialize(data)

    def recv_scoped(self, sender: Location) -> Tuple[int, Any]:
        instance, data = self._recv_serialized(sender)
        return instance, deserialize(data)


#: Queue items are ``(instance, serialized payload)`` pairs.
_Item = Tuple[int, bytes]


class LocalTransport(Transport):
    """Thread-friendly transport where every directed pair has its own FIFO queue."""

    def __init__(self, census: LocationsLike, timeout: float = DEFAULT_TIMEOUT):
        super().__init__(census, timeout)
        self._channels: Dict[Tuple[Location, Location], "queue.SimpleQueue[_Item]"] = {}
        self._channels_lock = threading.Lock()

    def channel(self, sender: Location, receiver: Location) -> "queue.SimpleQueue[_Item]":
        """The FIFO queue for the directed pair, created on first use."""
        key = (sender, receiver)
        existing = self._channels.get(key)
        if existing is not None:
            return existing
        with self._channels_lock:
            return self._channels.setdefault(key, queue.SimpleQueue())

    def _make_endpoint(self, location: Location) -> TransportEndpoint:
        return _QueueEndpoint(location, self)
