"""In-process transport: one FIFO queue per directed channel.

This is the "threads on a single machine communicating through channels"
execution mode every library in the paper supports.  Payloads are serialised
on send and deserialised on receive, so endpoints cannot accidentally share
mutable state and message sizes are accounted accurately.

Channels are created lazily on first use: a census of *n* locations has n²−n
directed pairs, but most choreographies only ever touch a few of them, so
eager allocation would make large-census benchmarks pay a quadratic setup tax
before the first message moves.

Sends are *coalesced* like the TCP transport's: ``send``/``send_many``/
``*_scoped`` append ``(instance, payload bytes)`` items to a per-receiver
write buffer, and a drain puts the whole batch on the channel queue as **one
item** — one queue rendezvous (lock + wakeup) for many frames instead of one
per message.  Buffers drain on an explicit ``flush()``, past
:data:`~repro.runtime.transport.FLUSH_WATERMARK` pending payload bytes, and
always before a blocking receive (the flush-before-block rule; see
:class:`~repro.runtime.transport.TransportEndpoint`).  The receive side pops
one batch from the queue and serves subsequent ``recv`` calls from a local
deque, preserving per-pair FIFO order exactly.
"""

from __future__ import annotations

import queue
import threading
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Tuple

from ..core.errors import ChoreoTimeout, TransportError
from ..core.locations import Location, LocationsLike
from .transport import (
    DEFAULT_TIMEOUT,
    CoalescingEndpoint,
    Transport,
    TransportEndpoint,
    deserialize,
    serialize,
)

#: One frame: ``(instance, serialized payload)``.
_Item = Tuple[int, bytes]

#: One queue element: a batch of frames flushed together.
_Batch = List[_Item]


class _QueueEndpoint(CoalescingEndpoint):
    """Endpoint backed by shared per-channel queues."""

    def __init__(self, location: Location, transport: "LocalTransport"):
        super().__init__(location, transport.stats, transport.timeout)
        self._transport = transport
        # Frames already popped from a channel queue but not yet recv'd.
        self._pending_in: Dict[Location, Deque[_Item]] = {}

    def _require_peer(self, peer: Location, direction: str) -> None:
        if peer == self.location or peer not in self._transport.census:
            preposition = "to" if direction == "receiver" else "from"
            raise TransportError(
                f"no channel {preposition} {peer!r} at {self.location!r}; is the "
                f"{direction} part of this transport's census?"
            )

    # -- outgoing ------------------------------------------------------------------

    def _deliver(self, receiver: Location, batch: _Batch) -> None:
        # One queue put carries the whole drained batch of frames.
        self._transport.channel(self.location, receiver).put(batch)

    def _send_serialized(self, receiver: Location, data: bytes, instance: int = 0) -> None:
        # The instance id rides next to the payload, not inside it, so the
        # recorded byte count is exactly the payload's serialization.
        self._record(receiver, len(data))
        self._enqueue(receiver, ((instance, data),), len(data))

    def send(self, receiver: Location, payload: Any) -> None:
        self._require_peer(receiver, "receiver")
        self._send_serialized(receiver, serialize(payload))

    def send_scoped(self, receiver: Location, instance: int, payload: Any) -> None:
        self._require_peer(receiver, "receiver")
        self._send_serialized(receiver, serialize(payload), instance)

    def send_many(self, receivers: Iterable[Location], payload: Any) -> None:
        self.send_many_scoped(receivers, 0, payload)

    def send_many_scoped(
        self, receivers: Iterable[Location], instance: int, payload: Any
    ) -> None:
        targets = list(receivers)
        for receiver in targets:
            self._require_peer(receiver, "receiver")
        data = serialize(payload)  # one serialization shared by all receivers
        self._record_broadcast(targets, len(data))
        item = (instance, data)
        for receiver in targets:
            self._enqueue(receiver, (item,), len(data))

    # -- incoming ------------------------------------------------------------------

    def _recv_serialized(self, sender: Location) -> _Item:
        self._require_peer(sender, "sender")
        pending = self._pending_in.get(sender)
        if pending:
            return pending.popleft()
        # Flush-before-block: our own deferred sends must be on their queues
        # before we wait, or mutually-sending endpoints would starve.
        self.flush()
        try:
            batch = self._transport.channel(sender, self.location).get(timeout=self._timeout)
        except queue.Empty:
            raise ChoreoTimeout(self.location, sender, self._timeout) from None
        if len(batch) == 1:
            return batch[0]
        items = self._pending_in.setdefault(sender, deque())
        items.extend(batch)
        return items.popleft()

    def recv(self, sender: Location) -> Any:
        _instance, data = self._recv_serialized(sender)
        return deserialize(data)

    def recv_scoped(self, sender: Location) -> Tuple[int, Any]:
        instance, data = self._recv_serialized(sender)
        return instance, deserialize(data)


class LocalTransport(Transport):
    """Thread-friendly transport where every directed pair has its own FIFO queue."""

    def __init__(self, census: LocationsLike, timeout: float = DEFAULT_TIMEOUT):
        super().__init__(census, timeout)
        self._channels: Dict[Tuple[Location, Location], "queue.SimpleQueue[_Batch]"] = {}
        self._channels_lock = threading.Lock()

    def channel(self, sender: Location, receiver: Location) -> "queue.SimpleQueue[_Batch]":
        """The FIFO queue for the directed pair, created on first use.

        Queue elements are *batches*: lists of ``(instance, payload bytes)``
        frames flushed together by the sending endpoint.
        """
        key = (sender, receiver)
        existing = self._channels.get(key)
        if existing is not None:
            return existing
        with self._channels_lock:
            return self._channels.setdefault(key, queue.SimpleQueue())

    def _make_endpoint(self, location: Location) -> TransportEndpoint:
        return _QueueEndpoint(location, self)
