"""Concurrent execution of a projected choreography.

``run_choreography`` is the "main method" every case study in the paper ships:
it performs endpoint projection for every location in the census, runs all the
endpoint programs concurrently over a transport, and gathers their return
values.  Exceptions raised by any endpoint are re-raised in the caller as a
single :class:`~repro.core.errors.ChoreographyRuntimeError`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Union

from ..core.epp import project
from ..core.errors import ChoreographyRuntimeError, TransportError
from ..core.located import Faceted, Located
from ..core.locations import Census, Location, LocationsLike, as_census
from ..core.ops import Choreography
from .local import LocalTransport
from .stats import ChannelStats
from .tcp import TCPTransport
from .transport import DEFAULT_TIMEOUT, Transport

#: Names accepted by the ``transport`` argument of :func:`run_choreography`.
TRANSPORT_FACTORIES: Dict[str, Callable[..., Transport]] = {
    "local": LocalTransport,
    "tcp": TCPTransport,
}


@dataclass
class ChoreographyResult:
    """The outcome of one distributed execution of a choreography."""

    census: Census
    returns: Dict[Location, Any]
    stats: ChannelStats
    elapsed_seconds: float = 0.0
    per_location_args: Dict[Location, Any] = field(default_factory=dict)

    def value_at(self, location: Location) -> Any:
        """The endpoint return value at ``location``, unwrapping located values."""
        value = self.returns[location]
        if isinstance(value, Located):
            if value.is_present():
                return value.peek()
            return None
        if isinstance(value, Faceted):
            facets = value.visible_facets()
            return facets.get(location)
        return value

    def present_values(self) -> Dict[Location, Any]:
        """Every endpoint's unwrapped return value, skipping placeholders."""
        unwrapped = {}
        for location in self.census:
            value = self.value_at(location)
            if value is not None:
                unwrapped[location] = value
        return unwrapped


def _resolve_transport(
    transport: Union[str, Transport, None], census: Census, timeout: float
) -> Transport:
    if transport is None:
        return LocalTransport(census, timeout=timeout)
    if isinstance(transport, str):
        try:
            factory = TRANSPORT_FACTORIES[transport]
        except KeyError:
            raise ValueError(
                f"unknown transport {transport!r}; choose from {sorted(TRANSPORT_FACTORIES)}"
            ) from None
        return factory(census, timeout=timeout)
    return transport


def run_choreography(
    choreography: Choreography,
    census: LocationsLike,
    args: Sequence[Any] = (),
    kwargs: Optional[Mapping[str, Any]] = None,
    *,
    location_args: Optional[Mapping[Location, Sequence[Any]]] = None,
    transport: Union[str, Transport, None] = "local",
    timeout: float = DEFAULT_TIMEOUT,
) -> ChoreographyResult:
    """Project ``choreography`` to every census member and run them concurrently.

    Parameters
    ----------
    choreography:
        A callable ``chor(op, *args, **kwargs)``.
    census:
        The locations participating in the top-level choreography.
    args, kwargs:
        Arguments passed identically to every endpoint (the usual case: the
        choreography's own operators decide who does what with them).
    location_args:
        Optional per-location extra positional arguments, appended after
        ``args``; used when endpoints genuinely start from different local
        inputs (e.g. each party's secret in an MPC protocol).
    transport:
        ``"local"`` (threads + queues), ``"tcp"`` (loopback sockets), or a
        pre-built :class:`~repro.runtime.transport.Transport`.
    timeout:
        Seconds an endpoint waits on a receive before declaring failure.

    Returns
    -------
    ChoreographyResult
        Per-location return values plus message statistics.
    """
    full_census = as_census(census).require_nonempty()
    kwargs = dict(kwargs or {})
    location_args = dict(location_args or {})
    hub = _resolve_transport(transport, full_census, timeout)
    owns_transport = not isinstance(transport, Transport)

    # Materialize every endpoint up front so transports that need a rendezvous
    # (e.g. TCP port discovery) are ready before any thread starts sending.
    endpoints = {location: hub.endpoint(location) for location in full_census}

    returns: Dict[Location, Any] = {}
    failures: Dict[Location, BaseException] = {}
    lock = threading.Lock()

    def run_endpoint(location: Location) -> None:
        endpoint_program = project(choreography, full_census, location, endpoints[location])
        extra = tuple(location_args.get(location, ()))
        try:
            result = endpoint_program(*tuple(args) + extra, **kwargs)
            with lock:
                returns[location] = result
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            with lock:
                failures[location] = exc

    started = time.perf_counter()
    threads = [
        threading.Thread(target=run_endpoint, args=(location,), name=f"chor-{location}")
        for location in full_census
    ]
    for thread in threads:
        thread.start()
    # One wall-clock deadline shared by every join: a hung census must not
    # compound the timeout once per location.
    deadline = time.monotonic() + timeout * 2
    for thread in threads:
        thread.join(timeout=max(0.0, deadline - time.monotonic()))
    elapsed = time.perf_counter() - started

    if owns_transport:
        hub.close()

    if failures:
        # A crash at one endpoint typically makes its peers time out waiting for
        # messages; report the root cause, not the induced timeouts.
        def root_cause_first(item):
            location, exc = item
            return (isinstance(exc, TransportError), location)

        location, original = sorted(failures.items(), key=root_cause_first)[0]
        raise ChoreographyRuntimeError(location, original) from original

    still_running = [thread.name for thread in threads if thread.is_alive()]
    if still_running:
        raise ChoreographyRuntimeError(
            still_running[0].replace("chor-", ""),
            TimeoutError("endpoint did not finish; the choreography may be deadlocked"),
        )

    return ChoreographyResult(
        census=full_census,
        returns=returns,
        stats=hub.stats,
        elapsed_seconds=elapsed,
    )
