"""One-shot execution of a projected choreography (compatibility surface).

``run_choreography`` is the "main method" every case study in the paper ships:
project to every location, run all endpoint programs concurrently, gather the
return values.  Since the engine redesign it is a thin wrapper over a
throwaway :class:`~repro.runtime.engine.ChoreoEngine` — one warm session,
used for exactly one instance, then closed.  Long-running services should
hold a ``ChoreoEngine`` open instead and call ``engine.run`` /
``engine.submit`` so transport setup and worker spawn are paid once, not per
instance (see ``benchmarks/bench_engine_throughput.py`` for the difference).

Transports coalesce sends into per-receiver write buffers (see
:class:`~repro.runtime.transport.TransportEndpoint` for the deferred-flush
contract); running through this function — or any engine — needs no extra
care, because endpoints flush before blocking in a receive and the engine's
workers flush at every instance boundary.  Only code driving raw endpoints
by hand must call ``endpoint.flush()`` after its final send.

The names historically imported from this module —
:class:`ChoreographyResult` and the backend table — are re-exported here.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence, Union

from ..core.locations import Location, LocationsLike
from ..core.ops import Choreography
from .engine import ChoreoEngine, ChoreographyResult
from .registry import BACKENDS, backend_names, register_backend
from .transport import DEFAULT_TIMEOUT, Transport

#: Deprecated alias for the pluggable backend registry: prefer
#: :func:`repro.runtime.registry.register_backend` over mutating this mapping.
#: Note that it now also holds non-Transport backends (e.g. ``"central"``);
#: callers needing real endpoints must type-check what the factory returns.
TRANSPORT_FACTORIES = BACKENDS

__all__ = [
    "ChoreographyResult",
    "TRANSPORT_FACTORIES",
    "backend_names",
    "register_backend",
    "run_choreography",
]


def run_choreography(
    choreography: Choreography,
    census: LocationsLike,
    args: Sequence[Any] = (),
    kwargs: Optional[Mapping[str, Any]] = None,
    *,
    location_args: Optional[Mapping[Location, Sequence[Any]]] = None,
    transport: Union[str, Transport, None] = "local",
    timeout: float = DEFAULT_TIMEOUT,
) -> ChoreographyResult:
    """Project ``choreography`` to every census member and run them concurrently.

    Parameters
    ----------
    choreography:
        A callable ``chor(op, *args, **kwargs)``.
    census:
        The locations participating in the top-level choreography.
    args, kwargs:
        Arguments passed identically to every endpoint (the usual case: the
        choreography's own operators decide who does what with them).
    location_args:
        Optional per-location extra positional arguments, appended after
        ``args``; used when endpoints genuinely start from different local
        inputs (e.g. each party's secret in an MPC protocol).
    transport:
        A backend name from the registry (``"local"``, ``"tcp"``,
        ``"simulated"``, ``"central"``, …) or a pre-built
        :class:`~repro.runtime.transport.Transport`, which is borrowed and
        left open.  ``None`` means ``"local"``.
    timeout:
        Seconds an endpoint waits on a receive before declaring failure.

    Returns
    -------
    ChoreographyResult
        Per-location return values plus this run's message statistics.
    """
    backend = "local" if transport is None else transport
    with ChoreoEngine(census, backend=backend, timeout=timeout) as engine:
        return engine.run(choreography, args, kwargs, location_args=location_args)
