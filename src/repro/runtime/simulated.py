"""A deterministic simulated-network transport.

The paper's efficiency story is about message *counts*; deployments also care
about *latency*, which depends on how messages overlap.  This transport wraps
:class:`~repro.runtime.local.LocalTransport` and charges a configurable
per-message delay and per-byte bandwidth cost on the **receiving** side, using
a virtual clock per endpoint: an endpoint's clock advances to
``max(own clock, sender's clock at send time) + latency + bytes/bandwidth``
whenever it receives.  The maximum endpoint clock after a run is the critical
path length — a simple but useful proxy for protocol latency that lets the
benchmarks compare, e.g., how the sequential OT chains of GMW dominate its
runtime while the KVS's fan-outs overlap.

Accounting matches the real transports byte-for-byte: each payload is
serialized exactly once and travels through the inner queues as a
``(send_time, payload bytes)`` stamp, so the
:class:`~repro.runtime.stats.ChannelStats` entry and the receive-side
bandwidth charge both use the *unstamped* wire length — the same bytes TCP
frames on the wire — and a choreography run here is directly comparable to
(and a property test pins it equal to) the same run on the coalescing
local/TCP transports.  The inner transport's own recording is disabled to
make room for that.

``flush`` forwards to the inner endpoint, and a receive flushes the inner
endpoint's buffers before blocking, so the deferred-flush semantics (and the
flush-before-block deadlock-freedom rule) carry over unchanged.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, Optional

from ..core.locations import Location, LocationsLike
from .local import LocalTransport
from .transport import DEFAULT_TIMEOUT, Transport, TransportEndpoint, deserialize, serialize


class _DropStats:
    """A stats sink that records nothing (the simulated endpoint records)."""

    def record(self, sender: Location, receiver: Location, nbytes: int) -> None:
        pass

    def record_broadcast(
        self, sender: Location, receivers: Iterable[Location], nbytes: int
    ) -> None:
        pass


_DROP_STATS = _DropStats()


class _SimulatedEndpoint(TransportEndpoint):
    """Wraps a queue endpoint, stamping payloads with virtual send times."""

    def __init__(self, inner: TransportEndpoint, transport: "SimulatedNetworkTransport"):
        super().__init__(inner.location, transport.stats, transport.timeout)
        self._inner = inner
        self._transport = transport
        # This wrapper records the unstamped payload bytes itself; the inner
        # endpoint would otherwise record the (send_time, payload) tuple.
        self._inner.use_stats(_DROP_STATS)

    # Payloads travel stamped as ``(send_time, payload bytes)`` — the payload
    # is serialized exactly once, its exact wire length feeds both the stats
    # entry and the receive-side bandwidth charge, and the receive side
    # decodes from the same bytes.

    def _stamp(self, payload: Any) -> "tuple[bytes, tuple]":
        data = serialize(payload)
        return data, (self._transport.clock_of(self.location), data)

    def send(self, receiver: Location, payload: Any) -> None:
        data, stamped = self._stamp(payload)
        self._record(receiver, len(data))
        self._inner.send(receiver, stamped)

    def send_many(self, receivers: Iterable[Location], payload: Any) -> None:
        # All deliveries of a multicast share one send time, so the stamped
        # payload can ride the inner transport's serialize-once path.
        targets = list(receivers)
        data, stamped = self._stamp(payload)
        self._record_broadcast(targets, len(data))
        self._inner.send_many(targets, stamped)

    def send_scoped(self, receiver: Location, instance: int, payload: Any) -> None:
        data, stamped = self._stamp(payload)
        self._record(receiver, len(data))
        self._inner.send_scoped(receiver, instance, stamped)

    def send_many_scoped(
        self, receivers: Iterable[Location], instance: int, payload: Any
    ) -> None:
        targets = list(receivers)
        data, stamped = self._stamp(payload)
        self._record_broadcast(targets, len(data))
        self._inner.send_many_scoped(targets, instance, stamped)

    def flush(self) -> None:
        """Drain the inner endpoint's deferred writes."""
        self._inner.flush()

    def _charge(self, send_time: float, nbytes: int) -> None:
        cost = self._transport.latency + nbytes / self._transport.bandwidth
        self._transport.advance_clock(self.location, send_time + cost)

    def recv(self, sender: Location) -> Any:
        # The inner recv flushes the inner buffers before blocking.
        send_time, data = self._inner.recv(sender)
        self._charge(send_time, len(data))
        return deserialize(data)

    def recv_scoped(self, sender: Location) -> "tuple[int, Any]":
        instance, (send_time, data) = self._inner.recv_scoped(sender)
        self._charge(send_time, len(data))
        return instance, deserialize(data)


class SimulatedNetworkTransport(Transport):
    """A local transport with a virtual latency/bandwidth model.

    Parameters
    ----------
    latency:
        Virtual seconds added to every message (propagation + handshake).
    bandwidth:
        Virtual bytes per virtual second (serialisation cost of large payloads).
    faults:
        An optional :class:`repro.faults.FaultPlan`.  Every endpoint is then
        wrapped in a :class:`repro.faults.FaultyEndpoint` injecting the
        plan's delays, reorders, crashes, and connect flakes.  Injected
        delays are charged to the sender's *virtual* clock (no real sleep),
        and crash-at-time rules read the virtual clock, so a seeded plan
        reproduces the identical message schedule on every run — this is the
        deterministic chaos-testing backend (see ``docs/testing.md``).  The
        live :class:`repro.faults.FaultSession` is exposed as :attr:`faults`.
    """

    def __init__(
        self,
        census: LocationsLike,
        *,
        latency: float = 1.0,
        bandwidth: float = 1_000_000.0,
        timeout: float = DEFAULT_TIMEOUT,
        faults: "Any | None" = None,
    ):
        super().__init__(census, timeout)
        if latency < 0 or bandwidth <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")
        self.latency = latency
        self.bandwidth = bandwidth
        self._inner = LocalTransport(census, timeout=timeout)
        self._clocks: Dict[Location, float] = {location: 0.0 for location in self.census}
        self._clock_lock = threading.Lock()
        self.faults = faults.session() if faults is not None else None

    # -- virtual time ----------------------------------------------------------------

    def clock_of(self, location: Location) -> float:
        """The current virtual time at ``location``."""
        with self._clock_lock:
            return self._clocks[location]

    def advance_clock(self, location: Location, at_least: float) -> None:
        """Advance ``location``'s virtual clock to at least ``at_least``."""
        with self._clock_lock:
            self._clocks[location] = max(self._clocks[location], at_least)

    @property
    def critical_path(self) -> float:
        """The largest endpoint clock: the virtual latency of the whole run."""
        with self._clock_lock:
            return max(self._clocks.values()) if self._clocks else 0.0

    def clocks(self) -> Dict[Location, float]:
        """A copy of every endpoint's virtual clock."""
        with self._clock_lock:
            return dict(self._clocks)

    # -- transport plumbing ----------------------------------------------------------

    def _make_endpoint(self, location: Location) -> TransportEndpoint:
        endpoint: TransportEndpoint = _SimulatedEndpoint(self._inner.endpoint(location), self)
        if self.faults is not None:
            # Injected delays advance the sender's virtual clock instead of
            # sleeping, so the next stamped send time carries the jitter;
            # crash-at-time rules read the same clock.
            endpoint = self.faults.wrap(
                endpoint,
                delay_fn=lambda seconds, loc=location: self.advance_clock(
                    loc, self.clock_of(loc) + seconds
                ),
                clock_fn=lambda loc=location: self.clock_of(loc),
            )
        return endpoint

    def close(self) -> None:
        self._inner.close()
