"""Transport abstraction.

HasChor, MultiChor, ChoRus and ChoreoTS all project a single choreography onto
multiple interchangeable transport mechanisms (threads + channels on one
machine, HTTP between machines, or user-written adapters).  This module
defines the same seam for the Python library: a :class:`Transport` hands out
one :class:`TransportEndpoint` per location; an endpoint can ``send`` to and
``recv`` from peers; every payload is serialised so that message sizes are
meaningful and endpoints never share mutable state.
"""

from __future__ import annotations

import abc
import threading
from typing import Any, Dict, Iterable, Optional

from ..core.errors import TransportError
from ..core.locations import Census, Location, LocationsLike, as_census
from . import wire
from .stats import ChannelStats, record_broadcast_on

#: Default number of seconds an endpoint waits for a message before concluding
#: that the network of projected programs has deadlocked or crashed.
DEFAULT_TIMEOUT = 30.0

#: Pending-byte high-watermark at which a coalescing endpoint drains a peer's
#: write buffer on its own, without waiting for an explicit :meth:`flush` or a
#: blocking receive.  64 KiB keeps buffered latency bounded while still
#: amortizing one syscall (TCP) or one queue rendezvous (local) over thousands
#: of small frames.
FLUSH_WATERMARK = 64 * 1024


def serialize(payload: Any) -> bytes:
    """Serialize a payload for transmission.

    Uses the compact codec of :mod:`repro.runtime.wire` (pickle for payload
    shapes outside its fast paths), which plays the role of MultiChor's
    ``Show``/``Read`` constraints: only values that survive a round-trip may
    be communicated.

    Args:
        payload: The value to encode.

    Returns:
        The wire bytes; their length is what :class:`ChannelStats` records.

    Raises:
        TransportError: If the payload cannot be encoded (e.g. an unpicklable
            object on the fallback path).
    """
    try:
        return wire.encode(payload)
    except Exception as exc:
        raise TransportError(f"payload {payload!r} is not serializable: {exc}") from exc


def deserialize(data: bytes) -> Any:
    """Inverse of :func:`serialize`.

    Args:
        data: Bytes produced by :func:`serialize`.

    Returns:
        The decoded value.

    Raises:
        TransportError: If the bytes do not decode.
    """
    try:
        return wire.decode(data)
    except Exception as exc:
        raise TransportError(f"could not deserialize message: {exc}") from exc


class TransportEndpoint(abc.ABC):
    """One location's view of the transport: its own sends and receives.

    Coalescing contract
    -------------------
    Sends are *deferred*: an endpoint may append pre-framed bytes to a
    per-receiver write buffer instead of delivering immediately.  Buffers
    drain

    * on an explicit :meth:`flush`,
    * on their own once a receiver's pending bytes pass
      :data:`FLUSH_WATERMARK`, and
    * **always before this endpoint blocks in** :meth:`recv` /
      :meth:`recv_many` — the *flush-before-block* rule.

    The flush-before-block rule is what makes coalescing deadlock-free: in
    any cycle of endpoints waiting on each other, every endpoint has flushed
    its own outgoing buffers before blocking, so the messages that break the
    cycle are already in flight.  Per-pair FIFO order is preserved because a
    buffer drains in append order and later sends append after any drain.
    Choreographic semantics only require per-pair FIFO delivery and treat
    sends as non-blocking, so deferral never changes what a projected
    program computes — though it can delay *when* a small message reaches a
    peer until the sender next flushes, blocks in a receive, or finishes its
    instance (a sender doing long local computation right after a send keeps
    that send buffered for the duration).  Code driving endpoints *directly*
    must call :meth:`flush` after its final send (the engine and runners do
    this at instance boundaries).
    """

    def __init__(self, location: Location, stats: ChannelStats, timeout: float):
        self.location = location
        self._stats = stats
        self._timeout = timeout

    @abc.abstractmethod
    def send(self, receiver: Location, payload: Any) -> None:
        """Deliver ``payload`` to ``receiver``; never blocks indefinitely.

        Delivery may be deferred until the next :meth:`flush` (see the
        coalescing contract in the class docstring).

        Args:
            receiver: The destination location (a census member).
            payload: Any :func:`serialize`-able value.

        Raises:
            TransportError: If the payload does not serialize or the
                transport is shut down.
        """

    @abc.abstractmethod
    def recv(self, sender: Location) -> Any:
        """Return the next payload from ``sender`` (per-pair FIFO order).

        Implementations flush this endpoint's own write buffers before
        blocking (the flush-before-block rule).

        Args:
            sender: The location whose next message to take.

        Returns:
            The deserialized payload.

        Raises:
            TransportError: On transport shutdown, or — as the typed
                :class:`~repro.core.errors.ChoreoTimeout` subclass — when the
                configured receive timeout elapses with no message.
        """

    def flush(self) -> None:
        """Drain every pending write buffer to its receiver.

        The base implementation is a no-op for transports that deliver
        eagerly; coalescing transports override it.  Idempotent and cheap
        when nothing is pending.
        """

    def send_many(self, receivers: Iterable[Location], payload: Any) -> None:
        """Deliver the *same* ``payload`` to every receiver (the broadcast path).

        The base implementation simply loops over :meth:`send`; transports
        whose send path starts with serialization override this with a
        serialize-once fast path (one :func:`serialize` shared by all
        receivers).  ``receivers`` must not include this endpoint's own
        location — a multicast sender keeps its copy without a message.
        """
        for receiver in receivers:
            self.send(receiver, payload)

    def recv_many(self, senders: Iterable[Location]) -> Dict[Location, Any]:
        """Receive one payload from each sender, in the order given.

        A convenience for gather-style rounds; equivalent to a loop over
        :meth:`recv`.

        Args:
            senders: The locations to receive from, in order.

        Returns:
            ``{sender: payload}`` with one entry per sender.

        Raises:
            TransportError: If any single receive times out.
        """
        return {sender: self.recv(sender) for sender in senders}

    # -- instance scoping ----------------------------------------------------------
    #
    # A persistent engine pipelines many choreography instances over one
    # transport; the ``*_scoped`` methods carry an instance id alongside each
    # payload so receivers can demultiplex.  The base implementations carry
    # the tag *inside* the payload (an ``(instance, payload)`` tuple), which
    # works for any transport; Local/TCP override them to carry the tag in
    # their framing instead, so the payload bytes recorded in
    # :class:`~repro.runtime.stats.ChannelStats` stay exactly the bytes of
    # the payload's serialization on every execution path.

    def send_scoped(self, receiver: Location, instance: int, payload: Any) -> None:
        """Send ``payload`` tagged with a choreography-instance id."""
        self.send(receiver, (instance, payload))

    def send_many_scoped(
        self, receivers: Iterable[Location], instance: int, payload: Any
    ) -> None:
        """Broadcast counterpart of :meth:`send_scoped` (serialize-once capable)."""
        self.send_many(receivers, (instance, payload))

    def recv_scoped(self, sender: Location) -> "tuple[int, Any]":
        """Return ``(instance, payload)``: the counterpart of :meth:`send_scoped`.

        Returns:
            The instance tag and the payload of the next message from
            ``sender``.

        Raises:
            TransportError: On timeout, or when an *untagged* message shows
                up on an instance-scoped channel (raw sends must not be
                mixed with engine runs on one transport).
        """
        message = self.recv(sender)
        if (
            not isinstance(message, tuple)
            or len(message) != 2
            or not isinstance(message[0], int)
        ):
            raise TransportError(
                f"{self.location!r} received an untagged message from {sender!r} on an "
                "instance-scoped channel; do not mix raw sends with engine runs"
            )
        return message

    def _record(self, receiver: Location, nbytes: int) -> None:
        self._stats.record(self.location, receiver, nbytes)

    def _record_broadcast(self, receivers: Iterable[Location], nbytes: int) -> None:
        """Record one ``nbytes`` message to each receiver in a single batch.

        Uses the stats sink's ``record_broadcast`` (one lock acquisition for
        the whole broadcast) when available, falling back to per-receiver
        ``record`` for minimal sinks.
        """
        record_broadcast_on(self._stats, self.location, receivers, nbytes)

    def use_stats(self, stats: ChannelStats) -> None:
        """Redirect this endpoint's send-side accounting to ``stats``.

        Message statistics are recorded on the sending side, so pointing one
        endpoint at a different sink re-attributes exactly that location's
        sends.  :class:`repro.runtime.engine.ChoreoEngine` uses this to tee
        each send into both the transport's cumulative stats and the current
        run's per-instance delta.  Only the (single) thread driving this
        endpoint may call it.
        """
        self._stats = stats


class ForwardingEndpoint(TransportEndpoint):
    """An endpoint wrapper that delegates everything to an inner endpoint.

    The base class of the tee/wrapper pattern: layers that decorate an
    endpoint's behaviour — virtual-clock stamping, fault injection
    (:class:`repro.faults.FaultyEndpoint`), instrumentation — subclass this
    and override only the methods they intercept.  Everything else, including
    attributes this base does not know about (a TCP endpoint's ``port``, its
    ``close``), forwards to the wrapped endpoint, so a wrapper can stand in
    for the inner endpoint anywhere the transport or engine passes one
    around.

    ``use_stats`` forwards *and* mirrors the sink locally, so both layers
    agree on where send-side accounting goes when the engine installs its
    per-run stats tee.
    """

    def __init__(self, inner: TransportEndpoint):
        self._inner = inner
        super().__init__(inner.location, inner._stats, inner._timeout)

    def send(self, receiver: Location, payload: Any) -> None:
        self._inner.send(receiver, payload)

    def recv(self, sender: Location) -> Any:
        return self._inner.recv(sender)

    def send_many(self, receivers: Iterable[Location], payload: Any) -> None:
        self._inner.send_many(receivers, payload)

    def recv_many(self, senders: Iterable[Location]) -> Dict[Location, Any]:
        return {sender: self.recv(sender) for sender in senders}

    def send_scoped(self, receiver: Location, instance: int, payload: Any) -> None:
        self._inner.send_scoped(receiver, instance, payload)

    def send_many_scoped(
        self, receivers: Iterable[Location], instance: int, payload: Any
    ) -> None:
        self._inner.send_many_scoped(receivers, instance, payload)

    def recv_scoped(self, sender: Location) -> "tuple[int, Any]":
        return self._inner.recv_scoped(sender)

    def flush(self) -> None:
        self._inner.flush()

    def use_stats(self, stats: ChannelStats) -> None:
        self._inner.use_stats(stats)
        self._stats = stats

    def __getattr__(self, name: str) -> Any:
        if name == "_inner":  # guard: never recurse while half-constructed
            raise AttributeError(name)
        return getattr(self._inner, name)


class CoalescingEndpoint(TransportEndpoint):
    """Shared write-buffer machinery for coalescing endpoints (Local/TCP).

    Subclasses call :meth:`_enqueue` with the opaque buffer items one frame
    contributes and its byte size, and implement :meth:`_deliver` to move a
    drained batch to its receiver (one writev, one queue put, ...).  This
    class owns the per-receiver buffers, the pending-byte watermark, and the
    drain ordering:

    * ``_out_lock`` guards only the buffer dicts (appends stay cheap);
    * one drain lock **per receiver** serializes that receiver's
      pop-and-deliver, so two concurrent drains — e.g. a watermark drain
      racing an explicit :meth:`flush` from another thread — cannot invert
      batch order and break per-pair FIFO, while a slow delivery to one
      receiver (say, a TCP connect) never stalls drains to any other.
    """

    def __init__(self, location: Location, stats: ChannelStats, timeout: float):
        super().__init__(location, stats, timeout)
        self._out_lock = threading.Lock()
        self._drain_locks: Dict[Location, threading.Lock] = {}
        self._out_buffers: Dict[Location, list] = {}
        self._out_pending: Dict[Location, int] = {}
        self._has_pending = False

    @abc.abstractmethod
    def _deliver(self, receiver: Location, batch: list) -> None:
        """Move one drained batch of buffered items to ``receiver``."""

    def _enqueue(self, receiver: Location, items: Iterable[Any], nbytes: int) -> None:
        """Buffer one frame's ``items``; drain past the watermark."""
        with self._out_lock:
            batch = self._out_buffers.get(receiver)
            if batch is None:
                batch = self._out_buffers[receiver] = []
                self._out_pending[receiver] = 0
            batch.extend(items)
            pending = self._out_pending[receiver] + nbytes
            self._out_pending[receiver] = pending
            self._has_pending = True
        if pending >= FLUSH_WATERMARK:
            self._drain_to(receiver)

    def _drain_to(self, receiver: Location) -> None:
        # Pop-and-deliver is atomic w.r.t. other drains *to this receiver*:
        # appends are never blocked, batches reach the receiver in pop order,
        # and a blocking delivery elsewhere cannot stall this channel.
        with self._out_lock:
            drain_lock = self._drain_locks.setdefault(receiver, threading.Lock())
        with drain_lock:
            with self._out_lock:
                batch = self._out_buffers.pop(receiver, None)
                self._out_pending.pop(receiver, None)
                if not self._out_buffers:
                    self._has_pending = False
            if batch:
                self._deliver(receiver, batch)

    def flush(self) -> None:
        """Drain every pending write buffer, one batch per receiver."""
        if not self._has_pending:
            return
        with self._out_lock:
            receivers = list(self._out_buffers)
        for receiver in receivers:
            self._drain_to(receiver)

    def _discard_buffers(self) -> None:
        """Drop everything pending (endpoint shutdown)."""
        with self._out_lock:
            self._out_buffers.clear()
            self._out_pending.clear()
            self._has_pending = False


class Transport(abc.ABC):
    """A communication substrate connecting a fixed census of locations."""

    def __init__(self, census: LocationsLike, timeout: float = DEFAULT_TIMEOUT):
        self.census: Census = as_census(census).require_nonempty()
        self.stats = ChannelStats()
        self.timeout = timeout
        self._endpoints: Dict[Location, TransportEndpoint] = {}
        #: The live ChoreoEngine driving this transport, if any: cached
        #: endpoints and the instance-id space are single-session resources.
        self._engine_lease: Optional[object] = None

    @abc.abstractmethod
    def _make_endpoint(self, location: Location) -> TransportEndpoint:
        """Create the endpoint object for ``location``."""

    def endpoint(self, location: Location) -> TransportEndpoint:
        """Return (creating if necessary) the endpoint for ``location``.

        Endpoints are cached: every caller for one location shares one
        endpoint object, which is why a transport can serve at most one live
        :class:`~repro.runtime.engine.ChoreoEngine` at a time (the engine
        lease).

        Args:
            location: A census member.

        Returns:
            The (possibly newly created) endpoint.

        Raises:
            CensusError: If ``location`` is not in this transport's census.
        """
        self.census.require_member(location)
        if location not in self._endpoints:
            self._endpoints[location] = self._make_endpoint(location)
        return self._endpoints[location]

    def close(self) -> None:
        """Release any resources held by the transport (sockets, threads).

        Idempotent.  Payloads still sitting in coalescing write buffers are
        discarded — flush before closing when they matter.
        """

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *_exc: Any) -> Optional[bool]:
        self.close()
        return None
