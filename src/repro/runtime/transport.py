"""Transport abstraction.

HasChor, MultiChor, ChoRus and ChoreoTS all project a single choreography onto
multiple interchangeable transport mechanisms (threads + channels on one
machine, HTTP between machines, or user-written adapters).  This module
defines the same seam for the Python library: a :class:`Transport` hands out
one :class:`TransportEndpoint` per location; an endpoint can ``send`` to and
``recv`` from peers; every payload is serialised so that message sizes are
meaningful and endpoints never share mutable state.
"""

from __future__ import annotations

import abc
import pickle
from typing import Any, Dict, Optional

from ..core.errors import TransportError
from ..core.locations import Census, Location, LocationsLike, as_census
from .stats import ChannelStats

#: Default number of seconds an endpoint waits for a message before concluding
#: that the network of projected programs has deadlocked or crashed.
DEFAULT_TIMEOUT = 30.0


def serialize(payload: Any) -> bytes:
    """Serialize a payload for transmission.

    Uses :mod:`pickle`, which plays the role of MultiChor's ``Show``/``Read``
    constraints: only values that survive a round-trip may be communicated.
    """
    try:
        return pickle.dumps(payload)
    except Exception as exc:  # pragma: no cover - defensive
        raise TransportError(f"payload {payload!r} is not serializable: {exc}") from exc


def deserialize(data: bytes) -> Any:
    """Inverse of :func:`serialize`."""
    try:
        return pickle.loads(data)
    except Exception as exc:  # pragma: no cover - defensive
        raise TransportError(f"could not deserialize message: {exc}") from exc


class TransportEndpoint(abc.ABC):
    """One location's view of the transport: its own sends and receives."""

    def __init__(self, location: Location, stats: ChannelStats, timeout: float):
        self.location = location
        self._stats = stats
        self._timeout = timeout

    @abc.abstractmethod
    def send(self, receiver: Location, payload: Any) -> None:
        """Deliver ``payload`` to ``receiver``; never blocks indefinitely."""

    @abc.abstractmethod
    def recv(self, sender: Location) -> Any:
        """Return the next payload from ``sender``; raises
        :class:`~repro.core.errors.TransportError` on timeout."""

    def _record(self, receiver: Location, nbytes: int) -> None:
        self._stats.record(self.location, receiver, nbytes)


class Transport(abc.ABC):
    """A communication substrate connecting a fixed census of locations."""

    def __init__(self, census: LocationsLike, timeout: float = DEFAULT_TIMEOUT):
        self.census: Census = as_census(census).require_nonempty()
        self.stats = ChannelStats()
        self.timeout = timeout
        self._endpoints: Dict[Location, TransportEndpoint] = {}

    @abc.abstractmethod
    def _make_endpoint(self, location: Location) -> TransportEndpoint:
        """Create the endpoint object for ``location``."""

    def endpoint(self, location: Location) -> TransportEndpoint:
        """Return (creating if necessary) the endpoint for ``location``."""
        self.census.require_member(location)
        if location not in self._endpoints:
            self._endpoints[location] = self._make_endpoint(location)
        return self._endpoints[location]

    def close(self) -> None:
        """Release any resources held by the transport (sockets, threads)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *_exc: Any) -> Optional[bool]:
        self.close()
        return None
