"""Transport abstraction.

HasChor, MultiChor, ChoRus and ChoreoTS all project a single choreography onto
multiple interchangeable transport mechanisms (threads + channels on one
machine, HTTP between machines, or user-written adapters).  This module
defines the same seam for the Python library: a :class:`Transport` hands out
one :class:`TransportEndpoint` per location; an endpoint can ``send`` to and
``recv`` from peers; every payload is serialised so that message sizes are
meaningful and endpoints never share mutable state.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterable, Optional

from ..core.errors import TransportError
from ..core.locations import Census, Location, LocationsLike, as_census
from . import wire
from .stats import ChannelStats

#: Default number of seconds an endpoint waits for a message before concluding
#: that the network of projected programs has deadlocked or crashed.
DEFAULT_TIMEOUT = 30.0


def serialize(payload: Any) -> bytes:
    """Serialize a payload for transmission.

    Uses the compact codec of :mod:`repro.runtime.wire` (pickle for payload
    shapes outside its fast paths), which plays the role of MultiChor's
    ``Show``/``Read`` constraints: only values that survive a round-trip may
    be communicated.
    """
    try:
        return wire.encode(payload)
    except Exception as exc:
        raise TransportError(f"payload {payload!r} is not serializable: {exc}") from exc


def deserialize(data: bytes) -> Any:
    """Inverse of :func:`serialize`."""
    try:
        return wire.decode(data)
    except Exception as exc:
        raise TransportError(f"could not deserialize message: {exc}") from exc


class TransportEndpoint(abc.ABC):
    """One location's view of the transport: its own sends and receives."""

    def __init__(self, location: Location, stats: ChannelStats, timeout: float):
        self.location = location
        self._stats = stats
        self._timeout = timeout

    @abc.abstractmethod
    def send(self, receiver: Location, payload: Any) -> None:
        """Deliver ``payload`` to ``receiver``; never blocks indefinitely."""

    @abc.abstractmethod
    def recv(self, sender: Location) -> Any:
        """Return the next payload from ``sender``; raises
        :class:`~repro.core.errors.TransportError` on timeout."""

    def send_many(self, receivers: Iterable[Location], payload: Any) -> None:
        """Deliver the *same* ``payload`` to every receiver (the broadcast path).

        The base implementation simply loops over :meth:`send`; transports
        whose send path starts with serialization override this with a
        serialize-once fast path (one :func:`serialize` shared by all
        receivers).  ``receivers`` must not include this endpoint's own
        location — a multicast sender keeps its copy without a message.
        """
        for receiver in receivers:
            self.send(receiver, payload)

    def recv_many(self, senders: Iterable[Location]) -> Dict[Location, Any]:
        """Receive one payload from each sender, in the order given.

        A convenience for gather-style rounds; equivalent to a loop over
        :meth:`recv`.
        """
        return {sender: self.recv(sender) for sender in senders}

    # -- instance scoping ----------------------------------------------------------
    #
    # A persistent engine pipelines many choreography instances over one
    # transport; the ``*_scoped`` methods carry an instance id alongside each
    # payload so receivers can demultiplex.  The base implementations carry
    # the tag *inside* the payload (an ``(instance, payload)`` tuple), which
    # works for any transport; Local/TCP override them to carry the tag in
    # their framing instead, so the payload bytes recorded in
    # :class:`~repro.runtime.stats.ChannelStats` stay exactly the bytes of
    # the payload's serialization on every execution path.

    def send_scoped(self, receiver: Location, instance: int, payload: Any) -> None:
        """Send ``payload`` tagged with a choreography-instance id."""
        self.send(receiver, (instance, payload))

    def send_many_scoped(
        self, receivers: Iterable[Location], instance: int, payload: Any
    ) -> None:
        """Broadcast counterpart of :meth:`send_scoped` (serialize-once capable)."""
        self.send_many(receivers, (instance, payload))

    def recv_scoped(self, sender: Location) -> "tuple[int, Any]":
        """Return ``(instance, payload)``: the counterpart of :meth:`send_scoped`."""
        message = self.recv(sender)
        if (
            not isinstance(message, tuple)
            or len(message) != 2
            or not isinstance(message[0], int)
        ):
            raise TransportError(
                f"{self.location!r} received an untagged message from {sender!r} on an "
                "instance-scoped channel; do not mix raw sends with engine runs"
            )
        return message

    def _record(self, receiver: Location, nbytes: int) -> None:
        self._stats.record(self.location, receiver, nbytes)

    def use_stats(self, stats: ChannelStats) -> None:
        """Redirect this endpoint's send-side accounting to ``stats``.

        Message statistics are recorded on the sending side, so pointing one
        endpoint at a different sink re-attributes exactly that location's
        sends.  :class:`repro.runtime.engine.ChoreoEngine` uses this to tee
        each send into both the transport's cumulative stats and the current
        run's per-instance delta.  Only the (single) thread driving this
        endpoint may call it.
        """
        self._stats = stats


class Transport(abc.ABC):
    """A communication substrate connecting a fixed census of locations."""

    def __init__(self, census: LocationsLike, timeout: float = DEFAULT_TIMEOUT):
        self.census: Census = as_census(census).require_nonempty()
        self.stats = ChannelStats()
        self.timeout = timeout
        self._endpoints: Dict[Location, TransportEndpoint] = {}
        #: The live ChoreoEngine driving this transport, if any: cached
        #: endpoints and the instance-id space are single-session resources.
        self._engine_lease: Optional[object] = None

    @abc.abstractmethod
    def _make_endpoint(self, location: Location) -> TransportEndpoint:
        """Create the endpoint object for ``location``."""

    def endpoint(self, location: Location) -> TransportEndpoint:
        """Return (creating if necessary) the endpoint for ``location``."""
        self.census.require_member(location)
        if location not in self._endpoints:
            self._endpoints[location] = self._make_endpoint(location)
        return self._endpoints[location]

    def close(self) -> None:
        """Release any resources held by the transport (sockets, threads)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *_exc: Any) -> Optional[bool]:
        self.close()
        return None
