"""Persistent execution sessions: one API for every backend.

The paper's case studies all ship a one-shot "main method": resolve a
transport, materialize endpoints, spawn one thread per location, run, tear
everything down.  That shape cannot serve sustained traffic — a KVS or
bookstore answering a stream of requests must not pay transport setup and
thread spawn per choreography instance.  :class:`ChoreoEngine` is the
session-shaped replacement:

* the engine owns a **warm backend** (a transport with live endpoints, or the
  centralized reference semantics) and one **long-lived daemon worker thread
  per location**, created once;
* :meth:`ChoreoEngine.run` executes one choreography instance and returns a
  :class:`ChoreographyResult` whose ``stats`` are the **per-run delta**, not
  the session's cumulative counts (those stay on :attr:`ChoreoEngine.stats`);
* :meth:`ChoreoEngine.submit` enqueues an instance without waiting, returning
  a :class:`concurrent.futures.Future`, so independent instances **pipeline**
  through the same warm session.  Messages are tagged with an instance id
  (:class:`~repro.core.epp.InstanceScopedEndpoint`) so instances never
  interleave even when locations progress at different speeds;
* backends are resolved by name through the pluggable registry
  (:mod:`repro.runtime.registry`): ``"local"``, ``"tcp"``, ``"simulated"``,
  ``"central"``, any name added via
  :func:`~repro.runtime.registry.register_backend`, or a pre-built
  :class:`~repro.runtime.transport.Transport` instance.

:func:`repro.runtime.runner.run_choreography` remains as a one-shot
compatibility wrapper over a throwaway engine.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Union

from ..core.epp import InstanceScopedEndpoint, project
from ..core.errors import ChoreographyRuntimeError, TransportError
from ..core.located import Faceted, Located
from ..core.locations import Census, Location, LocationsLike, as_census
from ..core.ops import Choreography
from .central import CentralBackend, CentralOp, localize_return
from .registry import Backend, create_backend
from .stats import ChannelStats, record_broadcast_on
from .transport import DEFAULT_TIMEOUT, Transport, TransportEndpoint

#: The "no value" marker used internally by :class:`ChoreographyResult` so a
#: legitimate ``None`` return is distinguishable from an absent placeholder.
_NO_VALUE = object()

#: Hard ceiling (seconds, added to one ``2 * timeout`` grace) on how long
#: :meth:`ChoreoEngine.close` waits for workers beyond the per-instance
#: timeout.  The backlog-scaled deadline exists so a *healthy* queue of
#: submitted instances can drain, but scaling alone is unbounded: a census
#: wedged on a dead peer with thousands of pipelined submissions queued
#: behind it would make ``close()`` wait ``timeout * 2 * (backlog + 1)``
#: seconds — hours — for workers that will never finish.  Daemon workers are
#: abandoned (and logged) at the cap instead; they cannot outlive the
#: process.
CLOSE_DEADLINE_CAP = 60.0

logger = logging.getLogger("repro.runtime.engine")


@dataclass
class ChoreographyResult:
    """The outcome of one distributed execution of a choreography.

    ``stats`` holds the messages of *this run only*; a persistent engine's
    cumulative counts live on :attr:`ChoreoEngine.stats`.
    """

    census: Census
    returns: Dict[Location, Any]
    stats: ChannelStats
    elapsed_seconds: float = 0.0
    per_location_args: Dict[Location, Any] = field(default_factory=dict)
    #: The engine instance id this run executed under (0 for one-shot runs).
    instance: int = 0

    def _unwrapped(self, location: Location) -> Any:
        """``location``'s return value, or ``_NO_VALUE`` for a placeholder.

        Presence is decided by ownership — a ``Located``/``Faceted`` wrapper
        that actually holds a value for ``location`` — never by comparing the
        value against ``None``, so a choreography legitimately returning
        ``None`` is still "present".
        """
        value = self.returns[location]
        if isinstance(value, Located):
            return value.peek() if value.is_present() else _NO_VALUE
        if isinstance(value, Faceted):
            facets = value.visible_facets()
            return facets[location] if location in facets else _NO_VALUE
        return value

    def has_value(self, location: Location) -> bool:
        """True when ``location`` returned an actual value, not a placeholder."""
        return self._unwrapped(location) is not _NO_VALUE

    def value_at(self, location: Location, default: Any = None) -> Any:
        """The endpoint return value at ``location``, unwrapping located values.

        Returns ``default`` when ``location`` holds only a placeholder; use
        :meth:`has_value` to tell a defaulted result from a real ``None``.
        """
        value = self._unwrapped(location)
        return default if value is _NO_VALUE else value

    def present_values(self) -> Dict[Location, Any]:
        """Every endpoint's unwrapped return value, skipping placeholders only."""
        unwrapped = {}
        for location in self.census:
            value = self._unwrapped(location)
            if value is not _NO_VALUE:
                unwrapped[location] = value
        return unwrapped


class _TeeStats:
    """Forwards ``record`` to several sinks (cumulative + per-run stats)."""

    __slots__ = ("_sinks",)

    def __init__(self, *sinks: Any):
        self._sinks = sinks

    def record(self, sender: Location, receiver: Location, nbytes: int) -> None:
        for sink in self._sinks:
            sink.record(sender, receiver, nbytes)

    def record_broadcast(
        self, sender: Location, receivers: Any, nbytes: int
    ) -> None:
        """Batched counterpart of :meth:`record`, one call per broadcast."""
        receivers = list(receivers)
        for sink in self._sinks:
            record_broadcast_on(sink, sender, receivers, nbytes)


class _EngineJob:
    """One submitted choreography instance, shared by every location worker."""

    __slots__ = (
        "instance",
        "choreography",
        "args",
        "kwargs",
        "location_args",
        "census",
        "stats",
        "future",
        "submitted",
        "started",
        "on_resolve",
        "_lock",
        "_remaining",
        "_returns",
        "_failures",
    )

    def __init__(
        self,
        instance: int,
        choreography: Choreography,
        args: Sequence[Any],
        kwargs: Dict[str, Any],
        location_args: Dict[Location, Sequence[Any]],
        census: Census,
        workers: int,
    ):
        self.instance = instance
        self.choreography = choreography
        self.args = tuple(args)
        self.kwargs = kwargs
        self.location_args = location_args
        self.census = census
        self.stats = ChannelStats()
        self.future: "Future[ChoreographyResult]" = Future()
        self.submitted = time.perf_counter()
        self.started: Optional[float] = None
        #: Called (once) just before the Future is resolved, so bookkeeping
        #: like the engine's pending count is already settled when a caller
        #: blocked in ``future.result()`` wakes up.
        self.on_resolve: Optional[Any] = None
        self._lock = threading.Lock()
        self._remaining = workers
        self._returns: Dict[Location, Any] = {}
        self._failures: Dict[Location, BaseException] = {}

    def args_for(self, location: Location) -> tuple:
        return self.args + tuple(self.location_args.get(location, ()))

    def mark_started(self) -> None:
        """Stamp the moment the first worker begins executing this instance,
        so ``elapsed_seconds`` measures run time, not queue wait."""
        with self._lock:
            if self.started is None:
                self.started = time.perf_counter()

    def unfinished_locations(self) -> "list[Location]":
        """Locations that have not reported a return or failure yet."""
        with self._lock:
            return [
                location
                for location in self.census
                if location not in self._returns and location not in self._failures
            ]

    def finish_location(self, location: Location, value: Any) -> None:
        with self._lock:
            self._returns[location] = value
            self._remaining -= 1
            done = self._remaining == 0
        if done:
            self._resolve()

    def fail_location(self, location: Location, error: BaseException) -> None:
        with self._lock:
            self._failures[location] = error
            self._remaining -= 1
            done = self._remaining == 0
        if done:
            self._resolve()

    def finish_all(self, returns: Dict[Location, Any]) -> None:
        """Resolve every location at once (the centralized backend)."""
        with self._lock:
            self._returns = returns
            self._remaining = 0
        self._resolve()

    def _resolve(self) -> None:
        if self.on_resolve is not None:
            self.on_resolve()
        elapsed = time.perf_counter() - (self.started or self.submitted)
        if self._failures:
            # A crash at one endpoint typically makes its peers time out
            # waiting for messages; report the root cause, not the induced
            # timeouts.  The full per-location failure bundle rides along so
            # failure handlers (e.g. cluster failover) can follow the chain
            # of timeout blames themselves.
            def root_cause_first(item):
                location, exc = item
                return (isinstance(exc, TransportError), location)

            location, original = sorted(self._failures.items(), key=root_cause_first)[0]
            outcome = ChoreographyRuntimeError(location, original, failures=self._failures)
            result = None
        else:
            outcome = None
            result = ChoreographyResult(
                census=self.census,
                returns=dict(self._returns),
                stats=self.stats,
                elapsed_seconds=elapsed,
                instance=self.instance,
            )
        try:
            if outcome is not None:
                self.future.set_exception(outcome)
            else:
                self.future.set_result(result)
        except Exception:
            # The caller cancelled the Future; the instance already ran — a
            # cancelled result must not take down the worker threads.
            pass


#: Queue label for the centralized backend's single worker.
_CENTRAL_WORKER = "<centralized>"


class ChoreoEngine:
    """A persistent execution session for choreographies over one census.

    Parameters
    ----------
    census:
        The locations participating in every choreography this engine runs.
    backend:
        A registered backend name (``"local"``, ``"tcp"``, ``"simulated"``,
        ``"central"``, or anything added with
        :func:`~repro.runtime.registry.register_backend`) or a pre-built
        :class:`~repro.runtime.transport.Transport` /
        :class:`~repro.runtime.central.CentralBackend`.  Pre-built backends
        are *borrowed*: :meth:`close` leaves them open.
    timeout:
        Seconds an endpoint waits on a receive before declaring failure.
    **backend_options:
        Extra keyword arguments forwarded to the backend factory (e.g.
        ``latency=`` / ``bandwidth=`` for ``"simulated"``, or a
        ``faults=``:class:`~repro.faults.FaultPlan` for the ``"simulated"``
        and ``"tcp"`` backends — see ``docs/testing.md``).

    The engine is a context manager; leaving the ``with`` block shuts down
    the workers and closes an engine-owned backend.
    """

    def __init__(
        self,
        census: LocationsLike,
        backend: Union[str, Backend] = "local",
        *,
        timeout: float = DEFAULT_TIMEOUT,
        **backend_options: Any,
    ):
        self.census = as_census(census).require_nonempty()
        self.timeout = timeout
        self._submit_lock = threading.Lock()
        self._next_instance = 0
        self._pending = 0
        self._closed = False

        if isinstance(backend, str):
            resolved = create_backend(backend, self.census, timeout=timeout, **backend_options)
            self.backend_name: str = backend
            self._owns_backend = True
        elif isinstance(backend, (Transport, CentralBackend)):
            if backend_options:
                raise ValueError(
                    "backend options apply to named backends only; configure a "
                    "pre-built backend before passing it in"
                )
            resolved = backend
            self.backend_name = type(backend).__name__
            self._owns_backend = False
        else:
            raise TypeError(
                f"backend must be a registered name, a Transport, or a "
                f"CentralBackend; got {type(backend).__name__}"
            )

        self._queues: Dict[str, "queue.SimpleQueue[Optional[_EngineJob]]"] = {}
        self._workers: list = []
        self._central: Optional[CentralBackend] = None
        self._transport: Optional[Transport] = None

        try:
            if isinstance(resolved, CentralBackend):
                self._central = resolved
                self.stats = resolved.stats
                self._spawn_worker(_CENTRAL_WORKER, self._central_worker)
            elif isinstance(resolved, Transport):
                # Claim the transport for this session: its cached endpoints
                # and instance-id space cannot be shared by two live engines
                # without cross-delivering their messages.
                holder = getattr(resolved, "_engine_lease", None)
                if holder is not None:
                    raise ValueError(
                        "transport is already driven by another live ChoreoEngine; "
                        "close it first or give each session its own transport"
                    )
                resolved._engine_lease = self
                self._transport = resolved
                self.stats = resolved.stats
                resolved.census.require_subset(self.census)
                # Materialize every endpoint up front so transports that need a
                # rendezvous (e.g. TCP port discovery) are warm before any worker
                # starts sending — this is the setup cost paid exactly once.
                self._endpoints: Dict[Location, TransportEndpoint] = {
                    location: resolved.endpoint(location) for location in self.census
                }
                # Per-worker stashes for messages of future instances, kept on
                # the engine (not as worker locals) so the stash-purge
                # invariant — no keys ≤ a finished instance — is observable.
                self._stashes: Dict[Location, Dict[int, Dict[Location, Any]]] = {
                    location: {} for location in self.census
                }
                for location in self.census:
                    self._spawn_worker(location, self._endpoint_worker)
            else:
                raise TypeError(
                    f"backend factory produced {type(resolved).__name__}; expected "
                    "a Transport or CentralBackend"
                )
        except BaseException:
            # Half-built sessions must not leak sockets, threads, or the
            # transport lease: stop any workers already spawned and close an
            # engine-owned transport.
            self._closed = True
            for jobs in self._queues.values():
                jobs.put(None)
            if isinstance(resolved, Transport):
                if getattr(resolved, "_engine_lease", None) is self:
                    resolved._engine_lease = None
                if self._owns_backend:
                    resolved.close()
            raise

    def _spawn_worker(self, label: str, target) -> None:
        jobs: "queue.SimpleQueue[Optional[_EngineJob]]" = queue.SimpleQueue()
        self._queues[label] = jobs
        # Daemon threads: a deadlocked or runaway choreography must never be
        # able to block interpreter exit after its timeout has fired.
        worker = threading.Thread(
            target=target, args=(label, jobs), name=f"engine-{label}", daemon=True
        )
        self._workers.append(worker)
        worker.start()

    # ---------------------------------------------------------------- surface --

    @property
    def transport(self) -> Optional[Transport]:
        """The warm transport backing this engine (``None`` for ``"central"``)."""
        return self._transport

    @property
    def pending(self) -> int:
        """The number of submitted instances whose Futures have not resolved.

        Counts both queued and currently-executing instances.  A session is
        *quiescent* when this is zero — the precondition control-plane
        operations such as a cluster rebalance
        (:meth:`repro.cluster.ClusterEngine.add_shard`) check before touching
        shared state.

        Returns:
            The in-flight instance count at the moment of the call.
        """
        with self._submit_lock:
            return self._pending

    def submit(
        self,
        choreography: Choreography,
        args: Sequence[Any] = (),
        kwargs: Optional[Mapping[str, Any]] = None,
        *,
        location_args: Optional[Mapping[Location, Sequence[Any]]] = None,
    ) -> "Future[ChoreographyResult]":
        """Enqueue one choreography instance; return a Future for its result.

        Instances submitted while earlier ones are still running pipeline
        through the same warm session: every location executes instances in
        submission order, and instance-tagged messages keep concurrent
        instances from interleaving.

        Args:
            choreography: Any ``chor(op, *args, **kwargs)`` callable
                (including a :class:`~repro.chor.ChoreographyDef`).
            args: Positional arguments every location passes after ``op``.
            kwargs: Keyword arguments every location passes.
            location_args: Extra positional arguments appended *per
                location* (only meaningful under projection).

        Returns:
            A Future resolving to the instance's :class:`ChoreographyResult`,
            or raising :class:`~repro.core.errors.ChoreographyRuntimeError`
            with the failing location's root cause.

        Raises:
            RuntimeError: If the engine is closed.
            ValueError: If ``location_args`` names a non-member, or is used
                with the centralized backend.
        """
        return self._submit_job(choreography, args, kwargs, location_args).future

    def _submit_job(
        self,
        choreography: Choreography,
        args: Sequence[Any] = (),
        kwargs: Optional[Mapping[str, Any]] = None,
        location_args: Optional[Mapping[Location, Sequence[Any]]] = None,
    ) -> _EngineJob:
        kwargs = dict(kwargs or {})
        location_args = dict(location_args or {})
        for location in location_args:
            self.census.require_member(location)
        if self._central is not None and location_args:
            raise ValueError(
                "the centralized backend calls the choreography once for the whole "
                "census; per-location arguments are only meaningful under projection"
            )
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed ChoreoEngine")
            instance = self._next_instance
            self._next_instance += 1
            self._pending += 1
            job = _EngineJob(
                instance, choreography, args, kwargs, location_args,
                self.census, workers=len(self._queues),
            )
            # Decrement *before* the Future resolves (not in a done
            # callback): a caller that has seen every result() return must
            # observe pending == 0, or quiescence checks would flake.
            job.on_resolve = self._on_job_done
            # Enqueue to every worker under the lock so all locations observe
            # submissions in the same order — the invariant instance tagging
            # relies on.
            for jobs in self._queues.values():
                jobs.put(job)
        return job

    def _on_job_done(self) -> None:
        with self._submit_lock:
            self._pending -= 1

    def run(
        self,
        choreography: Choreography,
        args: Sequence[Any] = (),
        kwargs: Optional[Mapping[str, Any]] = None,
        *,
        location_args: Optional[Mapping[Location, Sequence[Any]]] = None,
        wait_timeout: Optional[float] = None,
    ) -> ChoreographyResult:
        """Execute one choreography instance and wait for its result.

        ``wait_timeout`` bounds the wait for the whole instance; the default
        mirrors the one-shot runner's shared join deadline (twice the receive
        timeout plus margin), scaled by the number of instances already
        queued ahead, so a healthy pipelined backlog is not misreported as a
        deadlock.  Endpoint receives time out on their own, so this only
        fires for runaway local computation.

        Args:
            choreography: As for :meth:`submit`.
            args: As for :meth:`submit`.
            kwargs: As for :meth:`submit`.
            location_args: As for :meth:`submit`.
            wait_timeout: Overall wait budget in seconds; ``None`` uses the
                backlog-scaled default described above.

        Returns:
            The instance's :class:`ChoreographyResult`; its ``stats`` are
            this run's delta, cumulative counts stay on :attr:`stats`.

        Raises:
            ChoreographyRuntimeError: When any location fails, or the wait
                budget elapses (naming the locations still running).
        """
        with self._submit_lock:
            backlog = self._pending
        job = self._submit_job(choreography, args, kwargs, location_args)
        if wait_timeout is not None:
            budget = wait_timeout
        else:
            budget = (self.timeout * 2 + 5.0) * (backlog + 1)
        try:
            return job.future.result(timeout=budget)
        except _FutureTimeout:
            stuck = job.unfinished_locations()
            raise ChoreographyRuntimeError(
                stuck[0] if stuck else "<engine>",
                TimeoutError(
                    f"choreography instance did not finish within {budget:.1f}s "
                    f"(locations still running: {stuck!r}); it may be deadlocked "
                    "or stuck in local computation"
                ),
            ) from None

    def close(self) -> None:
        """Shut down the workers; close the backend if this engine owns it.

        Already-submitted instances are drained first (their queues are FIFO
        and the stop sentinel is enqueued last).  Idempotent.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            backlog = self._pending
            for jobs in self._queues.values():
                jobs.put(None)
        # One wall-clock deadline shared by every join (a hung census must
        # not compound the timeout once per worker), scaled by the backlog so
        # a healthy queue of submitted instances gets to finish before the
        # transport goes away — but capped: a wedged census with thousands of
        # pipelined submissions queued behind it must not make close() wait
        # timeout-per-instance for workers that will never drain.
        grace = min(
            self.timeout * 2 * (backlog + 1),
            self.timeout * 2 + CLOSE_DEADLINE_CAP,
        )
        deadline = time.monotonic() + grace
        for worker in self._workers:
            worker.join(timeout=max(0.0, deadline - time.monotonic()))
        abandoned = [worker.name for worker in self._workers if worker.is_alive()]
        if abandoned:
            logger.warning(
                "close() abandoned %d still-running worker(s) after %.1fs "
                "(backlog was %d): %s; daemon threads will not outlive the process",
                len(abandoned), grace, backlog, ", ".join(abandoned),
            )
        if self._owns_backend and self._transport is not None:
            self._transport.close()
        if self._transport is not None and getattr(self._transport, "_engine_lease", None) is self:
            self._transport._engine_lease = None

    def __enter__(self) -> "ChoreoEngine":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # ---------------------------------------------------------------- workers --

    def _endpoint_worker(self, location: Location, jobs) -> None:
        """One location's long-lived runner: projects and executes each job."""
        endpoint = self._endpoints[location]
        base_stats = self._transport.stats
        redirects = hasattr(endpoint, "use_stats")
        flush = getattr(endpoint, "flush", None)
        stash: Dict[int, Dict[Location, Any]] = self._stashes[location]
        while True:
            job = jobs.get()
            if job is None:
                return
            job.mark_started()
            # The worker must report exactly one outcome per job, whatever
            # happens: a Future that never resolves strands every caller
            # blocked on it, so even a failure in the bookkeeping below (the
            # stats-tee restore, the stash purge) is converted into a
            # fail_location rather than allowed to kill the worker thread.
            outcome, payload = "error", None
            try:
                scoped = InstanceScopedEndpoint(endpoint, job.instance, stash)
                if redirects:
                    endpoint.use_stats(_TeeStats(base_stats, job.stats))
                try:
                    program = project(job.choreography, self.census, location, scoped)
                    value = program(*job.args_for(location), **job.kwargs)
                    # Instance-boundary flush: a coalescing endpoint may still
                    # hold this instance's trailing sends; they are part of the
                    # run, so a failed drain fails the run, and flushing before
                    # the stats tee is restored keeps the per-run ChannelStats
                    # delta exact.
                    if flush is not None:
                        flush()
                except BaseException as exc:  # noqa: BLE001 - reported via the Future
                    if flush is not None:
                        try:
                            flush()  # best-effort: peers may be blocked on these
                        except BaseException:  # noqa: BLE001 - original error wins
                            pass
                    outcome, payload = "error", exc
                else:
                    outcome, payload = "ok", value
                finally:
                    if redirects:
                        endpoint.use_stats(base_stats)
                    # Unconsumed messages of instances up to and including this
                    # one must not linger (a long-lived session would otherwise
                    # grow without bound): tags ≤ the just-finished instance are
                    # dead by construction — later instances drop them on arrival
                    # — so purge every such stash key, not just the current one.
                    for stale in [key for key in stash if key <= job.instance]:
                        del stash[stale]
            except BaseException as exc:  # noqa: BLE001 - bookkeeping failed
                outcome, payload = "error", exc
            if outcome == "ok":
                job.finish_location(location, payload)
            else:
                job.fail_location(location, payload)

    def _central_worker(self, _label: str, jobs) -> None:
        """The centralized backend's single runner."""
        while True:
            job = jobs.get()
            if job is None:
                return
            job.mark_started()
            try:
                op = CentralOp(self.census, _TeeStats(self._central.stats, job.stats))
                value = job.choreography(op, *job.args, **job.kwargs)
            except BaseException as exc:  # noqa: BLE001 - reported via the Future
                job.fail_location(_CENTRAL_WORKER, exc)
            else:
                job.finish_all(
                    {
                        location: localize_return(value, location)
                        for location in self.census
                    }
                )
