"""The socket wire format shared by the threaded and asyncio TCP backends.

Both TCP transports (:mod:`repro.runtime.tcp`, threaded;
:mod:`repro.runtime.asyncio_tcp`, event-loop) frame messages as::

    [u32 length][u16 sender-length][sender][uvarint instance][payload]

where ``sender`` is the wire-encoded sender location, ``instance`` is the
choreography-instance id (0 for one-shot sends), and ``payload`` is the
:func:`~repro.runtime.transport.serialize`-d message.  This module is the
single definition of that layout — a header builder, an incremental parser,
and the coalescing send/recv machinery both endpoints share — so the two
backends stay interoperable *byte for byte* on the same socket: a frame
written by either backend parses identically on the other, and the payload
byte counts recorded in :class:`~repro.runtime.stats.ChannelStats` are the
exact payload bytes on the wire on both.

Corruption is typed: a frame whose varints run away (see
``wire._read_uvarint``'s 64-bit bound) or whose sender does not decode raises
:class:`FrameCorruption`, a :class:`~repro.core.errors.TransportError`
subclass, instead of misframing the stream.  Readers poison the endpoint's
inboxes with it so blocked receivers surface the corruption promptly as the
typed transport error, not as an eventual timeout.
"""

from __future__ import annotations

import queue
import struct
from typing import Dict, Iterable, List, Tuple

from ..core.errors import ChoreoTimeout, TransportError
from ..core.locations import Location
from . import wire
from .transport import CoalescingEndpoint, deserialize, serialize

LENGTH = struct.Struct("!I")
SENDER_LENGTH = struct.Struct("!H")

#: One parsed frame: ``(sender, instance, payload bytes)``.
Frame = Tuple[Location, int, bytes]


class FrameCorruption(TransportError):
    """The byte stream on a connection does not parse as frames."""


class FrameWriter:
    """Builds frame headers for one sending endpoint.

    The ``[u16 sender-length][sender]`` prefix never changes for an endpoint,
    so it is precomputed; the ``prefix + uvarint(instance)`` tail is memoized
    because within one engine instance every send shares it.
    """

    __slots__ = ("sender_prefix", "_tail")

    def __init__(self, location: Location):
        sender_tag = wire.encode(location)
        self.sender_prefix = SENDER_LENGTH.pack(len(sender_tag)) + sender_tag
        self._tail: Tuple[int, bytes] = (0, self.sender_prefix + b"\x00")

    def header(self, payload_length: int, instance: int) -> bytes:
        """The ``[length][sender-length][sender][instance]`` prefix for a payload."""
        memo_instance, tail = self._tail
        if instance != memo_instance:
            varint = bytearray()
            wire.write_uvarint(varint, instance)
            tail = self.sender_prefix + bytes(varint)
            self._tail = (instance, tail)
        return LENGTH.pack(len(tail) + payload_length) + tail


class FrameParser:
    """Incremental frame parser: feed chunks, collect complete frames.

    Holds a trailing partial frame across :meth:`feed` calls.  Parsing is
    zero-copy via ``memoryview`` slicing with exactly one ``bytes`` copy per
    payload (as it leaves the reused buffer), and the decode of each
    connection's wire-encoded sender is cached — frames on one connection
    come from one peer endpoint.

    Raises:
        FrameCorruption: When a frame's sender or instance varint does not
            decode (including the runaway-continuation-byte case the 64-bit
            varint bound turns into a typed error).
    """

    __slots__ = ("_buffer", "_sender_cache")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._sender_cache: Dict[bytes, Location] = {}

    def feed(self, chunk: bytes) -> List[Frame]:
        self._buffer += chunk
        buffer = self._buffer
        frames: List[Frame] = []
        pos = 0
        size = len(buffer)
        view = memoryview(buffer)
        try:
            while size - pos >= LENGTH.size:
                (length,) = LENGTH.unpack_from(buffer, pos)
                frame_start = pos + LENGTH.size
                frame_end = frame_start + length
                if size < frame_end:
                    break
                try:
                    (sender_length,) = SENDER_LENGTH.unpack_from(buffer, frame_start)
                    sender_start = frame_start + SENDER_LENGTH.size
                    sender_end = sender_start + sender_length
                    sender_raw = bytes(view[sender_start:sender_end])
                    sender = self._sender_cache.get(sender_raw)
                    if sender is None:
                        sender = wire.decode(sender_raw)
                        self._sender_cache[sender_raw] = sender
                    instance, body_start = wire.read_uvarint(buffer, sender_end)
                    if body_start > frame_end:
                        raise ValueError("frame header overruns the frame")
                except (ValueError, struct.error) as exc:
                    raise FrameCorruption(
                        f"corrupt frame on the wire: {exc}"
                    ) from exc
                frames.append((sender, instance, bytes(view[body_start:frame_end])))
                pos = frame_end
        finally:
            view.release()
        if pos:
            del buffer[:pos]
        return frames


class FramedCoalescingEndpoint(CoalescingEndpoint):
    """Send/recv machinery shared by the threaded and asyncio TCP endpoints.

    Owns the per-peer inboxes (items are ``(instance, payload bytes)`` pairs,
    or a :class:`FrameCorruption` poison), the frame-header builder, and the
    serialize-once send paths; subclasses provide connection management and
    ``_deliver`` (how a drained batch of pre-framed buffers reaches a
    receiver's socket).
    """

    def __init__(self, location, transport, timeout: float):
        super().__init__(location, transport.stats, timeout)
        self._transport = transport
        self._inboxes: Dict[Location, "queue.SimpleQueue"] = {
            peer: queue.SimpleQueue() for peer in transport.census if peer != location
        }
        self._frame_writer = FrameWriter(location)

    # -- outgoing ------------------------------------------------------------------

    def _send_serialized(self, receiver: Location, data: bytes, instance: int = 0) -> None:
        if receiver not in self._transport.census:
            raise TransportError(f"unknown receiver {receiver!r}")
        self._record(receiver, len(data))
        header = self._frame_writer.header(len(data), instance)
        self._enqueue(receiver, (header, data), len(header) + len(data))

    def send(self, receiver: Location, payload) -> None:
        self._send_serialized(receiver, serialize(payload))

    def send_scoped(self, receiver: Location, instance: int, payload) -> None:
        self._send_serialized(receiver, serialize(payload), instance)

    def send_many(self, receivers: Iterable[Location], payload) -> None:
        self.send_many_scoped(receivers, 0, payload)

    def send_many_scoped(
        self, receivers: Iterable[Location], instance: int, payload
    ) -> None:
        targets = list(receivers)
        for receiver in targets:  # all-or-nothing: validate before the first frame
            if receiver not in self._transport.census:
                raise TransportError(f"unknown receiver {receiver!r}")
        data = serialize(payload)  # one serialization shared by all receivers
        header = self._frame_writer.header(len(data), instance)  # ...and one header
        self._record_broadcast(targets, len(data))
        nbytes = len(header) + len(data)
        for receiver in targets:
            self._enqueue(receiver, (header, data), nbytes)

    # -- incoming ------------------------------------------------------------------

    def _poison_inboxes(self, error: FrameCorruption) -> None:
        """Wake every blocked receiver with the typed corruption error.

        Called by the reader when a connection's byte stream stops parsing:
        the frames after the damage cannot be attributed to a sender, so
        every peer's inbox gets the poison and the next ``recv`` on any
        channel raises it instead of timing out.
        """
        for inbox in self._inboxes.values():
            inbox.put(error)

    def _recv_serialized(self, sender: Location) -> Tuple[int, bytes]:
        if sender not in self._inboxes:
            raise TransportError(f"unknown sender {sender!r}")
        # Flush-before-block: our own deferred sends must be in flight before
        # we wait on a peer, or two coalescing endpoints could starve each
        # other with full buffers and empty inboxes.
        self.flush()
        try:
            item = self._inboxes[sender].get(timeout=self._timeout)
        except queue.Empty:
            raise ChoreoTimeout(self.location, sender, self._timeout) from None
        if isinstance(item, FrameCorruption):
            raise item
        return item

    def recv(self, sender: Location):
        _instance, data = self._recv_serialized(sender)
        return deserialize(data)

    def recv_scoped(self, sender: Location) -> Tuple[int, object]:
        instance, data = self._recv_serialized(sender)
        return instance, deserialize(data)
