"""Asyncio-native TCP transport: every location's I/O on one event loop.

The threaded TCP backend (:mod:`repro.runtime.tcp`) spends OS threads freely:
one accept thread per location plus one reader thread per live connection —
for a census of *n* fully-connected locations that is ``n + n·(n−1)`` threads
of pure I/O multiplexing before the engine's own workers.  On a small
container that thread tax caps how many warm choreography sessions (shard
replicas, gateway connections, clients) one process can hold open.

This backend replaces all of it with a **single event loop** in one daemon
thread per transport:

* every location's listening socket is an ``asyncio`` server on the loop;
* every connection's reads arrive through an :class:`asyncio.Protocol` whose
  ``data_received`` feeds the shared incremental frame parser
  (:class:`~repro.runtime.framing.FrameParser`) and delivers parsed frames
  into per-sender inboxes — no reader threads;
* the coalescing contract is unchanged on the send side (deferred sends,
  :data:`~repro.runtime.transport.FLUSH_WATERMARK` auto-drains, the
  flush-before-block rule) and a drained batch is handed to the loop as one
  ``transport.writelines(batch)`` — asyncio's vectorized write.  The
  ``drain()`` half of the contract maps onto asyncio's flow control: when
  the loop reports ``pause_writing`` (the kernel send buffer is full), the
  *sending worker thread* blocks until ``resume_writing`` before posting the
  next batch, so a fast producer cannot buffer unboundedly.

The wire format is byte-for-byte the threaded backend's
(:mod:`repro.runtime.framing` is the single definition), so the two backends
interoperate on the same socket and record identical
:class:`~repro.runtime.stats.ChannelStats` — the backend-equivalence property
the repo enforces across local/tcp/simulated/central extends to this backend
unchanged (``tests/test_transport_coalescing.py``).

Choreography code still runs in the engine's one-worker-thread-per-location
(projected programs are ordinary blocking Python); what moves onto the loop
is every socket.  That is the scaling story: a warm 4-party asyncio session
costs 1 loop thread of I/O instead of the threaded backend's 16+, so the
number of concurrent warm sessions at a fixed memory/thread budget grows
accordingly (``benchmarks/bench_asyncio_backend.py``).

``faults=`` takes a :class:`repro.faults.FaultPlan` exactly like the
threaded backend; injected delays are realized as **event-loop timers**
(``loop.call_later`` wakes the blocked worker) rather than bare
``time.sleep``, so a delayed sender never wedges the shared loop.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import TimeoutError as _FutureTimeout
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import TransportError
from ..core.locations import Location, LocationsLike
from .framing import FrameCorruption, FramedCoalescingEndpoint, FrameParser
from .transport import DEFAULT_TIMEOUT, Transport, TransportEndpoint


class _ReaderProtocol(asyncio.Protocol):
    """Inbound connection: parse frames on the loop, deliver to inboxes.

    ``queue.SimpleQueue.put`` never blocks, so delivering from the loop
    thread is safe; receivers block in their own worker threads.
    """

    def __init__(self, endpoint: "_AsyncioEndpoint"):
        self._endpoint = endpoint
        self._parser = FrameParser()
        self._transport: Optional[asyncio.Transport] = None

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self._transport = transport  # type: ignore[assignment]

    def data_received(self, data: bytes) -> None:
        try:
            frames = self._parser.feed(data)
        except FrameCorruption as exc:
            # Same contract as the threaded reader: poison every inbox with
            # the typed error and drop the connection — a stream that stops
            # parsing must fail receivers loudly, not let them time out.
            self._endpoint._poison_inboxes(exc)
            if self._transport is not None:
                self._transport.close()
            return
        inboxes = self._endpoint._inboxes
        for sender, instance, payload in frames:
            inbox = inboxes.get(sender)
            if inbox is not None:
                inbox.put((instance, payload))


class _WriterProtocol(asyncio.Protocol):
    """Outbound connection: exposes asyncio's flow control to worker threads.

    ``writable`` is the thread-side face of ``drain()``: set while the
    loop's write buffer is under its high-water mark, cleared on
    ``pause_writing``.  A sending worker waits on it before posting another
    batch, which bounds per-connection buffering to roughly one batch past
    the kernel's appetite.
    """

    def __init__(self) -> None:
        self.writable = threading.Event()
        self.writable.set()
        self.lost: Optional[BaseException] = None

    def connection_lost(self, exc: Optional[BaseException]) -> None:
        self.lost = exc if exc is not None else ConnectionResetError("connection closed")
        self.writable.set()  # never strand a waiting sender

    def pause_writing(self) -> None:
        self.writable.clear()

    def resume_writing(self) -> None:
        self.writable.set()


class _AsyncioEndpoint(FramedCoalescingEndpoint):
    """One location's server and outgoing connections, all owned by the loop.

    The endpoint object itself lives on the engine's worker-thread side: its
    blocking ``send``/``recv``/``flush`` surface is identical to every other
    endpoint's, and it bridges to the loop with ``call_soon_threadsafe`` /
    ``run_coroutine_threadsafe`` only where a socket is touched.
    """

    def __init__(self, location: Location, transport: "AsyncioTCPTransport", timeout: float):
        super().__init__(location, transport, timeout)
        self._loop = transport._loop
        self._closed = False
        # Cached outgoing connections: ``receiver -> (asyncio transport,
        # writer protocol)``.  ``_out_lock`` (from the coalescing base)
        # guards only the cache dict, never connection setup.
        self._out: Dict[Location, Tuple[asyncio.Transport, _WriterProtocol]] = {}
        server = self._call_on_loop(
            self._loop.create_server(
                lambda: _ReaderProtocol(self), "127.0.0.1", 0
            ),
            "start server",
        )
        self._server: asyncio.AbstractServer = server
        self.port = server.sockets[0].getsockname()[1]

    # -- loop plumbing -------------------------------------------------------------

    def _call_on_loop(self, coroutine, what: str):
        """Run ``coroutine`` on the transport's loop; surface typed failures."""
        if self._transport._loop_closed:
            coroutine.close()  # un-awaited coroutine: silence the warning
            raise TransportError(f"asyncio transport is closed ({what})")
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        try:
            return future.result(timeout=self._timeout)
        except (TimeoutError, _FutureTimeout):
            future.cancel()
            raise TransportError(
                f"{self.location!r}: {what} did not complete within {self._timeout}s"
            ) from None
        except OSError as exc:
            raise TransportError(f"{self.location!r}: {what} failed: {exc}") from exc

    # -- outgoing ------------------------------------------------------------------

    def _connection_to(self, receiver: Location) -> Tuple[asyncio.Transport, _WriterProtocol]:
        with self._out_lock:
            pair = self._out.get(receiver)
        if pair is not None:
            return pair
        port = self._transport.port_of(receiver)
        conn, proto = self._call_on_loop(
            self._loop.create_connection(_WriterProtocol, "127.0.0.1", port),
            f"connect to {receiver!r}",
        )
        with self._out_lock:
            raced = self._out.get(receiver)
            if raced is not None:  # pragma: no cover - depends on thread timing
                self._loop.call_soon_threadsafe(conn.close)
                return raced
            self._out[receiver] = (conn, proto)
        return conn, proto

    def _deliver(self, receiver: Location, batch: List[bytes]) -> None:
        """A drained batch becomes one ``writelines`` on the event loop.

        The drain() mapping: before handing the loop another batch, wait for
        the connection to be writable (asyncio's ``resume_writing``), so the
        loop's write buffer — not this thread — is the only place bytes
        queue, and it stays bounded by the loop's high-water mark.
        """
        conn, proto = self._connection_to(receiver)
        if proto.lost is not None:
            raise TransportError(
                f"{self.location!r} failed to send to {receiver!r}: {proto.lost}"
            )
        if not proto.writable.wait(self._timeout):
            raise TransportError(
                f"{self.location!r}: send buffer to {receiver!r} stayed full for "
                f"{self._timeout}s (peer not draining)"
            )
        self._loop.call_soon_threadsafe(self._write_batch, conn, proto, batch)

    @staticmethod
    def _write_batch(
        conn: asyncio.Transport, proto: _WriterProtocol, batch: List[bytes]
    ) -> None:
        # Runs on the loop.  A connection torn down between the thread-side
        # check and this callback must not crash the shared loop; the loss is
        # surfaced to the sender on its next batch via ``proto.lost``.
        if proto.lost is None and not conn.is_closing():
            conn.writelines(batch)

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._discard_buffers()
        loop = self._loop
        if self._transport._loop_closed:
            return

        def _shutdown() -> None:
            self._server.close()
            for conn, _proto in self._out.values():
                conn.close()

        done = threading.Event()

        def _shutdown_and_signal() -> None:
            try:
                _shutdown()
            finally:
                done.set()

        loop.call_soon_threadsafe(_shutdown_and_signal)
        done.wait(self._timeout)
        with self._out_lock:
            self._out.clear()


class AsyncioTCPTransport(Transport):
    """Loopback TCP transport multiplexing every socket onto one event loop.

    Wire-compatible with :class:`~repro.runtime.tcp.TCPTransport` (the frame
    format is shared, see :mod:`repro.runtime.framing`) and drop-in
    equivalent for engines: endpoints expose the same blocking surface, and
    a choreography records byte-identical
    :class:`~repro.runtime.stats.ChannelStats` on either backend.

    As with the threaded backend, all endpoints must be created (via
    :meth:`endpoint`) before any of them sends, so every listener's port is
    known; the engine does this automatically.

    ``faults`` takes a :class:`repro.faults.FaultPlan`: every endpoint is
    wrapped in a :class:`repro.faults.FaultyEndpoint` injecting the plan's
    delays, reorders, crashes, and connect flakes.  Delays are realized as
    event-loop timers (``loop.call_later`` sets an event the blocked worker
    waits on), so an injected delay occupies no loop time and blocks only
    the faulted sender.  The live session is exposed as :attr:`faults`.
    """

    def __init__(
        self,
        census: LocationsLike,
        timeout: float = DEFAULT_TIMEOUT,
        *,
        faults: "Any | None" = None,
    ):
        super().__init__(census, timeout)
        self.faults = faults.session() if faults is not None else None
        self._loop = asyncio.new_event_loop()
        self._loop_closed = False
        self._loop_thread = threading.Thread(
            target=self._run_loop, name="asyncio-tcp-loop", daemon=True
        )
        self._loop_thread.start()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_forever()
        finally:
            self._loop.close()

    def _timer_delay(self, seconds: float) -> None:
        """Realize an injected delay as a loop timer the worker waits on."""
        woken = threading.Event()
        if self._loop_closed:
            return
        self._loop.call_soon_threadsafe(self._loop.call_later, seconds, woken.set)
        woken.wait(seconds + self.timeout)

    def _make_endpoint(self, location: Location) -> TransportEndpoint:
        if self._loop_closed:
            raise TransportError("asyncio transport is closed")
        endpoint: TransportEndpoint = _AsyncioEndpoint(location, self, self.timeout)
        if self.faults is not None:
            endpoint = self.faults.wrap(endpoint, delay_fn=self._timer_delay)
        return endpoint

    def port_of(self, location: Location) -> int:
        """The loopback port ``location``'s server listens on."""
        endpoint = self.endpoint(location)
        return endpoint.port  # type: ignore[attr-defined]

    def close(self) -> None:
        if self._loop_closed:
            return
        for endpoint in self._endpoints.values():
            endpoint.close()  # type: ignore[attr-defined]
        self._loop_closed = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._loop_thread.join(timeout=self.timeout)
