"""Compact binary wire codec with a pickle fallback.

The GMW and KVS case studies exchange overwhelmingly small payloads — single
booleans, short lists of share bits, small tuples of integers.  Pickling such
values costs 4–20+ bytes each (protocol header, memo/frame opcodes, STOP),
which dwarfs the information content and dominates the bytes-on-the-wire the
benchmarks report.  This module provides a tag-byte encoding with fast paths
for exactly the payload shapes that dominate that traffic:

===========  =====================================================
tag          encoding
===========  =====================================================
``N``        ``None``
``T`` `F``   ``True`` / ``False`` (one byte total)
``i``        int, zigzag varint (small magnitudes: 2–3 bytes)
``I``        int outside ±2**63: uvarint length + signed big-endian
``f``        float, IEEE-754 big-endian double
``s``        str, uvarint length + UTF-8
``b``        bytes, uvarint length + raw
``t`` ``l``  tuple / list: uvarint count + encoded elements
``d``        dict: uvarint count + encoded key/value pairs
``P``        anything else: raw :mod:`pickle` bytes
===========  =====================================================

Containers are encoded recursively but only up to a fixed element budget
(:data:`MAX_FAST_ITEMS`); larger or exotic payloads fall back to a single
pickle of the whole value, so the Python-level encoder never loses to the C
pickler on bulk data.  Exact types are required (``type(x) is int``, not
``isinstance``) so subclasses such as enums round-trip through pickle with
their class intact.

``decode(encode(x)) == x`` for every value pickle accepts, and the fast-path
encodings are strictly smaller than ``pickle.dumps`` for bools and ints — a
property test in ``tests/test_property_based.py`` pins both claims down.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Tuple

#: Total number of container elements (recursively) the fast path will encode
#: before handing the whole payload to pickle instead.
MAX_FAST_ITEMS = 128

#: Ints within ±2**63 use the varint fast path; larger ones are length-prefixed.
_VARINT_BOUND = 1 << 63

_FLOAT = struct.Struct("!d")


class _Fallback(Exception):
    """Internal signal: this payload is not fast-path encodable."""


# ---------------------------------------------------------------------- varints --


def _write_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            # No legitimate value needs more than ten varint bytes: lengths,
            # counts, and instance ids all fit 64 bits.  Without this bound a
            # corrupt (or adversarial) run of 0x80 continuation bytes decodes
            # into an arbitrarily large integer that downstream framing would
            # use as a length prefix — a giant allocation or a misframe
            # instead of a typed error.
            raise ValueError("varint overflow (more than 64 bits)")


def write_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` as an unsigned varint (public framing helper)."""
    _write_uvarint(out, value)


def read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    """Read an unsigned varint at ``pos``; returns ``(value, next_pos)``."""
    return _read_uvarint(data, pos)


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return -((value + 1) >> 1) if value & 1 else value >> 1


# --------------------------------------------------------------------- encoding --


def _encode_into(out: bytearray, payload: Any, budget: list) -> None:
    kind = type(payload)
    if payload is None:
        out.append(ord("N"))
    elif kind is bool:
        out.append(ord("T") if payload else ord("F"))
    elif kind is int:
        if -_VARINT_BOUND <= payload < _VARINT_BOUND:
            out.append(ord("i"))
            _write_uvarint(out, _zigzag(payload))
        else:
            raw = payload.to_bytes(payload.bit_length() // 8 + 1, "big", signed=True)
            out.append(ord("I"))
            _write_uvarint(out, len(raw))
            out += raw
    elif kind is float:
        out.append(ord("f"))
        out += _FLOAT.pack(payload)
    elif kind is str:
        try:
            raw = payload.encode("utf-8")
        except UnicodeEncodeError:  # lone surrogates: pickle knows how
            raise _Fallback
        out.append(ord("s"))
        _write_uvarint(out, len(raw))
        out += raw
    elif kind is bytes:
        out.append(ord("b"))
        _write_uvarint(out, len(payload))
        out += payload
    elif kind is tuple or kind is list:
        budget[0] -= len(payload)
        if budget[0] < 0:
            raise _Fallback
        out.append(ord("t") if kind is tuple else ord("l"))
        _write_uvarint(out, len(payload))
        for element in payload:
            _encode_into(out, element, budget)
    elif kind is dict:
        budget[0] -= len(payload)
        if budget[0] < 0:
            raise _Fallback
        out.append(ord("d"))
        _write_uvarint(out, len(payload))
        for key, value in payload.items():
            _encode_into(out, key, budget)
            _encode_into(out, value, budget)
    else:
        raise _Fallback


def encode(payload: Any) -> bytes:
    """Encode ``payload``, preferring the compact fast path over pickle.

    Raises whatever :func:`pickle.dumps` raises for unserializable payloads.
    """
    out = bytearray()
    try:
        _encode_into(out, payload, [MAX_FAST_ITEMS])
    except _Fallback:
        return b"P" + pickle.dumps(payload)
    return bytes(out)


# --------------------------------------------------------------------- decoding --


def _decode_from(data: bytes, pos: int) -> Tuple[Any, int]:
    if pos >= len(data):
        raise ValueError("truncated wire payload")
    tag = data[pos]
    pos += 1
    if tag == ord("N"):
        return None, pos
    if tag == ord("T"):
        return True, pos
    if tag == ord("F"):
        return False, pos
    if tag == ord("i"):
        raw, pos = _read_uvarint(data, pos)
        return _unzigzag(raw), pos
    if tag == ord("I"):
        length, pos = _read_uvarint(data, pos)
        end = pos + length
        return int.from_bytes(data[pos:end], "big", signed=True), end
    if tag == ord("f"):
        end = pos + _FLOAT.size
        return _FLOAT.unpack_from(data, pos)[0], end
    if tag == ord("s"):
        length, pos = _read_uvarint(data, pos)
        end = pos + length
        return data[pos:end].decode("utf-8"), end
    if tag == ord("b"):
        length, pos = _read_uvarint(data, pos)
        end = pos + length
        return data[pos:end], end
    if tag in (ord("t"), ord("l")):
        count, pos = _read_uvarint(data, pos)
        elements = []
        for _ in range(count):
            element, pos = _decode_from(data, pos)
            elements.append(element)
        return (tuple(elements) if tag == ord("t") else elements), pos
    if tag == ord("d"):
        count, pos = _read_uvarint(data, pos)
        result = {}
        for _ in range(count):
            key, pos = _decode_from(data, pos)
            value, pos = _decode_from(data, pos)
            result[key] = value
        return result, pos
    raise ValueError(f"unknown wire tag {tag!r}")


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`."""
    if not data:
        raise ValueError("empty wire payload")
    if data[0] == ord("P"):
        return pickle.loads(data[1:])
    value, pos = _decode_from(bytes(data), 0)
    if pos != len(data):
        raise ValueError(f"trailing bytes after wire payload ({len(data) - pos})")
    return value
