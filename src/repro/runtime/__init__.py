"""Execution substrates: transports, the concurrent runner, and the
centralized reference semantics."""

from .central import CentralOp, run_centralized
from .local import LocalTransport
from .runner import ChoreographyResult, run_choreography
from .simulated import SimulatedNetworkTransport
from .stats import ChannelStats
from .tcp import TCPTransport
from .transport import DEFAULT_TIMEOUT, Transport, TransportEndpoint, deserialize, serialize

__all__ = [
    "CentralOp",
    "ChannelStats",
    "ChoreographyResult",
    "DEFAULT_TIMEOUT",
    "LocalTransport",
    "SimulatedNetworkTransport",
    "TCPTransport",
    "Transport",
    "TransportEndpoint",
    "deserialize",
    "run_centralized",
    "run_choreography",
    "serialize",
]
