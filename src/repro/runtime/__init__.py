"""Execution substrates: persistent engine sessions, transports, the one-shot
runner, and the centralized reference semantics."""

from .central import CentralBackend, CentralOp, localize_return, run_centralized
from .engine import ChoreoEngine, ChoreographyResult
from .local import LocalTransport
from .registry import backend_names, create_backend, register_backend, unregister_backend
from .runner import TRANSPORT_FACTORIES, run_choreography
from .simulated import SimulatedNetworkTransport
from .stats import ChannelStats
from .tcp import TCPTransport
from .transport import DEFAULT_TIMEOUT, Transport, TransportEndpoint, deserialize, serialize

__all__ = [
    "CentralBackend",
    "CentralOp",
    "ChannelStats",
    "ChoreoEngine",
    "ChoreographyResult",
    "DEFAULT_TIMEOUT",
    "LocalTransport",
    "SimulatedNetworkTransport",
    "TCPTransport",
    "TRANSPORT_FACTORIES",
    "Transport",
    "TransportEndpoint",
    "backend_names",
    "create_backend",
    "deserialize",
    "localize_return",
    "register_backend",
    "run_centralized",
    "run_choreography",
    "serialize",
    "unregister_backend",
]
