"""Execution substrates: persistent engine sessions, transports, the one-shot
runner, and the centralized reference semantics."""

from .asyncio_tcp import AsyncioTCPTransport
from .central import CentralBackend, CentralOp, localize_return, run_centralized
from .engine import CLOSE_DEADLINE_CAP, ChoreoEngine, ChoreographyResult
from .local import LocalTransport
from .registry import (
    FaultPlanSource,
    TransportBackend,
    WireCodec,
    backend_names,
    create_backend,
    impl,
    impl_protocols,
    implementations,
    implements,
    register_backend,
    register_impl,
    resolve_impl,
    unregister_backend,
    unregister_impl,
)
from .runner import TRANSPORT_FACTORIES, run_choreography
from .simulated import SimulatedNetworkTransport
from .stats import ChannelStats
from .tcp import TCPTransport
from .transport import DEFAULT_TIMEOUT, Transport, TransportEndpoint, deserialize, serialize

__all__ = [
    "AsyncioTCPTransport",
    "CLOSE_DEADLINE_CAP",
    "CentralBackend",
    "CentralOp",
    "ChannelStats",
    "ChoreoEngine",
    "ChoreographyResult",
    "DEFAULT_TIMEOUT",
    "FaultPlanSource",
    "LocalTransport",
    "SimulatedNetworkTransport",
    "TCPTransport",
    "TRANSPORT_FACTORIES",
    "Transport",
    "TransportBackend",
    "TransportEndpoint",
    "WireCodec",
    "backend_names",
    "create_backend",
    "deserialize",
    "impl",
    "impl_protocols",
    "implementations",
    "implements",
    "localize_return",
    "register_backend",
    "register_impl",
    "resolve_impl",
    "run_centralized",
    "run_choreography",
    "serialize",
    "unregister_backend",
    "unregister_impl",
]
