"""Centralized (single-threaded) reference semantics.

The paper gives λC a centralized semantics and proves it sound and complete
with respect to the distributed network semantics.  :class:`CentralOp` plays
the same role for the Python library: it executes a choreography in one
thread, holding every located value's real contents, while

* enforcing *every* census and ownership constraint globally (not just the
  ones a single endpoint would notice), and
* recording the messages the distributed execution *would* send, on the same
  :class:`~repro.runtime.stats.ChannelStats` scale as the real transports.

It therefore doubles as the library's pre-run checker and as the
communication-cost model used by the benchmarks.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TypeVar

from ..core.errors import OwnershipError
from ..core.located import Faceted, Located
from ..core.locations import Census, Location, LocationsLike, as_census
from ..core.ops import ChoreoOp, Choreography, Unwrapper
from .stats import ChannelStats
from .transport import DEFAULT_TIMEOUT, serialize

T = TypeVar("T")


def _central_unwrapper(required_owners: Optional[Census] = None) -> Unwrapper:
    """An unwrapper that sees every value but still checks ownership shape."""

    def unwrap(value: Any, owner: Optional[Location] = None) -> Any:
        if isinstance(value, Located):
            if required_owners is not None and value.owners is not None:
                missing = [loc for loc in required_owners if loc not in value.owners]
                if missing:
                    raise OwnershipError(
                        "congruent computation reads a value not owned by every "
                        f"replica; missing owners: {missing!r}"
                    )
            return value.peek()
        if isinstance(value, Faceted):
            if owner is None:
                raise OwnershipError(
                    "centralized unwrapping of a Faceted value must name the owner"
                )
            return value.facet_for(owner, owner)
        raise TypeError(
            f"unwrapper expects a Located or Faceted value, got {type(value).__name__}"
        )

    return unwrap


class CentralOp(ChoreoOp):
    """Single-threaded execution of a choreography with global checking."""

    def __init__(self, census: LocationsLike, stats: Optional[ChannelStats] = None):
        super().__init__(census)
        self.stats = stats if stats is not None else ChannelStats()

    # -------------------------------------------------------------- primitives --

    def locally(
        self, location: Location, computation: Callable[[Unwrapper], T]
    ) -> Located[T]:
        self._require_member(location)

        def unwrap(value: Any, owner: Optional[Location] = None) -> Any:
            if isinstance(value, Located):
                return value.unwrap_for(location)
            if isinstance(value, Faceted):
                return value.facet_for(location, owner)
            raise TypeError(
                f"unwrapper expects a Located or Faceted value, got {type(value).__name__}"
            )

        return Located([location], computation(unwrap))

    def multicast(
        self, sender: Location, recipients: LocationsLike, value: Located[T]
    ) -> Located[T]:
        self._require_member(sender)
        receivers = self._require_subset(recipients)
        if not isinstance(value, Located):
            raise OwnershipError(
                f"multicast payload must be a Located value, got {type(value).__name__}"
            )
        payload = value.unwrap_for(sender)
        nbytes = len(serialize(payload))
        for receiver in receivers:
            if receiver != sender:
                self.stats.record(sender, receiver, nbytes)
        return Located(receivers, payload)

    def naked(self, value: Located[T]) -> T:
        if not isinstance(value, Located):
            raise OwnershipError(
                f"naked expects a Located value, got {type(value).__name__}"
            )
        if value.owners is None:
            raise OwnershipError("naked requires a value with a known ownership set")
        missing = [loc for loc in self._census if loc not in value.owners]
        if missing:
            raise OwnershipError(
                "naked requires the whole census to own the value; census members "
                f"{missing!r} are not owners of {value!r}"
            )
        return value.peek()

    def congruently(
        self, locations: LocationsLike, computation: Callable[[Unwrapper], T]
    ) -> Located[T]:
        replicas = self._require_subset(locations)
        return Located(replicas, computation(_central_unwrapper(required_owners=replicas)))

    def conclave(
        self, sub_census: LocationsLike, choreography: Choreography, *args: Any, **kwargs: Any
    ) -> Located[Any]:
        sub = self._require_subset(sub_census)
        child = CentralOp(sub, self.stats)
        result = choreography(child, *args, **kwargs)
        return Located(sub, result)

    # ----------------------------------------------------------------- parallel --

    def parallel(
        self,
        locations: LocationsLike,
        computation: Callable[[Location, Unwrapper], T],
    ) -> Faceted[T]:
        """Centralized ``parallel``: run every replica's computation in turn."""
        members = self._require_subset(locations)
        facets = {}
        for member in members:
            located = self.locally(member, lambda un, _m=member: computation(_m, un))
            facets[member] = located.peek()
        return Faceted(members, facets)


class CentralBackend:
    """The centralized reference semantics as an engine backend.

    Unlike the transports, the centralized semantics has no endpoints: the
    whole choreography executes in one thread on a :class:`CentralOp`, holding
    every located value's real contents while enforcing every census and
    ownership constraint globally.  Registering this class under the name
    ``"central"`` lets :class:`repro.runtime.engine.ChoreoEngine` offer it
    through the same ``engine.run``/``engine.submit`` surface as ``"local"``,
    ``"tcp"``, and ``"simulated"``.
    """

    def __init__(self, census: LocationsLike, timeout: float = DEFAULT_TIMEOUT, **_options: Any):
        self.census: Census = as_census(census).require_nonempty()
        self.stats = ChannelStats()
        self.timeout = timeout

    def close(self) -> None:
        """Nothing to release; present for lifecycle symmetry with Transport."""


def localize_return(value: Any, location: Location) -> Any:
    """Project a centralized return value to what ``location`` would hold.

    The distributed runtime hands each endpoint its own copy of the
    choreography's return value: owners of a :class:`Located` hold the value,
    non-owners a placeholder; a :class:`Faceted` shows each endpoint only the
    facets it is entitled to see.  The centralized semantics computes one
    global value; this helper restores the per-endpoint view so
    ``ChoreographyResult`` behaves identically across backends.  Only the
    top-level wrapper is localized — values nested inside plain containers
    are returned as-is, matching what a reference backend can know.
    """
    if isinstance(value, Located):
        if value.owners is None or location in value.owners:
            return value
        return Located.absent(value.owners)
    if isinstance(value, Faceted):
        facets = value.visible_facets()
        if location in value.common:
            visible = facets
        elif location in value.owners and location in facets:
            visible = {location: facets[location]}
        else:
            visible = {}
        return Faceted(value.owners, visible, value.common)
    return value


def run_centralized(
    choreography: Choreography,
    census: LocationsLike,
    *args: Any,
    stats: Optional[ChannelStats] = None,
    **kwargs: Any,
) -> Any:
    """Execute ``choreography`` under the centralized reference semantics.

    Returns the choreography's return value; pass ``stats`` to collect the
    messages the distributed execution would send.
    """
    op = CentralOp(census, stats)
    return choreography(op, *args, **kwargs)
