"""Pluggable registry of execution backends.

The paper's case studies each ship their own "main method"; this repository
unifies them behind one surface: a backend *name* resolves — through this
registry — to either a :class:`~repro.runtime.transport.Transport` (the
projected, concurrent execution modes) or a
:class:`~repro.runtime.central.CentralBackend` (the single-threaded reference
semantics).  :class:`~repro.runtime.engine.ChoreoEngine` and the
compatibility wrapper :func:`~repro.runtime.runner.run_choreography` both
resolve names here, so registering a backend once makes it reachable from
every entry point.

A factory is any callable ``factory(census, timeout=..., **options)``
returning a ``Transport`` or ``CentralBackend``; extra keyword options are
forwarded verbatim (e.g. ``latency=`` / ``bandwidth=`` for ``"simulated"``).
Fault injection rides the same seam: the ``"simulated"`` and ``"tcp"``
factories accept ``faults=``, a :class:`repro.faults.FaultPlan`, so
``ChoreoEngine(census, backend="simulated", faults=plan)`` — or any backend a
user registers whose factory takes the option — runs its choreographies under
an injected, seed-reproducible fault schedule (see ``docs/testing.md``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from ..core.locations import LocationsLike
from .central import CentralBackend
from .local import LocalTransport
from .simulated import SimulatedNetworkTransport
from .tcp import TCPTransport
from .transport import DEFAULT_TIMEOUT, Transport

#: Anything a backend factory may produce.
Backend = Union[Transport, CentralBackend]

BackendFactory = Callable[..., Backend]

#: The live name → factory mapping.  Read-only for callers; mutate through
#: :func:`register_backend` so duplicate registrations are caught.
BACKENDS: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory, *, replace: bool = False) -> None:
    """Register ``factory`` under ``name`` for engines and ``run_choreography``.

    Raises :class:`ValueError` when the name is already taken, unless
    ``replace=True`` is passed (useful for tests and for swapping in an
    instrumented transport).
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if name in BACKENDS and not replace:
        raise ValueError(
            f"backend {name!r} is already registered; pass replace=True to override"
        )
    BACKENDS[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a registered backend (no-op when absent); mainly for tests."""
    BACKENDS.pop(name, None)


def backend_names() -> List[str]:
    """The registered backend names, sorted."""
    return sorted(BACKENDS)


def create_backend(
    name: str,
    census: LocationsLike,
    *,
    timeout: float = DEFAULT_TIMEOUT,
    **options: object,
) -> Backend:
    """Instantiate the backend registered under ``name`` for ``census``."""
    try:
        factory = BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown transport/backend {name!r}; choose from {backend_names()}"
        ) from None
    return factory(census, timeout=timeout, **options)


register_backend("local", LocalTransport)
register_backend("tcp", TCPTransport)
register_backend("simulated", SimulatedNetworkTransport)
register_backend("central", CentralBackend)
