"""Typed, discoverable registry of execution backends (and friends).

The paper's case studies each ship their own "main method"; this repository
unifies them behind one seam: :class:`~repro.runtime.engine.ChoreoEngine`
and :func:`~repro.runtime.runner.run_choreography` resolve a backend here,
so registering one once makes it reachable from every entry point.

Injection is **Protocol-keyed**, not string-keyed: the registry is a table
from a :class:`typing.Protocol` (the *injection point*) to named
implementations of it.  Three injection points ship with the runtime:

* :class:`TransportBackend` — a factory ``factory(census, timeout=...,
  **options)`` returning a :class:`~repro.runtime.transport.Transport` or a
  :class:`~repro.runtime.central.CentralBackend`.  Implementations:
  ``"local"``, ``"tcp"``, ``"asyncio"``, ``"simulated"``, ``"central"``.
* :class:`WireCodec` — ``encode``/``decode`` payload serialization.
  Implementation: ``"compact"`` (:mod:`repro.runtime.wire`).
* :class:`FaultPlanSource` — anything with ``session()`` producing a live
  fault-injection session (:class:`repro.faults.FaultPlan` registers itself
  as ``"seeded"``).

Registering is one decorator — ``@impl(TransportBackend, name="mine")`` on
the factory — or one :func:`register_impl` call for a class defined
elsewhere.  Implementations are *discoverable*: :func:`implementations`
lists a protocol's table, :func:`impl_protocols` answers "which injection
points does this object implement?", and :func:`implements` checks a single
pairing — so tooling (and tests) can enumerate what plugs in where without
grepping for magic strings.

String names survive as a thin compatibility shim: :data:`BACKENDS` is a
live mutable view of the :class:`TransportBackend` table, and
:func:`register_backend` / :func:`unregister_backend` /
:func:`backend_names` / :func:`create_backend` keep their historical
signatures.  Extra factory keyword options are forwarded verbatim (e.g.
``latency=`` / ``bandwidth=`` for ``"simulated"``, ``faults=`` — a
:class:`repro.faults.FaultPlan` — for ``"simulated"``, ``"tcp"``, and
``"asyncio"``; see ``docs/testing.md``).
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    List,
    MutableMapping,
    Optional,
    Protocol,
    Union,
    runtime_checkable,
)

from ..core.locations import LocationsLike
from . import wire
from .asyncio_tcp import AsyncioTCPTransport
from .central import CentralBackend
from .local import LocalTransport
from .simulated import SimulatedNetworkTransport
from .tcp import TCPTransport
from .transport import DEFAULT_TIMEOUT, Transport

#: Anything a backend factory may produce.
Backend = Union[Transport, CentralBackend]

BackendFactory = Callable[..., Backend]


# ------------------------------------------------------------ injection points --


@runtime_checkable
class TransportBackend(Protocol):
    """The injection point for execution backends.

    An implementation is any callable ``factory(census, timeout=...,
    **options)`` returning a :class:`~repro.runtime.transport.Transport`
    (projected, concurrent execution) or a
    :class:`~repro.runtime.central.CentralBackend` (the single-threaded
    reference semantics).  The transport classes themselves implement it —
    a class whose ``__init__`` has the factory signature *is* the factory.
    """

    def __call__(
        self, census: LocationsLike, *, timeout: float = DEFAULT_TIMEOUT, **options: Any
    ) -> Backend: ...


@runtime_checkable
class WireCodec(Protocol):
    """The injection point for payload serialization codecs."""

    def encode(self, payload: Any) -> bytes: ...

    def decode(self, data: bytes) -> Any: ...


@runtime_checkable
class FaultPlanSource(Protocol):
    """The injection point for fault-injection plans (``faults=`` options)."""

    def session(self) -> Any: ...


# ------------------------------------------------------------------- the table --

#: Protocol → (name → implementation).  Mutate through :func:`register_impl`
#: so duplicate names are caught and discoverability stays consistent.
_IMPLEMENTATIONS: Dict[type, Dict[str, Any]] = {}


def register_impl(
    protocol: type, implementation: Any, *, name: str, replace: bool = False
) -> None:
    """Register ``implementation`` under ``name`` for ``protocol``.

    Args:
        protocol: The injection point (a ``Protocol`` class such as
            :class:`TransportBackend`).
        implementation: The factory/object to register.
        name: The lookup name (kept for configs, CLIs, and compatibility).
        replace: Allow overwriting an existing name (tests, instrumented
            doubles).

    Raises:
        ValueError: For an empty name, or a taken name without ``replace``.
    """
    if not isinstance(name, str) or not name:
        raise ValueError(f"implementation name must be a non-empty string, got {name!r}")
    table = _IMPLEMENTATIONS.setdefault(protocol, {})
    if name in table and not replace:
        raise ValueError(
            f"{protocol.__name__} implementation {name!r} is already registered; "
            "pass replace=True to override"
        )
    table[name] = implementation


def unregister_impl(protocol: type, name: str) -> None:
    """Remove a registered implementation (no-op when absent)."""
    _IMPLEMENTATIONS.get(protocol, {}).pop(name, None)


def impl(
    protocol: type, *protocols: type, name: Optional[str] = None, replace: bool = False
) -> Callable[[Any], Any]:
    """Decorator form of :func:`register_impl` (multi-protocol capable).

    ``@impl(TransportBackend, name="mine")`` registers the decorated factory
    and returns it unchanged; with several protocols the factory is
    registered under the same name at each injection point.  ``name``
    defaults to the factory's ``__name__``.
    """

    def register(factory: Any) -> Any:
        label = name if name is not None else getattr(factory, "__name__", None)
        for point in (protocol, *protocols):
            register_impl(point, factory, name=str(label), replace=replace)
        return factory

    return register


def implementations(protocol: type) -> Dict[str, Any]:
    """A copy of ``protocol``'s name → implementation table."""
    return dict(_IMPLEMENTATIONS.get(protocol, {}))


def resolve_impl(protocol: type, name: str) -> Any:
    """The implementation registered under ``name`` for ``protocol``.

    Raises:
        ValueError: For an unknown name, listing what is registered.
    """
    try:
        return _IMPLEMENTATIONS.get(protocol, {})[name]
    except KeyError:
        known = sorted(_IMPLEMENTATIONS.get(protocol, {}))
        raise ValueError(
            f"unknown {protocol.__name__} implementation {name!r}; choose from {known}"
        ) from None


def impl_protocols(implementation: Any) -> List[type]:
    """The injection points ``implementation`` is registered under."""
    return [
        protocol
        for protocol, table in _IMPLEMENTATIONS.items()
        if any(registered is implementation for registered in table.values())
    ]


def implements(implementation: Any, protocol: type) -> bool:
    """Whether ``implementation`` is registered under ``protocol``."""
    return any(
        registered is implementation
        for registered in _IMPLEMENTATIONS.get(protocol, {}).values()
    )


# --------------------------------------------------- string-name compatibility --


class _BackendTable(MutableMapping):
    """Live mutable view of the :class:`TransportBackend` table.

    The historical string-keyed surface (``BACKENDS``,
    ``TRANSPORT_FACTORIES``): reads see the typed registry, writes go
    through it (a direct ``BACKENDS[name] = factory`` behaves like
    ``register_backend(name, factory, replace=True)``).
    """

    def _table(self) -> Dict[str, Any]:
        return _IMPLEMENTATIONS.setdefault(TransportBackend, {})

    def __getitem__(self, name: str) -> BackendFactory:
        return self._table()[name]

    def __setitem__(self, name: str, factory: BackendFactory) -> None:
        register_impl(TransportBackend, factory, name=name, replace=True)

    def __delitem__(self, name: str) -> None:
        del self._table()[name]

    def __iter__(self):
        return iter(self._table())

    def __len__(self) -> int:
        return len(self._table())

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"BACKENDS({self._table()!r})"


#: The live name → factory mapping (compatibility view; prefer the typed
#: :func:`register_impl` / :func:`resolve_impl` surface).
BACKENDS: MutableMapping = _BackendTable()


def register_backend(name: str, factory: BackendFactory, *, replace: bool = False) -> None:
    """Register ``factory`` under ``name`` for engines and ``run_choreography``.

    Compatibility wrapper over ``register_impl(TransportBackend, ...)``.
    Raises :class:`ValueError` when the name is already taken, unless
    ``replace=True`` is passed (useful for tests and for swapping in an
    instrumented transport).
    """
    register_impl(TransportBackend, factory, name=name, replace=replace)


def unregister_backend(name: str) -> None:
    """Remove a registered backend (no-op when absent); mainly for tests."""
    unregister_impl(TransportBackend, name)


def backend_names() -> List[str]:
    """The registered backend names, sorted."""
    return sorted(_IMPLEMENTATIONS.get(TransportBackend, {}))


def create_backend(
    name: str,
    census: LocationsLike,
    *,
    timeout: float = DEFAULT_TIMEOUT,
    **options: object,
) -> Backend:
    """Instantiate the backend registered under ``name`` for ``census``."""
    try:
        factory = resolve_impl(TransportBackend, name)
    except ValueError:
        raise ValueError(
            f"unknown transport/backend {name!r}; choose from {backend_names()}"
        ) from None
    return factory(census, timeout=timeout, **options)


# -------------------------------------------------------- built-in registrations --

register_impl(TransportBackend, LocalTransport, name="local")
register_impl(TransportBackend, TCPTransport, name="tcp")
register_impl(TransportBackend, AsyncioTCPTransport, name="asyncio")
register_impl(TransportBackend, SimulatedNetworkTransport, name="simulated")
register_impl(TransportBackend, CentralBackend, name="central")


@impl(WireCodec, name="compact")
class CompactWireCodec:
    """The default codec: :mod:`repro.runtime.wire`'s tag-byte encoding."""

    encode = staticmethod(wire.encode)
    decode = staticmethod(wire.decode)


def _register_fault_sources() -> None:
    # Imported here, not at module top: repro.faults.inject imports
    # repro.runtime.transport, so a top-level import would couple the two
    # package __init__ orders.
    from ..faults.plan import FaultPlan

    register_impl(FaultPlanSource, FaultPlan, name="seeded")


_register_fault_sources()
