"""Communication-cost model for choreographies.

The paper's efficiency argument (§2.2, §3.2) is about *which messages a KoC
strategy sends*: HasChor-style broadcast KoC ships every scrutinee to every
party, while conclaves-&-MLVs ships values only to the parties that need them
and can re-use an MLV for later conditionals at zero cost.  This module turns
that argument into numbers by executing a choreography under the centralized
reference semantics (which records every message the distributed execution
would send) and summarising the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..baselines.haschor import HasChorCentralOp, HasChorChoreography
from ..core.locations import Census, Location, LocationsLike, as_census
from ..core.ops import Choreography
from ..runtime.central import CentralOp
from ..runtime.stats import ChannelStats


@dataclass(frozen=True)
class CommunicationCost:
    """A summary of the messages one execution of a choreography sends."""

    total_messages: int
    total_bytes: int
    per_channel: Mapping[Tuple[Location, Location], int]
    per_location_sent: Mapping[Location, int]
    per_location_received: Mapping[Location, int]

    def messages_involving(self, location: Location) -> int:
        """Messages sent or received by ``location``."""
        return self.per_location_sent.get(location, 0) + self.per_location_received.get(
            location, 0
        )


def _summarise(census: Census, stats: ChannelStats) -> CommunicationCost:
    per_channel = stats.snapshot()
    sent: Dict[Location, int] = {location: 0 for location in census}
    received: Dict[Location, int] = {location: 0 for location in census}
    for (source, destination), count in per_channel.items():
        sent[source] = sent.get(source, 0) + count
        received[destination] = received.get(destination, 0) + count
    return CommunicationCost(
        total_messages=stats.total_messages,
        total_bytes=stats.total_bytes,
        per_channel=per_channel,
        per_location_sent=sent,
        per_location_received=received,
    )


def communication_cost(
    choreography: Choreography,
    census: LocationsLike,
    *args: Any,
    **kwargs: Any,
) -> CommunicationCost:
    """The messages a conclaves-&-MLVs choreography sends, without running threads."""
    full_census = as_census(census)
    stats = ChannelStats()
    op = CentralOp(full_census, stats)
    choreography(op, *args, **kwargs)
    return _summarise(full_census, stats)


def haschor_communication_cost(
    choreography: HasChorChoreography,
    census: LocationsLike,
    *args: Any,
    **kwargs: Any,
) -> CommunicationCost:
    """The messages a HasChor-style (broadcast KoC) choreography sends."""
    full_census = as_census(census)
    op = HasChorCentralOp(full_census)
    choreography(op, *args, **kwargs)
    return _summarise(full_census, op.stats)


def compare_costs(
    conclave_choreography: Choreography,
    haschor_choreography: HasChorChoreography,
    census: LocationsLike,
    conclave_args: Sequence[Any] = (),
    haschor_args: Optional[Sequence[Any]] = None,
) -> Dict[str, CommunicationCost]:
    """Run both KoC strategies on the same census and return their costs side by side."""
    haschor_args = conclave_args if haschor_args is None else haschor_args
    return {
        "conclaves_mlvs": communication_cost(conclave_choreography, census, *conclave_args),
        "broadcast_koc": haschor_communication_cost(haschor_choreography, census, *haschor_args),
    }
