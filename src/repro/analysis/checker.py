"""Pre-execution checking of choreographies.

The paper's host languages (Haskell, Rust, TypeScript) reject census and
ownership violations at compile time; Python cannot.  This module provides the
closest runtime-free substitute: :func:`check_choreography` executes the
choreography once under the centralized reference semantics — which enforces
*every* census/ownership constraint globally and records every would-be
message — and additionally replays the per-endpoint projections against the
recorded message trace to confirm that each endpoint's sends and receives line
up pairwise (the property EPP guarantees by construction in the paper).

The check is sound for choreographies whose control flow does not depend on
values that differ between the check run and the real run (e.g. randomness or
wall-clock time); for those, the runtime checks in
:class:`~repro.core.epp.ProjectedOp` remain the backstop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.epp import project
from ..core.errors import ChoreographyError
from ..core.locations import Census, Location, LocationsLike, as_census
from ..core.ops import Choreography
from ..runtime.central import CentralOp
from ..runtime.stats import ChannelStats
from ..runtime.transport import serialize


@dataclass
class CheckReport:
    """The outcome of checking a choreography before running it."""

    ok: bool
    census: Census
    messages: int = 0
    channel_counts: Mapping[Tuple[Location, Location], int] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok


class _RecordingEndpoint:
    """A transport endpoint that replays the centralized run's channel counts.

    Each endpoint draws received payloads from the queues the *checking* run
    recorded, and records its own sends, so after projecting every endpoint we
    can confirm that per-channel send and receive counts match exactly.
    """

    def __init__(self, location: Location, inboxes: Dict[Tuple[Location, Location], List[Any]]):
        self.location = location
        self._inboxes = inboxes
        self.sent: Dict[Tuple[Location, Location], int] = {}

    def send(self, receiver: Location, payload: Any) -> None:
        channel = (self.location, receiver)
        self.sent[channel] = self.sent.get(channel, 0) + 1

    def recv(self, sender: Location) -> Any:
        channel = (sender, self.location)
        pending = self._inboxes.get(channel)
        if not pending:
            raise ChoreographyError(
                f"projection of {self.location!r} tried to receive from {sender!r} but the "
                "centralized run recorded no (further) message on that channel"
            )
        return pending.pop(0)


class _TracingCentralOp(CentralOp):
    """A CentralOp that also remembers every payload, per channel, in order."""

    def __init__(self, census: LocationsLike):
        super().__init__(census, ChannelStats())
        self.payloads: Dict[Tuple[Location, Location], List[Any]] = {}

    def multicast(self, sender, recipients, value):
        located = super().multicast(sender, recipients, value)
        payload = located.peek()
        for receiver in as_census(recipients):
            if receiver != sender:
                self.payloads.setdefault((sender, receiver), []).append(payload)
        return located

    def conclave(self, sub_census, choreography, *args, **kwargs):
        sub = self._require_subset(sub_census)
        child = _TracingCentralOp(sub)
        child.stats = self.stats
        child.payloads = self.payloads
        result = choreography(child, *args, **kwargs)
        from ..core.located import Located

        return Located(sub, result)


def check_choreography(
    choreography: Choreography,
    census: LocationsLike,
    args: Sequence[Any] = (),
    kwargs: Optional[Mapping[str, Any]] = None,
    *,
    location_args: Optional[Mapping[Location, Sequence[Any]]] = None,
    replay_projections: bool = True,
) -> CheckReport:
    """Check a choreography without running any threads or sockets.

    Returns a :class:`CheckReport`; ``report.ok`` is False when either the
    centralized run raised a choreography error (census/ownership violation)
    or, with ``replay_projections``, some endpoint's projection disagrees with
    the centralized run about which messages cross which channels.
    """
    full_census = as_census(census).require_nonempty()
    kwargs = dict(kwargs or {})
    location_args = dict(location_args or {})
    errors: List[str] = []

    tracer = _TracingCentralOp(full_census)
    try:
        choreography(tracer, *args, **kwargs)
    except ChoreographyError as exc:
        errors.append(f"centralized check failed: {type(exc).__name__}: {exc}")
        return CheckReport(False, full_census, errors=errors)

    channel_counts = tracer.stats.snapshot()

    if replay_projections:
        expected_receives: Dict[Tuple[Location, Location], int] = dict(channel_counts)
        observed_sends: Dict[Tuple[Location, Location], int] = {}
        for location in full_census:
            inboxes = {
                channel: list(payloads)
                for channel, payloads in tracer.payloads.items()
                if channel[1] == location
            }
            endpoint = _RecordingEndpoint(location, inboxes)
            program = project(choreography, full_census, location, endpoint)
            extra = tuple(location_args.get(location, ()))
            try:
                program(*tuple(args) + extra, **kwargs)
            except ChoreographyError as exc:
                errors.append(
                    f"projection to {location!r} failed: {type(exc).__name__}: {exc}"
                )
                continue
            for channel, count in endpoint.sent.items():
                observed_sends[channel] = observed_sends.get(channel, 0) + count
            leftover = {
                channel: len(payloads) for channel, payloads in inboxes.items() if payloads
            }
            for channel, count in leftover.items():
                errors.append(
                    f"projection to {location!r} received {count} fewer message(s) on "
                    f"{channel} than the centralized run sent"
                )
        if not errors and observed_sends != expected_receives:
            errors.append(
                "projected endpoints and the centralized run disagree about channel "
                f"usage: projected={observed_sends} centralized={expected_receives}"
            )

    return CheckReport(
        ok=not errors,
        census=full_census,
        messages=tracer.stats.total_messages,
        channel_counts=channel_counts,
        errors=errors,
    )
