"""Analyses over choreographies: pre-run checking, communication cost, features."""

from .checker import CheckReport, check_choreography
from .comm_cost import (
    CommunicationCost,
    communication_cost,
    compare_costs,
    haschor_communication_cost,
)
from .features import FeatureRow, feature_matrix, feature_table_text

__all__ = [
    "CheckReport",
    "CommunicationCost",
    "FeatureRow",
    "check_choreography",
    "communication_cost",
    "compare_costs",
    "feature_matrix",
    "feature_table_text",
    "haschor_communication_cost",
]
