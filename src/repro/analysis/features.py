"""The Table 1 feature matrix, computed rather than asserted.

Table 1 of the paper compares HasChor, the λC formal model, and the three new
libraries along five axes: multiply-located values & multicast, censuses &
conclaves, membership constraints, census polymorphism, and EPP strategy.
This module *probes* the two Python implementations in this repository (the
conclaves-&-MLVs library in :mod:`repro.core` and the HasChor-style baseline in
:mod:`repro.baselines.haschor`) by actually attempting each capability, and
reports the λC row from the formal model's own API.  The benchmark
``benchmarks/bench_table1_features.py`` prints the resulting table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..baselines.haschor import HasChorCentralOp
from ..core.located import Faceted, Located, Quire
from ..runtime.central import CentralOp

#: Row labels, in the order the paper's Table 1 lists them.
FEATURES = (
    "multiply_located_values_and_multicast",
    "censuses_and_conclaves",
    "census_polymorphism",
    "membership_constraints",
    "epp_strategy",
)


@dataclass(frozen=True)
class FeatureRow:
    """One system's entry in the feature matrix."""

    system: str
    multiply_located_values_and_multicast: str
    censuses_and_conclaves: str
    census_polymorphism: str
    membership_constraints: str
    epp_strategy: str

    def as_dict(self) -> Dict[str, str]:
        return {
            "system": self.system,
            **{feature: getattr(self, feature) for feature in FEATURES},
        }


def _probe_core_mlv_multicast() -> bool:
    """Can the core library express an MLV produced by a multicast?"""
    op = CentralOp(["a", "b", "c"])
    value = op.locally("a", lambda _un: 42)
    shared = op.multicast("a", ["b", "c"], value)
    return isinstance(shared, Located) and list(shared.owners) == ["b", "c"]


def _probe_core_conclave() -> bool:
    """Does a conclave narrow the census and skip outsiders' messages?"""
    op = CentralOp(["a", "b", "c"])
    value = op.locally("a", lambda _un: 1)
    op.conclave(["a", "b"], lambda sub: sub.broadcast("a", value))
    # A broadcast inside the conclave must not reach "c".
    return op.stats.messages_received_by("c") == 0 and op.stats.messages_received_by("b") == 1


def _probe_core_census_polymorphism() -> bool:
    """Does the same choreography run unchanged for different census sizes?"""

    def tally(op: CentralOp) -> int:
        members = list(op.census)
        facets = op.parallel(members, lambda loc, _un: len(loc))
        gathered = op.gather(members, [members[0]], facets)
        total = op.locally(members[0], lambda un: sum(un(gathered).values()))
        return op.broadcast(members[0], total)

    small = tally(CentralOp(["p1", "p2"]))
    large = tally(CentralOp([f"p{i}" for i in range(1, 7)]))
    return small == 4 and large == 12


def _probe_haschor_mlv() -> bool:
    """The baseline has only singly-located values: no multicast / MLV support."""
    op = HasChorCentralOp(["a", "b", "c"])
    return hasattr(op, "multicast") or hasattr(op, "conclave")


def _probe_haschor_broadcast_koc() -> bool:
    """The baseline's cond broadcasts the scrutinee to everyone."""
    op = HasChorCentralOp(["a", "b", "c", "d"])
    value = op.locally("a", lambda _un: True)
    op.cond(value, lambda flag: flag)
    return op.stats.total_messages == 3  # every other party hears about it


def feature_matrix() -> List[FeatureRow]:
    """Compute the feature matrix for the systems in this repository.

    The entries for the Python libraries are derived from live probes; the λC
    row reflects what the formal model implements (everything except census
    polymorphism, which the paper leaves out of the monomorphic calculus).
    """
    core_mlv = _probe_core_mlv_multicast()
    core_conclave = _probe_core_conclave()
    core_poly = _probe_core_census_polymorphism()
    baseline_mlv = _probe_haschor_mlv()
    baseline_broadcast = _probe_haschor_broadcast_koc()

    rows = [
        FeatureRow(
            system="haschor-baseline (Python)",
            multiply_located_values_and_multicast="yes" if baseline_mlv else "no",
            censuses_and_conclaves="no",
            census_polymorphism="no",
            membership_constraints="runtime checks",
            epp_strategy="EPP-as-DI" if baseline_broadcast else "unknown",
        ),
        FeatureRow(
            system="λC (formal model)",
            multiply_located_values_and_multicast="yes",
            censuses_and_conclaves="yes",
            census_polymorphism="no (monomorphic)",
            membership_constraints="typing rules",
            epp_strategy="custom (Fig. 22)",
        ),
        FeatureRow(
            system="repro.core (Python)",
            multiply_located_values_and_multicast="yes" if core_mlv else "no",
            censuses_and_conclaves="yes" if core_conclave else "no",
            census_polymorphism="yes" if core_poly else "no",
            membership_constraints="runtime checks + pre-run checker",
            epp_strategy="EPP-as-DI",
        ),
    ]
    return rows


def feature_table_text() -> str:
    """A plain-text rendering of the feature matrix (what the bench prints)."""
    rows = feature_matrix()
    headers = ["system"] + [feature.replace("_", " ") for feature in FEATURES]
    cells = [headers] + [
        [row.system] + [getattr(row, feature) for feature in FEATURES] for row in rows
    ]
    widths = [max(len(line[col]) for line in cells) for col in range(len(headers))]
    rendered = []
    for index, line in enumerate(cells):
        rendered.append("  ".join(cell.ljust(widths[col]) for col, cell in enumerate(line)))
        if index == 0:
            rendered.append("  ".join("-" * widths[col] for col in range(len(headers))))
    return "\n".join(rendered)
