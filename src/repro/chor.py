"""First-class choreography objects: the ``@choreography`` decorator.

A choreography in this library is any callable ``chor(op, *args, **kwargs)``
(EPP-as-DI, paper §5.2); the decorator keeps that shape — a decorated
choreography still composes under ``op.conclave`` and still projects with
:func:`~repro.core.epp.project` — while attaching the things a *deployable*
protocol wants to carry around:

* a ``name`` (defaulting to the function name) for logs and registries;
* an optional **census contract**: the minimum set of locations the
  choreography expects, validated against whatever census it is run with;
* conveniences ``.run()``, ``.check()``, and ``.cost()`` delegating to the
  engine (:class:`~repro.runtime.engine.ChoreoEngine`) and to
  :mod:`repro.analysis`, so quick scripts need no extra imports.

Example::

    @choreography(census=["buyer", "seller"])
    def bookstore(op, title):
        ...

    bookstore.check(args=("TAPL",))          # pre-run census/ownership check
    bookstore.cost("TAPL")                   # predicted message counts
    bookstore.run(args=("TAPL",))            # throwaway local engine
    engine.run(bookstore, args=("TAPL",))    # or any persistent engine
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Mapping, Optional, Sequence

from .core.locations import Census, Location, LocationsLike, as_census
from .core.ops import Choreography


class ChoreographyDef:
    """A named, first-class choreography wrapping a plain ``chor(op, …)``."""

    def __init__(
        self,
        fn: Choreography,
        *,
        name: Optional[str] = None,
        census: Optional[LocationsLike] = None,
    ):
        functools.update_wrapper(self, fn)
        self.fn = fn
        self.name = name or getattr(fn, "__name__", "choreography")
        self.census: Optional[Census] = (
            None if census is None else as_census(census).require_nonempty()
        )

    def __call__(self, op: Any, *args: Any, **kwargs: Any) -> Any:
        return self.fn(op, *args, **kwargs)

    def __repr__(self) -> str:
        contract = list(self.census) if self.census is not None else "any"
        return f"<choreography {self.name!r} census={contract}>"

    def _resolve_census(self, census: Optional[LocationsLike]) -> Census:
        if census is None:
            if self.census is None:
                raise ValueError(
                    f"choreography {self.name!r} declares no census contract; "
                    "pass census=[...] explicitly"
                )
            return self.census
        full = as_census(census).require_nonempty()
        if self.census is not None:
            # The contract names the minimum participants; the actual census
            # may add more (census polymorphism), never drop one.
            full.require_subset(self.census)
        return full

    def bind(
        self,
        *args: Any,
        name: Optional[str] = None,
        **kwargs: Any,
    ) -> "ChoreographyDef":
        """Pre-apply leading arguments, returning a new first-class choreography.

        The bound arguments are inserted right after ``op``; arguments given
        at call/run time follow them.  The census contract carries over.  This
        is how a census-polymorphic protocol is *instantiated* for one
        concrete deployment — e.g. the cluster layer binds the generic
        ``shard_put`` choreography to each shard's (client, primary, backups,
        state) once, then submits only ``(key, value)`` per request.

        Args:
            *args: Positional arguments bound immediately after ``op``.
            name: Name for the bound choreography; defaults to the original
                name (useful to distinguish per-shard instantiations in logs).
            **kwargs: Keyword arguments bound now; call-time keywords with
                the same name override them.

        Returns:
            A new :class:`ChoreographyDef`; the original is unchanged.
        """
        bound_args = tuple(args)
        bound_kwargs = dict(kwargs)
        fn = self.fn

        def bound(op: Any, *more: Any, **overrides: Any) -> Any:
            return fn(op, *bound_args, *more, **{**bound_kwargs, **overrides})

        bound.__name__ = name or self.name
        return ChoreographyDef(bound, name=name or self.name, census=self.census)

    # ------------------------------------------------------------ conveniences --

    def run(
        self,
        census: Optional[LocationsLike] = None,
        args: Sequence[Any] = (),
        kwargs: Optional[Mapping[str, Any]] = None,
        *,
        location_args: Optional[Mapping[Location, Sequence[Any]]] = None,
        backend: Any = "local",
        timeout: Optional[float] = None,
        **backend_options: Any,
    ):
        """Run once on a throwaway :class:`~repro.runtime.engine.ChoreoEngine`.

        For sustained traffic build a persistent engine instead and pass this
        object to ``engine.run`` — a ``ChoreographyDef`` *is* a choreography.
        """
        from .runtime.engine import ChoreoEngine
        from .runtime.transport import DEFAULT_TIMEOUT

        engine = ChoreoEngine(
            self._resolve_census(census),
            backend=backend,
            timeout=DEFAULT_TIMEOUT if timeout is None else timeout,
            **backend_options,
        )
        with engine:
            return engine.run(self, args, kwargs, location_args=location_args)

    def check(
        self,
        census: Optional[LocationsLike] = None,
        args: Sequence[Any] = (),
        kwargs: Optional[Mapping[str, Any]] = None,
        *,
        location_args: Optional[Mapping[Location, Sequence[Any]]] = None,
    ):
        """Pre-run census/ownership check (:func:`repro.analysis.check_choreography`)."""
        from .analysis import check_choreography

        return check_choreography(
            self, self._resolve_census(census), args=args, kwargs=kwargs,
            location_args=location_args,
        )

    def cost(
        self,
        census: Optional[LocationsLike] = None,
        *args: Any,
        **kwargs: Any,
    ):
        """Predicted communication cost (:func:`repro.analysis.communication_cost`)."""
        from .analysis import communication_cost

        return communication_cost(self, self._resolve_census(census), *args, **kwargs)


def choreography(
    fn: Optional[Choreography] = None,
    *,
    name: Optional[str] = None,
    census: Optional[LocationsLike] = None,
) -> Any:
    """Decorator turning ``chor(op, …)`` into a :class:`ChoreographyDef`.

    Usable bare (``@choreography``) or with options
    (``@choreography(census=[...], name="...")``).
    """

    def wrap(target: Choreography) -> ChoreographyDef:
        return ChoreographyDef(target, name=name, census=census)

    return wrap if fn is None else wrap(fn)
