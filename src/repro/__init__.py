"""repro — census-polymorphic choreographic programming for Python.

A reproduction of "Efficient, Portable, Census-Polymorphic Choreographic
Programming" (Bates et al., PLDI 2025).  The package provides:

* :mod:`repro.core` — locations, censuses, multiply-located values, faceted
  values, quires, and the ``ChoreoOp`` operator record (EPP-as-DI).
* :mod:`repro.runtime` — transports, the concurrent runner, and the
  centralized reference semantics.
* :mod:`repro.baselines` — a HasChor-style broadcast-KoC baseline.
* :mod:`repro.formal` — the λC / λL / λN formal model and property checkers.
* :mod:`repro.protocols` — the case studies: replicated KVS, DPrio lottery,
  and the GMW secure-computation protocol.
* :mod:`repro.analysis` — the pre-run checker, communication-cost model, and
  the Table-1 feature matrix.
"""

from .core import (
    ABSENT,
    Census,
    CensusError,
    ChoreoOp,
    Choreography,
    ChoreographyError,
    ChoreographyRuntimeError,
    Faceted,
    Located,
    Location,
    OwnershipError,
    PlaceholderError,
    ProjectedOp,
    Quire,
    TransportError,
    as_census,
    project,
    single,
)
from .runtime import (
    CentralOp,
    ChannelStats,
    ChoreographyResult,
    LocalTransport,
    TCPTransport,
    run_centralized,
    run_choreography,
)

__version__ = "1.0.0"

__all__ = [
    "ABSENT",
    "Census",
    "CensusError",
    "CentralOp",
    "ChannelStats",
    "ChoreoOp",
    "Choreography",
    "ChoreographyError",
    "ChoreographyResult",
    "ChoreographyRuntimeError",
    "Faceted",
    "LocalTransport",
    "Located",
    "Location",
    "OwnershipError",
    "PlaceholderError",
    "ProjectedOp",
    "Quire",
    "TCPTransport",
    "TransportError",
    "as_census",
    "project",
    "run_centralized",
    "run_choreography",
    "single",
    "__version__",
]
