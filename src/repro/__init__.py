"""repro — census-polymorphic choreographic programming for Python.

A reproduction of "Efficient, Portable, Census-Polymorphic Choreographic
Programming" (Bates et al., PLDI 2025), grown into a service-shaped system.

The sixty-second tour: write one global program against the ``ChoreoOp``
operator record, decorate it, and run it on a persistent engine session —
the same object serves every backend (threads, TCP, simulated, centralized)
and pipelines independent instances::

    from repro import ChoreoEngine, choreography

    @choreography(census=["buyer", "seller"])
    def bookstore(op, title):
        wanted = op.locally("buyer", lambda _un: title)
        request = op.comm("buyer", "seller", wanted)
        price = op.locally("seller", lambda un: 80 if un(request) else None)
        return op.broadcast("seller", price)

    with ChoreoEngine(["buyer", "seller"], backend="tcp") as engine:
        result = engine.run(bookstore, args=("TAPL",))     # blocking
        future = engine.submit(bookstore, args=("HoTT",))  # pipelined

(``examples/quickstart.py`` is the runnable version; ``docs/api.md``
documents the execution surface and ``docs/architecture.md`` the layering.)

The package provides:

* :mod:`repro.core` — locations, censuses, multiply-located values, faceted
  values, quires, and the ``ChoreoOp`` operator record (EPP-as-DI).
* :mod:`repro.chor` — the ``@choreography`` decorator making choreographies
  first-class, runnable, checkable objects (``.run()``, ``.check()``,
  ``.cost()``, ``.bind()``).
* :mod:`repro.runtime` — persistent :class:`ChoreoEngine` sessions, the
  pluggable backend registry, coalescing transports, the one-shot runner,
  and the centralized reference semantics.
* :mod:`repro.cluster` — the sharded KVS service layer: a consistent-hash
  :class:`ShardRouter`, a :class:`ClusterEngine` multiplexing one warm
  engine per shard — with dead-replica detection, backup demotion, primary
  failover (epoch-fenced promotion of the senior surviving backup, recorded
  as :class:`PromotionReport`), crash-restart replica re-join
  (:func:`rejoin_backup`), choreographic two-phase commit for cross-shard
  transactions (``submit_txn``, with a durable coordinator decision log and
  presumed-abort in-doubt recovery), and ``health()``/``probe()`` — and the
  :class:`ClusterClient` ``put/get/delete/scan/txn`` facade with quorum
  reads, read repair, and retrying idempotent reads.
* :mod:`repro.gateway` — the network front door: a RESP-like TCP protocol
  served by :class:`~repro.gateway.GatewayServer` over the cluster, with
  per-connection backpressure, cluster-wide ``BUSY`` admission shedding,
  ``MULTI .. EXEC`` transactions, structured JSON error frames, graceful
  drain, and the :class:`~repro.gateway.GatewayClient` wire client.
* :mod:`repro.storage` — per-replica persistence: the checksum-framed
  :class:`WriteAheadLog` with torn-tail repair and fsync policies, atomic
  :class:`SnapshotStore` checkpoints, and the :class:`~repro.storage.DurableState`
  store behind ``ClusterEngine(durability=...)``.
* :mod:`repro.faults` — deterministic fault injection: a seedable
  :class:`FaultPlan` DSL (delay jitter, bounded cross-channel reorder,
  crashes — now with restart/revive for recovery testing — and transient
  connect failures) behind the ``faults=`` backend option, reproducing
  identical message schedules from identical seeds.
* :mod:`repro.baselines` — a HasChor-style broadcast-KoC baseline.
* :mod:`repro.formal` — the λC / λL / λN formal model and property checkers.
* :mod:`repro.protocols` — the case studies: replicated KVS (with quorum
  reads and scans), DPrio lottery, and the GMW secure-computation protocol.
* :mod:`repro.analysis` — the pre-run checker, communication-cost model, and
  the Table-1 feature matrix.
"""

from .chor import ChoreographyDef, choreography
from .cluster import (
    ClusterClient,
    ClusterClosed,
    ClusterEngine,
    ClusterRebalancing,
    PromotionReport,
    RejoinError,
    RejoinReport,
    ShardHealth,
    ShardRouter,
    TxnAborted,
    TxnConflict,
    TxnResult,
    rejoin_backup,
)
from .core import (
    ABSENT,
    Census,
    CensusError,
    ChoreoOp,
    Choreography,
    ChoreographyError,
    ChoreographyRuntimeError,
    ChoreoTimeout,
    Faceted,
    Located,
    Location,
    OwnershipError,
    PlaceholderError,
    ProjectedOp,
    Quire,
    TransportError,
    as_census,
    project,
    single,
)
from .faults import FaultPlan
from .gateway import GatewayClient, GatewayError, GatewayServer, GatewaySettings
from .protocols.kvs import ShardEpoch, StaleEpoch
from .storage import Durability, DurableState, SnapshotStore, WriteAheadLog
from .runtime import (
    AsyncioTCPTransport,
    CentralBackend,
    CentralOp,
    ChannelStats,
    ChoreoEngine,
    ChoreographyResult,
    LocalTransport,
    SimulatedNetworkTransport,
    TCPTransport,
    TransportBackend,
    WireCodec,
    backend_names,
    impl,
    implementations,
    implements,
    register_backend,
    register_impl,
    resolve_impl,
    run_centralized,
    run_choreography,
)

__version__ = "1.8.0"

__all__ = [
    "ABSENT",
    "AsyncioTCPTransport",
    "Census",
    "CensusError",
    "CentralBackend",
    "CentralOp",
    "ChannelStats",
    "ChoreoEngine",
    "ChoreoOp",
    "ChoreoTimeout",
    "Choreography",
    "ChoreographyDef",
    "ChoreographyError",
    "ChoreographyResult",
    "ChoreographyRuntimeError",
    "ClusterClient",
    "ClusterClosed",
    "ClusterEngine",
    "ClusterRebalancing",
    "Durability",
    "DurableState",
    "Faceted",
    "FaultPlan",
    "GatewayClient",
    "GatewayError",
    "GatewayServer",
    "GatewaySettings",
    "LocalTransport",
    "Located",
    "Location",
    "OwnershipError",
    "PlaceholderError",
    "ProjectedOp",
    "PromotionReport",
    "Quire",
    "RejoinError",
    "RejoinReport",
    "ShardEpoch",
    "ShardHealth",
    "ShardRouter",
    "SimulatedNetworkTransport",
    "SnapshotStore",
    "StaleEpoch",
    "TCPTransport",
    "TransportBackend",
    "TransportError",
    "TxnAborted",
    "TxnConflict",
    "TxnResult",
    "WireCodec",
    "WriteAheadLog",
    "as_census",
    "backend_names",
    "choreography",
    "impl",
    "implementations",
    "implements",
    "project",
    "register_backend",
    "register_impl",
    "resolve_impl",
    "rejoin_backup",
    "run_centralized",
    "run_choreography",
    "single",
    "__version__",
]
