"""repro — census-polymorphic choreographic programming for Python.

A reproduction of "Efficient, Portable, Census-Polymorphic Choreographic
Programming" (Bates et al., PLDI 2025).  The package provides:

* :mod:`repro.core` — locations, censuses, multiply-located values, faceted
  values, quires, and the ``ChoreoOp`` operator record (EPP-as-DI).
* :mod:`repro.chor` — the ``@choreography`` decorator making choreographies
  first-class, runnable, checkable objects.
* :mod:`repro.runtime` — persistent :class:`ChoreoEngine` sessions, the
  pluggable backend registry, transports, the one-shot runner, and the
  centralized reference semantics.
* :mod:`repro.baselines` — a HasChor-style broadcast-KoC baseline.
* :mod:`repro.formal` — the λC / λL / λN formal model and property checkers.
* :mod:`repro.protocols` — the case studies: replicated KVS, DPrio lottery,
  and the GMW secure-computation protocol.
* :mod:`repro.analysis` — the pre-run checker, communication-cost model, and
  the Table-1 feature matrix.
"""

from .chor import ChoreographyDef, choreography
from .core import (
    ABSENT,
    Census,
    CensusError,
    ChoreoOp,
    Choreography,
    ChoreographyError,
    ChoreographyRuntimeError,
    Faceted,
    Located,
    Location,
    OwnershipError,
    PlaceholderError,
    ProjectedOp,
    Quire,
    TransportError,
    as_census,
    project,
    single,
)
from .runtime import (
    CentralBackend,
    CentralOp,
    ChannelStats,
    ChoreoEngine,
    ChoreographyResult,
    LocalTransport,
    SimulatedNetworkTransport,
    TCPTransport,
    backend_names,
    register_backend,
    run_centralized,
    run_choreography,
)

__version__ = "1.1.0"

__all__ = [
    "ABSENT",
    "Census",
    "CensusError",
    "CentralBackend",
    "CentralOp",
    "ChannelStats",
    "ChoreoEngine",
    "ChoreoOp",
    "Choreography",
    "ChoreographyDef",
    "ChoreographyError",
    "ChoreographyResult",
    "ChoreographyRuntimeError",
    "Faceted",
    "LocalTransport",
    "Located",
    "Location",
    "OwnershipError",
    "PlaceholderError",
    "ProjectedOp",
    "Quire",
    "SimulatedNetworkTransport",
    "TCPTransport",
    "TransportError",
    "as_census",
    "backend_names",
    "choreography",
    "project",
    "register_backend",
    "run_centralized",
    "run_choreography",
    "single",
    "__version__",
]
