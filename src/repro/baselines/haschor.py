"""A HasChor-style baseline: broadcast-based Knowledge of Choice.

HasChor (Shen et al., ICFP 2023) is the library-level CP system the paper
improves on.  Its three primitive operators are ``locally``, ``comm`` (``~>``)
and ``cond``; its Knowledge-of-Choice strategy is "admittedly heavy-handed":
the scrutinee of every conditional is broadcast to *all* parties in the
choreography, whether or not they participate in either branch (paper §2.2).
It has singly-located values only — no MLVs, no conclaves, no census
polymorphism.

This module reimplements that design on top of the same transports as
:mod:`repro.core`, so the message-count difference measured by
``benchmarks/bench_koc_efficiency.py`` isolates the KoC strategy itself
(exactly the comparison the paper's efficiency argument makes).
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, Optional, Sequence, TypeVar, Union

from ..core.epp import Endpoint
from ..core.errors import CensusError, ChoreographyRuntimeError, OwnershipError, PlaceholderError
from ..core.locations import Census, Location, LocationsLike, as_census
from ..runtime.local import LocalTransport
from ..runtime.runner import ChoreographyResult
from ..runtime.stats import ChannelStats
from ..runtime.transport import DEFAULT_TIMEOUT, Transport, serialize

T = TypeVar("T")

#: A HasChor-style choreography: a callable taking a :class:`HasChorOp`.
HasChorChoreography = Callable[..., Any]


class At:
    """A singly-located value: HasChor's ``t @ l``.

    Unlike :class:`repro.core.located.Located`, an ``At`` has exactly one
    owner; that is the expressiveness gap the paper's MLVs close.
    """

    __slots__ = ("owner", "_value", "_present")

    def __init__(self, owner: Location, value: Any = None, *, present: bool = True):
        self.owner = owner
        self._value = value
        self._present = present

    def unwrap_for(self, location: Location) -> Any:
        if location != self.owner:
            raise OwnershipError(f"{location!r} does not own {self!r}")
        if not self._present:
            raise PlaceholderError(f"placeholder for {self!r} cannot be unwrapped")
        return self._value

    def peek(self) -> Any:
        if not self._present:
            raise PlaceholderError(f"cannot peek absent value {self!r}")
        return self._value

    def is_present(self) -> bool:
        return self._present

    def __repr__(self) -> str:
        if self._present:
            return f"At({self.owner!r}, {self._value!r})"
        return f"At({self.owner!r}, <absent>)"


class HasChorOp(abc.ABC):
    """HasChor's three primitives: ``locally``, ``comm``, and ``cond``."""

    def __init__(self, census: LocationsLike):
        self._census = as_census(census).require_nonempty()

    @property
    def census(self) -> Census:
        """All parties of the choreography.  HasChor has no conclaves: the
        census is fixed for the whole program."""
        return self._census

    @abc.abstractmethod
    def locally(self, location: Location, computation: Callable[[Callable[[At], Any]], T]) -> At:
        """Run ``computation`` at ``location``; others skip."""

    @abc.abstractmethod
    def comm(self, sender: Location, receiver: Location, value: At) -> At:
        """Send a located value point-to-point (HasChor's ``~>``)."""

    @abc.abstractmethod
    def cond(self, scrutinee: At, branches: Callable[[Any], T]) -> T:
        """Branch on a located value.

        The owner broadcasts the scrutinee to **every** party in the
        choreography — including parties with nothing to do in either branch —
        and then every party evaluates ``branches`` with the plain value.
        """

    # -- conveniences shared by implementations ------------------------------------

    def locally_(self, location: Location, computation: Callable[[], T]) -> At:
        """``locally`` for computations needing no located inputs."""
        return self.locally(location, lambda _un: computation())


class HasChorProjectedOp(HasChorOp):
    """Endpoint projection for the baseline, also via dependency injection."""

    def __init__(self, census: LocationsLike, target: Location, endpoint: Endpoint):
        super().__init__(census)
        self._target = target
        self._endpoint = endpoint

    @property
    def location(self) -> Location:
        return self._target

    def locally(self, location: Location, computation: Callable[[Callable[[At], Any]], T]) -> At:
        self._census.require_member(location)
        if location != self._target:
            return At(location, present=False)

        def unwrap(value: At) -> Any:
            return value.unwrap_for(location)

        return At(location, computation(unwrap))

    def comm(self, sender: Location, receiver: Location, value: At) -> At:
        self._census.require_member(sender)
        self._census.require_member(receiver)
        if not isinstance(value, At):
            raise OwnershipError(f"comm payload must be an At value, got {type(value).__name__}")
        if sender == receiver:
            if self._target == sender:
                return At(receiver, value.unwrap_for(sender))
            return At(receiver, present=False)
        if self._target == sender:
            self._endpoint.send(receiver, value.unwrap_for(sender))
            return At(receiver, present=False)
        if self._target == receiver:
            return At(receiver, self._endpoint.recv(sender))
        return At(receiver, present=False)

    def cond(self, scrutinee: At, branches: Callable[[Any], T]) -> T:
        if not isinstance(scrutinee, At):
            raise OwnershipError(
                f"cond scrutinee must be an At value, got {type(scrutinee).__name__}"
            )
        owner = scrutinee.owner
        self._census.require_member(owner)
        if self._target == owner:
            value = scrutinee.unwrap_for(owner)
            for receiver in self._census:
                if receiver != owner:
                    self._endpoint.send(receiver, value)
        else:
            value = self._endpoint.recv(owner)
        return branches(value)


class HasChorCentralOp(HasChorOp):
    """Centralized reference semantics for the baseline (used for cost models)."""

    def __init__(self, census: LocationsLike, stats: Optional[ChannelStats] = None):
        super().__init__(census)
        self.stats = stats if stats is not None else ChannelStats()

    def locally(self, location: Location, computation: Callable[[Callable[[At], Any]], T]) -> At:
        self._census.require_member(location)

        def unwrap(value: At) -> Any:
            return value.unwrap_for(location)

        return At(location, computation(unwrap))

    def comm(self, sender: Location, receiver: Location, value: At) -> At:
        self._census.require_member(sender)
        self._census.require_member(receiver)
        payload = value.unwrap_for(sender)
        if sender != receiver:
            self.stats.record(sender, receiver, len(serialize(payload)))
        return At(receiver, payload)

    def cond(self, scrutinee: At, branches: Callable[[Any], T]) -> T:
        owner = scrutinee.owner
        self._census.require_member(owner)
        value = scrutinee.peek()
        nbytes = len(serialize(value))
        for receiver in self._census:
            if receiver != owner:
                self.stats.record(owner, receiver, nbytes)
        return branches(value)


def run_haschor(
    choreography: HasChorChoreography,
    census: LocationsLike,
    args: Sequence[Any] = (),
    kwargs: Optional[Dict[str, Any]] = None,
    *,
    transport: Union[str, Transport, None] = "local",
    timeout: float = DEFAULT_TIMEOUT,
) -> ChoreographyResult:
    """Run a HasChor-style choreography on every endpoint concurrently.

    Mirrors :func:`repro.runtime.runner.run_choreography` but projects with
    :class:`HasChorProjectedOp`.
    """
    import threading
    import time

    full_census = as_census(census).require_nonempty()
    kwargs = dict(kwargs or {})
    if transport is None or isinstance(transport, str):
        if transport in (None, "local"):
            hub: Transport = LocalTransport(full_census, timeout=timeout)
        else:
            from ..runtime.registry import create_backend

            resolved = create_backend(transport, full_census, timeout=timeout)
            if not isinstance(resolved, Transport):
                # e.g. "central": registered for engines, but this baseline
                # runner needs real endpoints.
                raise ValueError(
                    f"backend {transport!r} is not a transport; run_haschor needs "
                    "one endpoint per location"
                )
            hub = resolved
        owns_transport = True
    else:
        hub = transport
        owns_transport = False

    endpoints = {location: hub.endpoint(location) for location in full_census}
    returns: Dict[Location, Any] = {}
    failures: Dict[Location, BaseException] = {}
    lock = threading.Lock()

    def run_endpoint(location: Location) -> None:
        op = HasChorProjectedOp(full_census, location, endpoints[location])
        flush = getattr(endpoints[location], "flush", None)
        try:
            result = choreography(op, *args, **kwargs)
            # Coalescing transports defer sends; trailing ones must be
            # drained before this location's thread finishes.
            if flush is not None:
                flush()
            with lock:
                returns[location] = result
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            if flush is not None:
                try:
                    flush()  # best-effort: peers may be blocked on these sends
                except BaseException:  # noqa: BLE001 - original error wins
                    pass
            with lock:
                failures[location] = exc

    started = time.perf_counter()
    threads = [
        threading.Thread(target=run_endpoint, args=(location,), name=f"haschor-{location}")
        for location in full_census
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout * 2)
    elapsed = time.perf_counter() - started

    if owns_transport:
        hub.close()
    if failures:
        location, original = next(iter(sorted(failures.items())))
        raise ChoreographyRuntimeError(location, original) from original

    result = ChoreographyResult(
        census=full_census,
        returns={
            location: (
                (value.peek() if value.is_present() else None)
                if isinstance(value, At)
                else value
            )
            for location, value in returns.items()
        },
        stats=hub.stats,
        elapsed_seconds=elapsed,
    )
    return result
