"""The replicated KVS written against the HasChor-style baseline.

This is the comparison protocol for experiment E2: functionally the same
client / primary / replica interaction as :func:`repro.protocols.kvs.kvs_request`,
but written with the baseline's broadcast-based Knowledge of Choice.  Every
conditional (`cond`) ships the scrutinee to the *entire* census — including the
client, who has nothing to do in either branch — and the second conditional
(the hash check) must broadcast again because the baseline has no
multiply-located values to re-use.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.locations import Location, LocationsLike, as_census
from ..protocols.kvs import (
    Request,
    RequestKind,
    Response,
    hash_state,
    lookup_state,
    update_state,
)
from .haschor import At, HasChorOp


def kvs_request_haschor(
    op: HasChorOp,
    client: Location,
    primary: Location,
    servers: LocationsLike,
    states: Dict[Location, Dict[str, str]],
    request: At,
) -> At:
    """Serve one request using broadcast KoC (the HasChor strategy of §2.2).

    ``states`` maps each server to its local store; at a projected endpoint
    only that endpoint's entry is ever touched.
    """
    server_census = as_census(servers)
    request_at_primary = op.comm(client, primary, request)

    # First conditional: what kind of request is this?  The baseline broadcasts
    # the scrutinee to every party in the census — client included.
    def handle(incoming: Request) -> At:
        if incoming.kind is RequestKind.PUT:
            replies = []
            for server in server_census:
                applied = op.locally(
                    server,
                    lambda _un, _s=server: update_state(
                        states[_s], incoming.key, incoming.value
                    ),
                )
                replies.append(op.comm(server, primary, applied))
            # The primary acknowledges only after hearing from every replica;
            # its reply to the client is its own update result.
            return op.locally(
                primary,
                lambda un: [
                    un(reply) for reply, server in zip(replies, server_census)
                ][list(server_census).index(primary)],
            )
        if incoming.kind is RequestKind.GET:
            return op.locally(
                primary, lambda _un: lookup_state(states[primary], incoming.key)
            )
        return op.locally(primary, lambda _un: Response.stopped())

    response_at_primary = op.cond(request_at_primary, handle)
    response = op.comm(primary, client, response_at_primary)

    # Second conditional: should the replicas compare hashes?  The baseline has
    # no MLVs, so the request must be broadcast *again* to recover Knowledge of
    # Choice — and again it reaches the client.
    def verify(incoming: Request) -> bool:
        if incoming.kind is not RequestKind.PUT:
            return False
        digests = []
        for server in server_census:
            digest = op.locally(
                server, lambda _un, _s=server: hash_state(states[_s])
            )
            digests.append(op.comm(server, primary, digest))
        diverged = op.locally(
            primary, lambda un: len({un(digest) for digest in digests}) > 1
        )

        def maybe_resynch(needs: bool) -> bool:
            if needs:
                authoritative = op.locally(primary, lambda _un: dict(states[primary]))
                for server in server_census:
                    if server != primary:
                        copied = op.comm(primary, server, authoritative)
                        op.locally(
                            server,
                            lambda un, _s=server: (
                                states[_s].clear(),
                                states[_s].update(un(copied)),
                            ),
                        )
            return needs

        return op.cond(diverged, maybe_resynch)

    op.cond(request_at_primary, verify)
    return response


def kvs_serve_haschor(
    op: HasChorOp,
    client: Location,
    primary: Location,
    servers: LocationsLike,
    requests: Sequence[Request],
) -> List[Response]:
    """Serve a session of requests with the baseline library."""
    server_census = as_census(servers)
    states: Dict[Location, Dict[str, str]] = {server: {} for server in server_census}
    responses: List[Response] = []
    for request in requests:
        located = op.locally(client, lambda _un, _r=request: _r)
        answer = kvs_request_haschor(op, client, primary, server_census, states, located)
        if isinstance(answer, At) and answer.is_present():
            responses.append(answer.peek())
        if request.kind is RequestKind.STOP:
            break
    return responses
