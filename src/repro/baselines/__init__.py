"""Baseline choreography libraries used for comparison experiments."""

from .haschor import HasChorOp, HasChorProjectedOp, run_haschor

__all__ = ["HasChorOp", "HasChorProjectedOp", "run_haschor"]
