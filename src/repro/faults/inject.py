"""Fault injection at the transport seam: :class:`FaultyEndpoint`.

The wrapper follows the same tee/wrapper pattern as the simulated network's
clock-stamping endpoint: it subclasses
:class:`~repro.runtime.transport.ForwardingEndpoint`, intercepts the send and
receive paths, and forwards everything else untouched.  Because it sits
*above* the real endpoint, the wrapped transport's own guarantees — per-pair
FIFO delivery, serialize-once accounting, the flush-before-block rule — are
preserved by construction wherever the wrapper forwards, and the wrapper is
careful to keep them where it interferes:

* a **held (reordered) frame** is released before any newer frame to the
  same receiver is forwarded (FIFO per pair), and everything held is released
  on :meth:`FaultyEndpoint.flush` and before a blocking receive (the
  flush-before-block rule, which keeps injected reordering deadlock-free);
* a **transient connect failure** raises *before* the inner send runs, so a
  retried message is recorded in :class:`~repro.runtime.stats.ChannelStats`
  exactly once, by the attempt that lands;
* a **crash** makes every subsequent send/receive raise
  :class:`~repro.faults.plan.CrashFault`, while ``flush`` becomes a safe
  no-op (and ``use_stats``, a plain sink reassignment, keeps forwarding
  harmlessly) — a dead location must never be able to wedge the engine
  worker that hosts it (its Future resolves with the crash, not never).

One worker thread drives each endpoint (the engine/runner invariant), so the
wrapper's counters need no locking, and — because every injection decision is
a pure function of the plan seed and per-channel indices — neither thread
scheduling nor wall-clock timing can change what gets injected.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..core.errors import TransportError
from ..core.locations import Location
from ..runtime.transport import ForwardingEndpoint, TransportEndpoint
from .plan import CrashFault, CrashRule, FaultSession

#: One held (reordered) frame: release-step deadline, inner method name, args.
_Held = Tuple[int, str, tuple]


class FaultyEndpoint(ForwardingEndpoint):
    """Injects a :class:`~repro.faults.plan.FaultPlan`'s faults into one endpoint.

    Built via :meth:`repro.faults.plan.FaultSession.wrap`; transports accept
    the plan through their ``faults=`` option and wrap every endpoint they
    hand out.
    """

    def __init__(
        self,
        inner: TransportEndpoint,
        session: FaultSession,
        *,
        delay_fn: Optional[Callable[[float], None]] = None,
        clock_fn: Optional[Callable[[], float]] = None,
    ):
        super().__init__(inner)
        self._session = session
        self._plan = session.plan
        self._delay_fn = delay_fn if delay_fn is not None else time.sleep
        self._clock_fn = clock_fn
        self._crash_rule: Optional[CrashRule] = self._plan.crash_rule_for(self.location)
        if (
            self._crash_rule is not None
            and self._crash_rule.at_time is not None
            and clock_fn is None
        ):
            raise ValueError(
                f"crash(at_time=...) for {self.location!r} needs a clock; only the "
                "simulated backend provides one — use after_ops= elsewhere"
            )
        self._step = 0
        self._crashed_at: Optional[int] = None
        self._send_index: Dict[Location, int] = {}
        self._flaky_failed: Dict[Location, int] = {}
        self._held: Dict[Location, List[_Held]] = {}

    # ------------------------------------------------------------------ plumbing --

    def _tick(self) -> None:
        """Advance the op counter; crash if due; release expired holds."""
        self._step += 1
        if self._crashed_at is not None:
            raise CrashFault(self.location, self._crashed_at)
        rule = self._crash_rule
        if rule is not None:
            due = (rule.after_ops is not None and self._step > rule.after_ops) or (
                rule.at_time is not None and self._clock_fn() >= rule.at_time
            )
            if due:
                self._crashed_at = self._step
                self._held.clear()  # a dead process's buffered writes are lost
                self._session.record("crash", self.location, None, self._step)
                raise CrashFault(self.location, self._crashed_at)
        self._release_due()

    def _release_due(self) -> None:
        """Forward every held frame whose hold span has expired.

        Only each receiver's *prefix* of expired frames is released: a held
        frame never overtakes an older held frame to the same receiver, so a
        later frame that drew a shorter span simply waits (its effective hold
        stretches) and per-pair FIFO survives.
        """
        for receiver in list(self._held):
            frames = self._held[receiver]
            while frames and frames[0][0] <= self._step:
                _release_at, method, args = frames.pop(0)
                getattr(self._inner, method)(receiver, *args)
            if not frames:
                del self._held[receiver]

    def _release(self, receiver: Location) -> None:
        """Forward everything held for ``receiver`` (a newer frame is coming)."""
        frames = self._held.pop(receiver, None)
        if frames:
            for _release_at, method, args in frames:
                getattr(self._inner, method)(receiver, *args)

    def _release_all(self) -> None:
        for receiver in list(self._held):
            self._release(receiver)

    def _next_send_index(self, receiver: Location) -> int:
        index = self._send_index.get(receiver, 0)
        self._send_index[receiver] = index + 1
        return index

    def _flaky(self, receiver: Location) -> None:
        """Inject transient connect failures for this channel, if planned.

        Each failed attempt is logged with the channel's cumulative failed-
        attempt count as its detail.
        """
        rule = self._plan.flaky_rule_for(self.location, receiver)
        if rule is None:
            return
        retries = 0
        while self._flaky_failed.get(receiver, 0) < rule.failures:
            failed = self._flaky_failed.get(receiver, 0) + 1
            self._flaky_failed[receiver] = failed
            self._session.record(
                "connect-fail", self.location, receiver, self._step, failed
            )
            if retries >= rule.max_retries:
                raise TransportError(
                    f"transient connect failure from {self.location!r} to "
                    f"{receiver!r} (attempt {failed} of {rule.failures} planned)"
                )
            retries += 1

    def _delay(self, receiver: Location, index: int) -> None:
        seconds = self._plan.delay_for(self.location, receiver, index)
        if seconds > 0.0:
            self._session.record("delay", self.location, receiver, self._step, seconds)
            self._delay_fn(seconds)

    # ----------------------------------------------------------------- outgoing --

    def _send_op(self, method: str, receiver: Location, args: tuple) -> None:
        self._tick()
        index = self._next_send_index(receiver)
        self._release(receiver)  # FIFO: older held frames go out first
        self._flaky(receiver)
        self._delay(receiver, index)
        hold = self._plan.reorder_hold(self.location, receiver, index)
        if hold > 0:
            self._session.record("reorder", self.location, receiver, self._step, hold)
            self._held.setdefault(receiver, []).append((self._step + hold, method, args))
        else:
            getattr(self._inner, method)(receiver, *args)

    def send(self, receiver: Location, payload: Any) -> None:
        self._send_op("send", receiver, (payload,))

    def send_scoped(self, receiver: Location, instance: int, payload: Any) -> None:
        self._send_op("send_scoped", receiver, (instance, payload))

    def _broadcast_op(self, method: str, targets: List[Location], args: tuple) -> None:
        # Broadcasts ride the inner serialize-once path undivided: they are
        # subject to crash and delay (the largest per-target draw, so the
        # shared wire moment is charged once), but not to reorder/flaky,
        # which are per-channel by nature.
        self._tick()
        seconds = 0.0
        for receiver in targets:
            self._release(receiver)
            index = self._next_send_index(receiver)
            seconds = max(seconds, self._plan.delay_for(self.location, receiver, index))
        if seconds > 0.0:
            self._session.record("delay", self.location, tuple(targets), self._step, seconds)
            self._delay_fn(seconds)
        getattr(self._inner, method)(targets, *args)

    def send_many(self, receivers: Iterable[Location], payload: Any) -> None:
        self._broadcast_op("send_many", list(receivers), (payload,))

    def send_many_scoped(
        self, receivers: Iterable[Location], instance: int, payload: Any
    ) -> None:
        self._broadcast_op("send_many_scoped", list(receivers), (instance, payload))

    # ----------------------------------------------------------------- incoming --

    def recv(self, sender: Location) -> Any:
        self._tick()
        self._release_all()  # flush-before-block: held frames must be in flight
        return self._inner.recv(sender)

    def recv_scoped(self, sender: Location) -> "tuple[int, Any]":
        self._tick()
        self._release_all()
        return self._inner.recv_scoped(sender)

    def recv_many(self, senders: Iterable[Location]) -> Dict[Location, Any]:
        return {sender: self.recv(sender) for sender in senders}

    # ---------------------------------------------------------------- lifecycle --

    def flush(self) -> None:
        """Release holds and drain the inner endpoint; a no-op once crashed.

        Crash semantics: whatever a dead location had buffered is lost, and
        — just as important for liveness — the engine worker's instance-
        boundary flush must not raise, or a crashed location could wedge
        every later instance's Future.
        """
        if self._crashed_at is not None:
            return
        self._release_all()
        self._inner.flush()

    @property
    def crashed(self) -> bool:
        """Whether this endpoint's crash rule has fired."""
        return self._crashed_at is not None

    def restart(self) -> bool:
        """Clear a fired crash, as a restarted process re-opening its sockets.

        The crash rule is consumed: a restarted location is not re-killed by
        the rule that killed it (a plan that wants repeated deaths schedules
        them on separate locations).  Held frames were already discarded at
        crash time — a dead process's buffered writes stay lost — and the
        operation counter keeps running, so later per-channel fault decisions
        remain the pure seeded functions they were before the crash.

        Call this only while the endpoint's worker is quiescent (nothing
        in flight for its location): the counters are single-threaded by the
        one-worker-per-endpoint invariant, and a restart races with nothing
        only when the location has no instance running.

        Returns:
            True when a crash was actually cleared; False when the endpoint
            was alive (the call is then a no-op).
        """
        if self._crashed_at is None:
            return False
        self._crashed_at = None
        self._crash_rule = None
        self._session.record("restart", self.location, None, self._step)
        return True
