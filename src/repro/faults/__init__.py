"""Deterministic fault injection for chaos-testing choreographies.

The paper proves choreographies deadlock-free *by construction*; this package
is how the repository tests what construction cannot promise — crashed
replicas, jittery links, transient connect failures — without giving up
reproducibility.  A :class:`FaultPlan` describes the faults as pure functions
of a seed and per-channel message indices; a transport built with
``faults=plan`` wraps every endpoint in a :class:`FaultyEndpoint` and logs
each injection to a :class:`FaultSession`, whose canonical
:meth:`~FaultSession.schedule` lets a test assert that the same seed
reproduces the same message schedule, run after run.

Plugs in behind the ``faults=`` backend option::

    from repro import ChoreoEngine
    from repro.faults import FaultPlan

    plan = FaultPlan(seed=7).delay(jitter=0.5, rate=0.3).crash("bob", after_ops=40)
    engine = ChoreoEngine(["alice", "bob"], backend="simulated", faults=plan)

On the ``simulated`` backend delays are charged to the virtual clock (no real
sleeping) and the whole schedule is deterministic; on ``tcp`` the same plan
injects real sleeps and socket-level flakiness.  ``docs/testing.md`` is the
guide: the DSL, the seed discipline, and how the cluster failover suite uses
all of it.
"""

from .inject import FaultyEndpoint
from .plan import (
    ANY,
    CrashFault,
    CrashRule,
    DelayRule,
    FaultEvent,
    FaultPlan,
    FaultSession,
    FlakyRule,
    ReorderRule,
)

__all__ = [
    "ANY",
    "CrashFault",
    "CrashRule",
    "DelayRule",
    "FaultEvent",
    "FaultPlan",
    "FaultSession",
    "FaultyEndpoint",
    "FlakyRule",
    "ReorderRule",
]
