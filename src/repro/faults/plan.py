"""The :class:`FaultPlan` DSL: seedable, deterministic fault schedules.

A chaos test is only useful if a failing run can be *replayed*.  The plan
therefore never draws from a shared mutable RNG — every injection decision is
a pure function of ``(seed, fault kind, sender, receiver, per-channel message
index)``, derived through the same :func:`repro.protocols.crypto.party_rng`
hashing discipline the protocol case studies use for reproducible "local
randomness".  Thread interleavings cannot perturb the decisions: each
endpoint's operation sequence determines its own injections, whatever the
other endpoints are doing at the time.

A plan is a passive description.  Each transport that is built with
``faults=plan`` opens its own :class:`FaultSession` — the mutable half that
owns the event log and wraps endpoints in
:class:`~repro.faults.inject.FaultyEndpoint` — so one plan can parameterize
every shard of a cluster (or two runs of the same experiment) without the
runs sharing state.

Four fault families are supported, mirroring what actually goes wrong under
a production KVS:

* :meth:`FaultPlan.delay` — per-channel message delay jitter;
* :meth:`FaultPlan.reorder` — bounded reorder across *independent* channels
  only (per-pair FIFO is never violated: a held frame is released before any
  later frame to the same receiver is forwarded);
* :meth:`FaultPlan.crash` — a location dies at its N-th transport operation
  (or at a virtual time, on the simulated backend) and stays dead;
* :meth:`FaultPlan.flaky_connect` — the first sends on a channel fail
  transiently, either retried inside the wrapper (transparent, logged) or
  surfaced to the caller when the retry budget is exhausted.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ChoreographyError
from ..core.locations import Location
from ..protocols.crypto import party_rng

#: The wildcard matching any location in a channel pattern.
ANY = "*"


class CrashFault(ChoreographyError):
    """A fault plan killed this location; every transport operation raises.

    Deliberately *not* a :class:`~repro.core.errors.TransportError`: the
    engine's root-cause selection reports non-transport failures first, so a
    crashed location is named as the root cause of a failed instance rather
    than the receive timeouts it induces at its peers.
    """

    def __init__(self, location: Location, step: int):
        self.location = location
        self.step = step
        super().__init__(
            f"location {location!r} crashed by fault plan at transport step {step}"
        )


def _match(pattern: str, location: Location) -> bool:
    return pattern == ANY or pattern == location


def _require_rate(rate: float) -> float:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be within [0, 1], got {rate!r}")
    return float(rate)


@dataclass(frozen=True)
class DelayRule:
    """Add up to ``jitter`` virtual/real seconds to matching sends."""

    sender: str
    receiver: str
    jitter: float
    rate: float


@dataclass(frozen=True)
class ReorderRule:
    """Hold matching sends back up to ``span`` later operations."""

    sender: str
    receiver: str
    rate: float
    span: int


@dataclass(frozen=True)
class CrashRule:
    """Kill ``location`` after ``after_ops`` operations or at ``at_time``."""

    location: Location
    after_ops: Optional[int]
    at_time: Optional[float]


@dataclass(frozen=True)
class FlakyRule:
    """Fail the first ``failures`` send attempts on matching channels."""

    sender: str
    receiver: str
    failures: int
    rate: float
    max_retries: int


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the session log.

    ``step`` is the injecting endpoint's own operation counter, so the events
    *of one location* are totally ordered however the worker threads
    interleave — which is what makes two same-seed runs comparable.
    """

    kind: str  #: "delay" | "reorder" | "crash" | "connect-fail" | "restart"
    location: Location  #: the endpoint the fault fired at
    #: The channel's other end: one location for unicast faults, the tuple
    #: of receivers for a broadcast delay, ``None`` for crashes.
    peer: "Optional[Location] | tuple"
    step: int  #: the location's transport-operation counter at injection
    detail: Any = None  #: delay seconds, hold span, or attempt number


class FaultPlan:
    """A seedable, chainable description of the faults to inject.

    Example::

        plan = (FaultPlan(seed=7)
                .delay(jitter=0.5, rate=0.3)                # any channel
                .reorder(rate=0.2, span=3)
                .crash("shard0.r1", after_ops=120)
                .flaky_connect("client", "shard0.r0", failures=2))

    The plan is passed to a backend as ``faults=plan`` (``simulated`` and
    ``tcp`` accept it, directly or through
    :class:`~repro.runtime.engine.ChoreoEngine` /
    :class:`~repro.cluster.ClusterEngine` backend options); the transport
    opens a :class:`FaultSession` and exposes it as ``transport.faults``.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.delays: List[DelayRule] = []
        self.reorders: List[ReorderRule] = []
        self.crashes: Dict[Location, CrashRule] = {}
        self.flakes: List[FlakyRule] = []

    # ------------------------------------------------------------------ builder --

    def delay(
        self, sender: str = ANY, receiver: str = ANY, *, jitter: float, rate: float = 1.0
    ) -> "FaultPlan":
        """Add up to ``jitter`` seconds (virtual on ``simulated``, real on
        ``tcp``) to each matching send, with probability ``rate`` per message.
        """
        if jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {jitter!r}")
        self.delays.append(DelayRule(sender, receiver, float(jitter), _require_rate(rate)))
        return self

    def reorder(
        self, sender: str = ANY, receiver: str = ANY, *, rate: float, span: int = 3
    ) -> "FaultPlan":
        """Hold matching sends back for up to ``span`` of the sender's later
        operations, letting traffic to *other* receivers overtake them.
        Per-pair FIFO is preserved: a held frame is always released before
        any newer frame to the same receiver goes out, and everything held is
        released before the endpoint blocks in a receive or flushes.

        Applies to *unicast* sends only: a serialize-once broadcast
        (``send_many``) is one indivisible wire moment and is never held —
        point a reorder rule at channels that carry point-to-point traffic
        (with one backup, replication fan-outs are plain sends; with two or
        more they go out as broadcasts and only delay/crash rules touch
        them).
        """
        if span < 1:
            raise ValueError(f"span must be >= 1, got {span!r}")
        self.reorders.append(ReorderRule(sender, receiver, _require_rate(rate), int(span)))
        return self

    def crash(
        self,
        location: Location,
        *,
        after_ops: Optional[int] = None,
        at_time: Optional[float] = None,
    ) -> "FaultPlan":
        """Kill ``location`` (no wildcard) after it completes ``after_ops``
        transport operations — its ``after_ops + 1``-th operation raises, so
        ``after_ops=0`` means dead on arrival — or once its virtual clock
        reaches ``at_time`` (simulated backend only).  Exactly one trigger
        must be given.  A crashed endpoint raises :class:`CrashFault` on
        every send and receive from then on; its buffered writes are
        silently lost, as a dead process's would be.
        """
        if location == ANY:
            raise ValueError("crash targets one concrete location, not a wildcard")
        if (after_ops is None) == (at_time is None):
            raise ValueError("crash needs exactly one of after_ops= or at_time=")
        if after_ops is not None and after_ops < 0:
            raise ValueError(f"after_ops must be >= 0, got {after_ops!r}")
        if location in self.crashes:
            raise ValueError(f"location {location!r} already has a crash rule")
        self.crashes[location] = CrashRule(location, after_ops, at_time)
        return self

    def flaky_connect(
        self,
        sender: str = ANY,
        receiver: str = ANY,
        *,
        failures: int = 1,
        rate: float = 1.0,
        max_retries: int = 3,
    ) -> "FaultPlan":
        """Fail the first ``failures`` *unicast* send attempts on each
        matching channel (a transiently unreachable peer); like
        :meth:`reorder`, broadcasts are exempt.  Each failed attempt is logged;
        the wrapper retries immediately up to ``max_retries`` times per send,
        so with ``max_retries >= failures`` the fault is transparent to the
        caller (and the channel's :class:`~repro.runtime.stats.ChannelStats`
        stay exact — the message is recorded once, on the attempt that
        lands).  With a smaller budget the send raises
        :class:`~repro.core.errors.TransportError`, exercising caller-side
        retry paths such as :class:`~repro.cluster.ClusterClient`'s.
        """
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures!r}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries!r}")
        self.flakes.append(
            FlakyRule(sender, receiver, int(failures), _require_rate(rate), int(max_retries))
        )
        return self

    # ------------------------------------------------------- decision functions --
    #
    # Pure functions of (seed, kind, channel, index): no shared RNG state, so
    # decisions are immune to thread interleaving and identical across runs.

    def _rng(self, kind: str, sender: str, receiver: str, index: int):
        return party_rng(self.seed, sender, f"fault|{kind}|{receiver}|{index}")

    def delay_for(self, sender: Location, receiver: Location, index: int) -> float:
        """The injected delay (seconds, possibly 0) for a channel's
        ``index``-th message; the first matching rule decides."""
        for rule in self.delays:
            if _match(rule.sender, sender) and _match(rule.receiver, receiver):
                rng = self._rng("delay", sender, receiver, index)
                if rng.random() < rule.rate:
                    return rng.random() * rule.jitter
                return 0.0
        return 0.0

    def reorder_hold(self, sender: Location, receiver: Location, index: int) -> int:
        """How many of the sender's later operations the channel's
        ``index``-th message is held back for (0 = not held)."""
        for rule in self.reorders:
            if _match(rule.sender, sender) and _match(rule.receiver, receiver):
                rng = self._rng("reorder", sender, receiver, index)
                if rng.random() < rule.rate:
                    return rng.randint(1, rule.span)
                return 0
        return 0

    def crash_rule_for(self, location: Location) -> Optional[CrashRule]:
        """The crash rule targeting ``location``, if any."""
        return self.crashes.get(location)

    def flaky_rule_for(self, sender: Location, receiver: Location) -> Optional[FlakyRule]:
        """The (first matching, per-channel-activated) flaky-connect rule.

        Whether a rule with ``rate < 1`` applies to a given channel is itself
        a seeded per-channel decision, so the set of flaky channels is stable
        across runs.
        """
        for rule in self.flakes:
            if _match(rule.sender, sender) and _match(rule.receiver, receiver):
                if rule.rate >= 1.0:
                    return rule
                rng = self._rng("flaky", sender, receiver, 0)
                return rule if rng.random() < rule.rate else None
        return None

    # ---------------------------------------------------------------- sessions --

    def session(self) -> "FaultSession":
        """Open a fresh mutable session (event log + endpoint wrapping)."""
        return FaultSession(self)

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, delays={len(self.delays)}, "
            f"reorders={len(self.reorders)}, crashes={sorted(self.crashes)}, "
            f"flaky={len(self.flakes)})"
        )


class FaultSession:
    """One transport's worth of live fault state: the log, and the wrappers.

    Created by :meth:`FaultPlan.session` (transports do this when built with
    ``faults=``).  The log is the *schedule witness*: two runs of the same
    seeded workload are considered schedule-identical when their
    :meth:`schedule` values match.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._events: List[FaultEvent] = []
        self._wrapped: List[Any] = []

    def record(
        self,
        kind: str,
        location: Location,
        peer: Optional[Location],
        step: int,
        detail: Any = None,
    ) -> None:
        """Append one injected-fault event (called by the endpoint wrappers)."""
        with self._lock:
            self._events.append(FaultEvent(kind, location, peer, step, detail))

    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """A snapshot of every event logged so far, in arrival order.

        Arrival order interleaves locations nondeterministically; use
        :meth:`schedule` for run-to-run comparison.
        """
        with self._lock:
            return tuple(self._events)

    def events_at(self, location: Location) -> Tuple[FaultEvent, ...]:
        """The events injected at one location, in that location's step order."""
        return tuple(
            sorted(
                (event for event in self.events if event.location == location),
                key=lambda event: event.step,
            )
        )

    def schedule(self) -> Tuple[Tuple[Any, ...], ...]:
        """A canonical, thread-order-independent view of the whole log.

        Events are keyed by ``(location, step)`` — each location's step
        counter is private to its single driving thread — so two runs with
        the same seed and workload produce the *same* schedule tuple, and a
        regression that changes message timing shows up as a schedule diff.
        """
        return tuple(
            sorted(
                (event.location, event.step, event.kind, event.peer, event.detail)
                for event in self.events
            )
        )

    def wrap(self, endpoint, *, delay_fn=None, clock_fn=None):
        """Wrap ``endpoint`` in a :class:`~repro.faults.inject.FaultyEndpoint`.

        Args:
            endpoint: Any :class:`~repro.runtime.transport.TransportEndpoint`.
            delay_fn: How to realize an injected delay; defaults to
                ``time.sleep``.  The simulated backend passes a virtual-clock
                advance instead.
            clock_fn: A zero-argument current-time callable for
                ``crash(at_time=...)`` rules; required when the plan holds
                one for this endpoint's location (the simulated backend
                passes its virtual clock).
        """
        from .inject import FaultyEndpoint

        wrapper = FaultyEndpoint(endpoint, self, delay_fn=delay_fn, clock_fn=clock_fn)
        with self._lock:
            self._wrapped.append(wrapper)
        return wrapper

    def revive(self, location: Location) -> int:
        """Restart every crashed endpoint wrapper at ``location``.

        The recovery half of :meth:`FaultPlan.crash`: the cluster's
        :meth:`~repro.cluster.ClusterEngine.rejoin_backup` calls this before
        running the catch-up choreography, modelling the dead process coming
        back up and re-opening its sockets.  Each restart is logged as a
        ``"restart"`` event, so a crash→restart pair is visible (and
        schedule-comparable) in the session log.  Call only while the
        location is quiescent — see :meth:`FaultyEndpoint.restart`.

        Returns:
            How many endpoints actually transitioned from crashed to alive.
        """
        with self._lock:
            targets = [
                wrapper for wrapper in self._wrapped if wrapper.location == location
            ]
        return sum(1 for wrapper in targets if wrapper.restart())

    def __repr__(self) -> str:
        return f"FaultSession(plan={self.plan!r}, events={len(self.events)})"
