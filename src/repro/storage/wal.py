"""Append-only write-ahead log with checksummed framing and torn-tail repair.

A replica that can crash must be able to *restart*: the cluster's failover
(PR 5) only demotes a dead backup, and re-admitting it requires the replica
to rebuild the state it held before dying.  The WAL is the first half of
that story (snapshots are the second, :mod:`repro.storage.snapshot`): every
mutation a replica applies to its store is appended here *before* it lands
in memory, so a restart can replay the log and recover exactly the
acknowledged state.

Format
------

The file starts with an 8-byte magic (:data:`MAGIC`, format version
included), followed by a flat sequence of records::

    [uvarint payload length][crc32 of payload, 4 bytes big-endian][payload]

The payload is ``wire.encode((seq, op))`` — the same compact codec the
transports frame messages with (:mod:`repro.runtime.wire`), so a WAL record
costs bytes proportional to its information content, not pickle overhead.
``seq`` is the store's monotonically increasing mutation counter (the
*high-water mark* after replay); ``op`` is a small tuple such as
``("put", key, value)``, ``("del", key)``, ``("clear",)``, or ``("seal",)``
(a sequence-number jump written by catch-up transfers).

Torn tails
----------

A crash mid-append leaves a half-written record at the end of the file: a
truncated varint, a short payload, or a checksum mismatch.  On open the log
is scanned front to back and **truncated at the last intact record** — the
torn tail is discarded, never "repaired", because an unacknowledged suffix
is exactly what a crashed process is allowed to lose.  Corruption *before*
the tail (a bad checksum followed by more valid data) is not recoverable
bit-rot and raises :class:`WalCorruption` instead of being silently dropped.

fsync policy
------------

``fsync=`` picks the durability/throughput trade-off (see
``docs/durability.md`` for measurements):

* ``"always"`` — ``os.fsync`` after every append: a record is on stable
  storage before the mutation is acknowledged; survives OS/power failure.
* ``"batch"`` — flush to the OS on every append, ``fsync`` only at
  explicit :meth:`sync` points (snapshots, close): survives *process*
  crashes (the OS holds the pages), may lose the tail on power failure.
* ``"never"`` — flush to the OS, never ``fsync``: the benchmark baseline.
"""

from __future__ import annotations

import os
import zlib
from typing import Any, Iterator, List, Optional, Tuple

from ..runtime import wire

#: File magic: "RWAL" + format version 1 + three reserved bytes.
MAGIC = b"RWAL\x01\x00\x00\x00"

#: The accepted ``fsync=`` policies, strongest first.
FSYNC_POLICIES = ("always", "batch", "never")

#: One decoded log record: ``(seq, op)``.
WalRecord = Tuple[int, Tuple[Any, ...]]


class WalCorruption(ValueError):
    """The log is damaged somewhere other than its (repairable) tail."""


def _require_policy(fsync: str) -> str:
    if fsync not in FSYNC_POLICIES:
        raise ValueError(
            f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
        )
    return fsync


class WriteAheadLog:
    """An append-only, checksum-framed record log backing one replica store.

    Args:
        path: The log file; created (with its parent directory) if missing.
        fsync: One of :data:`FSYNC_POLICIES` — see the module docstring.

    Raises:
        ValueError: For an unknown fsync policy.
        WalCorruption: When the existing file's magic is wrong or a damaged
            record is followed by intact data (mid-file corruption; a torn
            *tail* is repaired by truncation instead).

    Opening scans the whole file once: torn tails are truncated, the last
    record's ``seq`` becomes :attr:`last_seq`, and :attr:`record_count`
    reports how many records survived — the numbers a restart's replay
    reports as its recovery work.
    """

    def __init__(self, path: "str | os.PathLike", *, fsync: str = "batch"):
        self.path = os.fspath(path)
        self.fsync = _require_policy(fsync)
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        self.last_seq = 0
        self.record_count = 0
        self._closed = False
        valid_end = self._scan_and_repair()
        self._file = open(self.path, "r+b")
        self._file.seek(valid_end)

    # ------------------------------------------------------------------ opening --

    def _scan_and_repair(self) -> int:
        """Validate the existing file, truncating a torn tail.

        Returns the offset of the first byte past the last intact record
        (the append position).  A missing or empty file is initialized with
        the magic header.
        """
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            data = b""
        if not data or len(data) < len(MAGIC):
            # Fresh log (or a tail torn inside the magic itself): start over.
            with open(self.path, "wb") as handle:
                handle.write(MAGIC)
                handle.flush()
                if self.fsync == "always":
                    os.fsync(handle.fileno())
            return len(MAGIC)
        if data[: len(MAGIC)] != MAGIC:
            raise WalCorruption(
                f"{self.path}: bad WAL magic {data[:len(MAGIC)]!r}; refusing to "
                "append to a file this library did not write"
            )
        pos = len(MAGIC)
        valid_end = pos
        while pos < len(data):
            frame = self._try_record(data, pos)
            if frame is None or (not frame[0] and frame[3] >= len(data)):
                # A structurally torn frame, or a checksum/decode failure on
                # the *final* frame: both are what a crash mid-append leaves
                # behind — truncate to the last intact record.
                with open(self.path, "r+b") as handle:
                    handle.truncate(valid_end)
                break
            ok, seq, _op, pos = frame
            if not ok:
                # A damaged record with intact data *after* it cannot be a
                # torn tail; dropping it would silently skip acknowledged
                # mutations, so refuse instead.
                raise WalCorruption(
                    f"{self.path}: damaged record followed by intact data "
                    f"(mid-file corruption, not a torn tail)"
                )
            if seq <= self.last_seq:
                raise WalCorruption(
                    f"{self.path}: non-monotonic record seq {seq} after "
                    f"{self.last_seq}"
                )
            self.last_seq = seq
            self.record_count += 1
            valid_end = pos
        return valid_end

    @staticmethod
    def _try_record(
        data: bytes, pos: int
    ) -> "Optional[Tuple[bool, int, tuple, int]]":
        """Parse the frame at ``pos``.

        Returns ``None`` when the frame's *structure* is torn (truncated
        varint or short payload — the end of the frame cannot even be
        found), else ``(ok, seq, op, next_pos)`` where ``ok`` is False for a
        structurally whole frame whose checksum or payload decode failed
        (``seq``/``op`` are then meaningless).
        """
        try:
            length, body = wire.read_uvarint(data, pos)
        except ValueError:
            return None
        end = body + 4 + length
        if end > len(data):
            return None
        stored_crc = int.from_bytes(data[body : body + 4], "big")
        payload = data[body + 4 : end]
        if zlib.crc32(payload) != stored_crc:
            return (False, 0, (), end)
        try:
            seq, op = wire.decode(payload)
        except (ValueError, TypeError):
            return (False, 0, (), end)
        return (True, int(seq), tuple(op), end)

    # ---------------------------------------------------------------- appending --

    def append(self, op: Tuple[Any, ...], *, seq: Optional[int] = None) -> int:
        """Append one record; returns its sequence number.

        ``seq`` defaults to ``last_seq + 1``; a catch-up transfer passes an
        explicit (larger) value to seal a sequence jump.  The record is
        flushed to the OS before returning, and fsynced per the policy.

        Raises:
            ValueError: On a closed log or a non-monotonic explicit ``seq``.
        """
        if self._closed:
            raise ValueError(f"{self.path}: append to a closed WAL")
        if seq is None:
            seq = self.last_seq + 1
        elif seq <= self.last_seq:
            raise ValueError(
                f"{self.path}: explicit seq {seq} not after last_seq {self.last_seq}"
            )
        payload = wire.encode((seq, tuple(op)))
        frame = bytearray()
        wire.write_uvarint(frame, len(payload))
        frame += zlib.crc32(payload).to_bytes(4, "big")
        frame += payload
        self._file.write(frame)
        self._file.flush()
        if self.fsync == "always":
            os.fsync(self._file.fileno())
        self.last_seq = seq
        self.record_count += 1
        return seq

    def sync(self) -> None:
        """Force the log to stable storage (a no-op under ``"never"``)."""
        if self._closed:
            return
        self._file.flush()
        if self.fsync != "never":
            os.fsync(self._file.fileno())

    # ------------------------------------------------------------------ reading --

    def records(self, since: int = 0) -> Iterator[WalRecord]:
        """Iterate the intact ``(seq, op)`` records with ``seq > since``.

        Reads back from disk (after flushing pending appends), so this is
        also how the catch-up choreography's primary side re-reads its own
        suffix; the open file position is untouched.
        """
        if not self._closed:
            self._file.flush()
        with open(self.path, "rb") as handle:
            data = handle.read()
        pos = len(MAGIC)
        out: List[WalRecord] = []
        while pos < len(data):
            frame = self._try_record(data, pos)
            if frame is None or not frame[0]:
                break  # unreadable suffix: open-time scanning decides its fate
            _ok, seq, op, pos = frame
            if seq > since:
                out.append((seq, op))
        return iter(out)

    # ---------------------------------------------------------------- lifecycle --

    def reset(self, seq: int) -> None:
        """Drop every record (a snapshot now covers them); keep counting from ``seq``.

        Called after a successful snapshot at ``seq``: the log restarts empty
        but sequence numbers continue, so replay order across snapshot
        boundaries stays unambiguous.
        """
        self._file.truncate(len(MAGIC))
        self._file.seek(len(MAGIC))
        self._file.flush()
        if self.fsync != "never":
            os.fsync(self._file.fileno())
        self.last_seq = max(self.last_seq, seq)
        self.record_count = 0

    def close(self) -> None:
        """Flush (and fsync, unless ``"never"``), then close.  Idempotent."""
        if self._closed:
            return
        self.sync()
        self._closed = True
        self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"WriteAheadLog({self.path!r}, fsync={self.fsync!r}, "
            f"last_seq={self.last_seq}, records={self.record_count})"
        )
