"""Per-replica persistence: write-ahead log, snapshots, durable stores.

This package is the disk half of the cluster's recovery story
(``docs/durability.md``):

* :class:`WriteAheadLog` — append-only, checksum-framed mutation log with
  torn-tail repair and an ``always | batch | never`` fsync policy knob.
* :class:`SnapshotStore` — atomic write-then-rename checkpoints that bound
  WAL growth and restart replay time.
* :class:`DurableState` — a ``dict`` subclass that write-ahead-logs every
  mutation, so the KVS choreographies gain persistence without changing a
  single protocol call site.
* :class:`Durability` — the cluster-level configuration
  (``ClusterEngine(..., durability=...)``) mapping shards and replicas to
  on-disk directories.

The catch-up bridge (:func:`high_water_of`, :func:`delta_since`,
:func:`apply_catchup`) is what the ``kvs_catchup`` choreography calls on
both sides of a replica re-join; it degrades to full transfers for
ephemeral (plain-dict) stores so re-join works with durability off, too.

Two-phase commit rides on the same machinery: ``txn_prepare`` /
``txn_decide`` WAL records park and resolve per-transaction write intents
(:attr:`DurableState.txns`), and :class:`EphemeralState` gives non-durable
replicas the same intent table minus the disk.
"""

from .durable import (
    TXN_INTENT_TTL,
    Durability,
    DurableState,
    EphemeralState,
    apply_catchup,
    apply_op,
    delta_since,
    high_water_of,
    promotion_of,
    txns_of,
)
from .snapshot import SnapshotStore
from .wal import FSYNC_POLICIES, WalCorruption, WalRecord, WriteAheadLog

__all__ = [
    "Durability",
    "DurableState",
    "EphemeralState",
    "FSYNC_POLICIES",
    "SnapshotStore",
    "TXN_INTENT_TTL",
    "WalCorruption",
    "WalRecord",
    "WriteAheadLog",
    "apply_catchup",
    "apply_op",
    "delta_since",
    "high_water_of",
    "promotion_of",
    "txns_of",
]
