"""Point-in-time store snapshots: atomic write-then-rename, checksummed.

Replaying a WAL from the beginning of time makes restart cost grow with
history, not with state size.  A snapshot bounds it: every
``snapshot_every`` mutations the replica serializes its whole store (with
the WAL sequence number the snapshot covers) and the WAL restarts empty —
recovery is then *snapshot + WAL suffix*, a constant amount of work per
checkpoint interval.

Atomicity is the write-then-rename idiom: the new snapshot is written to a
sibling temp file, flushed and fsynced, then :func:`os.replace`\\ d over the
live name.  A crash at any point leaves either the old snapshot or the new
one — never a torn mix — so :meth:`SnapshotStore.load` needs no repair
logic: a checksum failure in the *live* file means real bit-rot and raises
:class:`~repro.storage.wal.WalCorruption` rather than silently serving an
empty store.

The payload rides the same compact codec as the WAL and the transports
(:mod:`repro.runtime.wire`): ``wire.encode((seq, contents))`` behind the
shared ``[magic][uvarint length][crc32][payload]`` framing.  Stores that
carry replication metadata beyond their items — the shard epoch a primary
promotion stamped, and which replica was promoted — persist it as an
optional third payload element, ``(seq, contents, meta)``; snapshots
written before the extension decode as an empty ``meta``, so old data
directories open unchanged.
"""

from __future__ import annotations

import os
import zlib
from typing import Any, Dict, Tuple

from ..runtime import wire
from .wal import WalCorruption

#: File magic: "RSNP" + format version 1 + three reserved bytes.
MAGIC = b"RSNP\x01\x00\x00\x00"

#: The live snapshot's file name inside a replica's storage directory.
FILENAME = "snapshot.bin"


class SnapshotStore:
    """Saves and loads one replica store's point-in-time snapshots.

    Args:
        directory: Where the snapshot lives; created if missing.  One
            directory per replica — the same directory its WAL lives in.
    """

    def __init__(self, directory: "str | os.PathLike"):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.path = os.path.join(self.directory, FILENAME)

    def save(
        self,
        seq: int,
        contents: Dict[str, str],
        meta: "Dict[str, Any] | None" = None,
    ) -> None:
        """Atomically persist ``contents`` as the snapshot covering ``seq``.

        The temp file is fsynced before the rename and the directory entry
        after it, so once :meth:`save` returns the snapshot survives a power
        failure regardless of the WAL's fsync policy — a snapshot that could
        vanish would break the "WAL suffix only" replay contract.

        ``meta`` carries non-item replica metadata (the promotion epoch);
        when empty or omitted the payload stays the legacy two-element
        form, byte-identical to pre-epoch snapshots.
        """
        if meta:
            payload = wire.encode((int(seq), dict(contents), dict(meta)))
        else:
            payload = wire.encode((int(seq), dict(contents)))
        frame = bytearray(MAGIC)
        wire.write_uvarint(frame, len(payload))
        frame += zlib.crc32(payload).to_bytes(4, "big")
        frame += payload
        temp = self.path + ".tmp"
        with open(temp, "wb") as handle:
            handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)
        directory_fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(directory_fd)
        finally:
            os.close(directory_fd)

    def load(self) -> Tuple[int, Dict[str, str]]:
        """The latest snapshot as ``(seq, contents)``; ``(0, {})`` if none.

        Raises:
            WalCorruption: When the live snapshot file exists but fails its
                magic/length/checksum validation (bit-rot, not a torn write —
                torn writes cannot survive the atomic rename).
        """
        seq, contents, _meta = self.load_with_meta()
        return seq, contents

    def load_with_meta(self) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
        """The latest snapshot as ``(seq, contents, meta)``.

        ``meta`` is ``{}`` for a missing snapshot and for snapshots written
        before the metadata extension (legacy two-element payloads).
        """
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return 0, {}, {}
        if len(data) < len(MAGIC) or data[: len(MAGIC)] != MAGIC:
            raise WalCorruption(f"{self.path}: bad snapshot magic")
        try:
            length, body = wire.read_uvarint(data, len(MAGIC))
        except ValueError as exc:
            raise WalCorruption(f"{self.path}: truncated snapshot header") from exc
        payload = data[body + 4 : body + 4 + length]
        if len(payload) != length:
            raise WalCorruption(f"{self.path}: truncated snapshot payload")
        stored_crc = int.from_bytes(data[body : body + 4], "big")
        if zlib.crc32(payload) != stored_crc:
            raise WalCorruption(f"{self.path}: snapshot checksum mismatch")
        decoded = wire.decode(payload)
        if len(decoded) == 3:
            seq, contents, meta = decoded
        else:
            (seq, contents), meta = decoded, {}
        return int(seq), dict(contents), dict(meta)

    def __repr__(self) -> str:
        return f"SnapshotStore({self.directory!r})"
