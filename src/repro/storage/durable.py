"""Durable replica stores: a dict that write-ahead-logs every mutation.

The KVS choreographies mutate replica stores through ordinary dict
operations — ``state[key] = value`` in ``update_state``, ``clear()`` +
``update()`` in ``resynch``, ``pop()`` in ``add_shard``'s migration.
:class:`DurableState` subclasses :class:`dict` and intercepts exactly those
mutators, so wiring persistence into the cluster changes *no protocol call
site*: the choreography code keeps treating state as a plain mapping while
every acknowledged mutation hits the WAL first (write-ahead) and the
in-memory store second.

Layout on disk, one directory per replica::

    <root>/<shard_id>/<replica>/
        snapshot.bin    # latest checkpoint: (seq, full contents)
        wal.bin         # mutations since that checkpoint

Opening the directory *is* crash recovery: load the snapshot, replay the
WAL suffix (records with ``seq`` greater than the snapshot's), and the
store holds exactly the acknowledged state at the moment of death — minus
whatever tail the configured fsync policy was allowed to lose.  Once the
WAL accumulates ``snapshot_every`` records the store checkpoints itself
(snapshot + WAL reset), bounding both file size and restart time.

The module-level helpers (:func:`high_water_of`, :func:`delta_since`,
:func:`apply_catchup`) are the bridge the ``kvs_catchup`` choreography uses:
they degrade gracefully to plain dicts (no durability → no delta, full
transfer) so the same choreography serves durable and ephemeral clusters.

Two-phase commit (``kvs_txn_prepare`` / ``kvs_txn_decide``) adds two more
WAL record kinds.  A *prepare* parks a transaction's write set as an
**intent** in the store's in-doubt table without touching the items; a
*decide* resolves it — commit applies the writes atomically (one record,
however many keys), abort just drops the intent.  Both are replayed on
restart, so a crashed participant recovers its prepared-but-undecided
transactions and the cluster layer can resolve them against the
coordinator's durable decision record.  :class:`EphemeralState` gives
non-durable clusters the same intent table minus the disk.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .snapshot import SnapshotStore
from .wal import FSYNC_POLICIES, WalRecord, WriteAheadLog

#: The WAL file's name inside a replica's storage directory.
WAL_FILENAME = "wal.bin"

#: A prepared-transaction intent is presumed aborted — its coordinator died
#: before deciding — once this many *later* prepare attempts have touched the
#: store.  The clock is the count of prepare records (grants and refusals
#: both log one), so expiry is a pure function of the WAL stream and replays
#: identically on every replica and across restarts.
TXN_INTENT_TTL = 16


@dataclass(frozen=True)
class Durability:
    """Cluster-level persistence configuration.

    Args:
        root: Directory under which every replica gets
            ``<root>/<shard_id>/<replica>/``.
        fsync: WAL fsync policy, one of
            :data:`~repro.storage.wal.FSYNC_POLICIES`.
        snapshot_every: Checkpoint after this many WAL records; the knob
            trades write amplification against restart replay time.
    """

    root: str
    fsync: str = "batch"
    snapshot_every: int = 256

    def __post_init__(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {self.fsync!r}"
            )
        if self.snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")

    def state_dir(self, shard_id: str, replica: str) -> str:
        """The storage directory for one replica of one shard."""
        return os.path.join(os.fspath(self.root), shard_id, replica)

    def open_state(self, shard_id: str, replica: str) -> "DurableState":
        """Open (and recover) the durable store for ``replica``."""
        return DurableState(
            self.state_dir(shard_id, replica),
            fsync=self.fsync,
            snapshot_every=self.snapshot_every,
        )


class DurableState(dict):
    """A ``Dict[str, str]`` whose mutations are write-ahead logged.

    Construction performs recovery: snapshot load, then WAL-suffix replay.
    :attr:`replayed_records` reports how many WAL records the replay
    applied — the number a restart surfaces as its recovery work.

    Mutations are logged *before* they land in memory; read paths
    (``__getitem__``, ``items``, ``len``, iteration…) are inherited
    untouched, so the choreographies' read-mostly traffic pays nothing.
    """

    def __init__(
        self,
        directory: "str | os.PathLike",
        *,
        fsync: str = "batch",
        snapshot_every: int = 256,
    ):
        super().__init__()
        self.directory = os.fspath(directory)
        self.snapshot_every = int(snapshot_every)
        self.snapshots = SnapshotStore(self.directory)
        snap_seq, contents, meta = self.snapshots.load_with_meta()
        self.shard_epoch = int(meta.get("epoch", 0))
        self.promoted_head: Optional[str] = meta.get("head")
        #: In-doubt transactions: ``txn_id -> {"writes": {key: value-or-None},
        #: "tick": int}`` — prepared but not yet decided.  Carried through
        #: snapshots (like the epoch) and rebuilt by WAL replay, so a crashed
        #: participant reopens with its prepared state intact.
        self.txns: Dict[str, Dict[str, Any]] = {
            txn_id: {"writes": dict(entry["writes"]), "tick": int(entry["tick"])}
            for txn_id, entry in meta.get("txns", {}).items()
        }
        #: The intent clock: how many prepare attempts this store has seen.
        self.txn_tick = int(meta.get("txn_tick", 0))
        dict.update(self, contents)
        self.wal = WriteAheadLog(
            os.path.join(self.directory, WAL_FILENAME), fsync=fsync
        )
        # A fresh WAL (reset after the snapshot, or torn back to empty) has
        # forgotten the snapshot's sequence number; appends must continue
        # after it, not restart from 1.
        if self.wal.last_seq < snap_seq:
            self.wal.last_seq = snap_seq
        self._snapshot_seq = snap_seq
        replayed = 0
        for seq, op in self.wal.records(since=snap_seq):
            self._apply_raw(op)
            replayed += 1
        self.replayed_records = replayed

    # ------------------------------------------------------------------ recovery --

    def _apply_raw(self, op: Tuple[Any, ...]) -> None:
        """Apply a WAL op to memory only (replay path: already logged)."""
        kind = op[0]
        if kind == "put":
            dict.__setitem__(self, op[1], op[2])
        elif kind == "del":
            dict.pop(self, op[1], None)
        elif kind == "clear":
            dict.clear(self)
        elif kind == "seal":
            pass  # sequence-number jump only; no state change
        elif kind == "promote":
            # ("promote", epoch, head): primary failover fence.  No item
            # mutation — it records which replica owns the shard from which
            # epoch on, so recovery reopens the correct head.  Epochs are
            # monotone; a stale record (delta replay of old history) loses.
            if int(op[1]) > self.shard_epoch:
                self.shard_epoch = int(op[1])
                self.promoted_head = op[2]
        elif kind == "txn_prepare":
            # ("txn_prepare", txn_id, writes, granted): two-phase commit,
            # phase one.  Every attempt — granted or refused — advances the
            # intent clock, and intents older than TXN_INTENT_TTL later
            # attempts are presumed aborted and dropped; a granted attempt
            # then parks its write set as this store's intent.  No item is
            # touched until the decide.
            self.txn_tick += 1
            horizon = self.txn_tick - TXN_INTENT_TTL
            for stale in [t for t, e in self.txns.items() if e["tick"] <= horizon]:
                del self.txns[stale]
            if op[3]:
                self.txns[op[1]] = {"writes": dict(op[2]), "tick": self.txn_tick}
        elif kind == "txn_decide":
            # ("txn_decide", txn_id, verdict, writes): phase two.  Commit
            # applies the write set atomically — one record, however many
            # keys — and the record carries the writes itself, so a replica
            # that never saw the prepare (a full-transfer rejoiner, an
            # already-expired intent) still lands the commit.  Abort just
            # drops the intent.
            entry = self.txns.pop(op[1], None)
            if op[2] == "commit":
                writes = dict(op[3]) or dict((entry or {}).get("writes", {}))
                for key, value in writes.items():
                    if value is None:
                        dict.pop(self, key, None)
                    else:
                        dict.__setitem__(self, key, value)
        else:
            raise ValueError(f"unknown WAL op kind {kind!r}")

    @property
    def high_water(self) -> int:
        """The last logged sequence number (what a rejoiner reports)."""
        return self.wal.last_seq

    def _meta(self) -> Dict[str, Any]:
        """The non-item metadata a snapshot must carry to survive WAL resets."""
        meta: Dict[str, Any] = {}
        if self.shard_epoch:
            meta["epoch"] = self.shard_epoch
            meta["head"] = self.promoted_head
        if self.txn_tick:
            meta["txn_tick"] = self.txn_tick
        if self.txns:
            meta["txns"] = {
                txn_id: {"writes": dict(entry["writes"]), "tick": entry["tick"]}
                for txn_id, entry in self.txns.items()
            }
        return meta

    # ------------------------------------------------------------------ mutators --

    def _log(self, op: Tuple[Any, ...]) -> None:
        self.wal.append(op)

    def __setitem__(self, key: str, value: str) -> None:
        self._log(("put", key, value))
        dict.__setitem__(self, key, value)
        self._maybe_snapshot()

    def __delitem__(self, key: str) -> None:
        if key not in self:
            raise KeyError(key)
        self._log(("del", key))
        dict.__delitem__(self, key)
        self._maybe_snapshot()

    def pop(self, key: str, *default: Any) -> Any:
        if key in self:
            self._log(("del", key))
            value = dict.pop(self, key)
            self._maybe_snapshot()
            return value
        if default:
            return default[0]
        raise KeyError(key)

    def popitem(self) -> Tuple[str, str]:
        if not self:
            raise KeyError("popitem(): dictionary is empty")
        key = next(reversed(self))
        self._log(("del", key))
        item = (key, dict.pop(self, key))
        self._maybe_snapshot()
        return item

    def clear(self) -> None:
        self._log(("clear",))
        dict.clear(self)
        self._maybe_snapshot()

    def update(self, *args: Any, **kwargs: str) -> None:
        for key, value in dict(*args, **kwargs).items():
            self[key] = value

    def setdefault(self, key: str, default: str = None) -> str:  # type: ignore[assignment]
        if key in self:
            return self[key]
        self[key] = default
        return default

    # ------------------------------------------------------------- checkpointing --

    def _maybe_snapshot(self) -> None:
        if self.wal.record_count >= self.snapshot_every:
            self.snapshot()

    def snapshot(self) -> int:
        """Checkpoint now: persist the full store, reset the WAL.

        Returns the sequence number the snapshot covers.
        """
        seq = self.wal.last_seq
        self.snapshots.save(seq, dict(self), meta=self._meta())
        self.wal.reset(seq)
        self._snapshot_seq = seq
        return seq

    # ------------------------------------------------------------------ catch-up --

    def ops_since(self, since: int) -> Optional[List[WalRecord]]:
        """The WAL records after ``since``, or ``None`` if compacted away.

        ``None`` means a snapshot has folded some of the requested range
        into itself — the caller (the catch-up primary) must fall back to a
        full transfer.
        """
        if since < self._snapshot_seq:
            return None
        return list(self.wal.records(since))

    def apply_record(self, seq: int, op: Tuple[Any, ...]) -> None:
        """Log-and-apply one record from a catch-up delta, preserving ``seq``.

        Records at or below the local high-water mark are skipped (the
        replay already covered them), keeping delta application idempotent.
        """
        if seq <= self.wal.last_seq:
            return
        self.wal.append(op, seq=seq)
        self._apply_raw(op)
        self._maybe_snapshot()

    def seal(self, target_seq: int) -> None:
        """Jump the sequence counter to ``target_seq`` (no state change)."""
        if target_seq > self.wal.last_seq:
            self.wal.append(("seal",), seq=target_seq)
            self._maybe_snapshot()

    def log_promotion(self, epoch: int, head: str) -> None:
        """Durably record that ``head`` owns this shard from ``epoch`` on.

        Written to every surviving replica's WAL at promotion time (and to a
        rejoiner's after catch-up), so a cluster restart recovers the
        promoted head instead of falling back to census order.  Idempotent:
        a stale or repeated epoch is a no-op, matching the monotone-epoch
        fence the cluster layer enforces in memory.
        """
        if int(epoch) <= self.shard_epoch:
            return
        op = ("promote", int(epoch), str(head))
        self._log(op)
        self._apply_raw(op)
        self._maybe_snapshot()

    def log_txn_prepare(
        self,
        txn_id: str,
        writes: Dict[str, Optional[str]],
        *,
        granted: bool = True,
    ) -> None:
        """Durably record one two-phase-commit prepare attempt.

        A granted prepare parks ``writes`` (``key -> value``, ``None`` for a
        delete) as this store's intent for ``txn_id``; later conflicting
        prepares vote no until the decide arrives.  A refusal
        (``granted=False``) parks nothing but still logs the attempt, so the
        intent clock — and with it the presumed-abort expiry of abandoned
        intents — replays identically from the WAL.
        """
        op = ("txn_prepare", str(txn_id), dict(writes), bool(granted))
        self._log(op)
        self._apply_raw(op)
        self._maybe_snapshot()

    def log_txn_decide(
        self,
        txn_id: str,
        verdict: str,
        writes: Optional[Dict[str, Optional[str]]] = None,
    ) -> None:
        """Durably resolve a prepared transaction: ``"commit"`` or ``"abort"``.

        Commit applies the write set atomically (the whole set rides in one
        WAL record) and is idempotent — values are absolute, so a replayed
        decide re-applies to the same result.  The record carries ``writes``
        explicitly so a replica whose intent is missing (full-transfer
        rejoin, expired intent) still lands the commit.  Abort drops the
        intent; deciding an unknown transaction is a no-op beyond the
        record.
        """
        op = ("txn_decide", str(txn_id), str(verdict), dict(writes or {}))
        self._log(op)
        self._apply_raw(op)
        self._maybe_snapshot()

    def install(self, contents: Dict[str, str], seq: int) -> None:
        """Replace the whole store (full catch-up transfer) at ``seq``.

        Installs via an immediate snapshot rather than a logged ``clear`` +
        N ``put`` records: one atomic rename instead of N WAL appends, and
        the sequence counter lands exactly on the primary's.
        """
        dict.clear(self)
        dict.update(self, contents)
        self.snapshots.save(seq, dict(self), meta=self._meta())
        self.wal.reset(seq)
        self._snapshot_seq = seq

    # ----------------------------------------------------------------- lifecycle --

    def sync(self) -> None:
        """Force the WAL to stable storage (policy permitting)."""
        self.wal.sync()

    def close(self) -> None:
        """Flush and close the WAL.  Idempotent; the store stays readable."""
        self.wal.close()

    def __repr__(self) -> str:
        return (
            f"DurableState({self.directory!r}, entries={len(self)}, "
            f"high_water={self.high_water})"
        )


class EphemeralState(dict):
    """An in-memory replica store with the transaction surface of durable ones.

    Non-durable clusters still need two-phase commit: an in-doubt intent
    table, the intent clock, and the prepare/decide transitions — everything
    :class:`DurableState` does minus the WAL.  The cluster opens one of
    these per ephemeral replica so the KVS transaction choreographies run
    unchanged against both store kinds; a plain ``dict`` (no ``txns``
    attribute) degrades to conflict-blind prepares and is only suitable for
    the non-transactional choreographies.
    """

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        #: In-doubt transactions, same shape as :attr:`DurableState.txns`.
        self.txns: Dict[str, Dict[str, Any]] = {}
        #: The intent clock (prepare attempts seen).
        self.txn_tick = 0

    def log_txn_prepare(
        self,
        txn_id: str,
        writes: Dict[str, Optional[str]],
        *,
        granted: bool = True,
    ) -> None:
        """Record one prepare attempt (see :meth:`DurableState.log_txn_prepare`)."""
        self.txn_tick += 1
        horizon = self.txn_tick - TXN_INTENT_TTL
        for stale in [t for t, e in self.txns.items() if e["tick"] <= horizon]:
            del self.txns[stale]
        if granted:
            self.txns[str(txn_id)] = {"writes": dict(writes), "tick": self.txn_tick}

    def log_txn_decide(
        self,
        txn_id: str,
        verdict: str,
        writes: Optional[Dict[str, Optional[str]]] = None,
    ) -> None:
        """Resolve a prepared transaction (see :meth:`DurableState.log_txn_decide`)."""
        entry = self.txns.pop(str(txn_id), None)
        if verdict == "commit":
            pending = dict(writes or {}) or dict((entry or {}).get("writes", {}))
            for key, value in pending.items():
                if value is None:
                    self.pop(key, None)
                else:
                    self[key] = value


# ---------------------------------------------------------------- catch-up bridge --


def txns_of(state: Dict[str, str]) -> Dict[str, Dict[str, Any]]:
    """A store's in-doubt transaction table (an empty view for plain dicts).

    The table maps ``txn_id`` to ``{"writes": {key: value-or-None},
    "tick": int}``.  Both :class:`DurableState` and :class:`EphemeralState`
    expose one; a plain ``dict`` has none, so callers see no intents and a
    prepare against it cannot detect conflicts.
    """
    return getattr(state, "txns", {})


def high_water_of(state: Dict[str, str]) -> int:
    """A store's replayed high-water mark; 0 for a plain (ephemeral) dict."""
    return state.high_water if isinstance(state, DurableState) else 0


def promotion_of(state: Dict[str, str]) -> Tuple[int, Optional[str]]:
    """A store's recovered ``(shard_epoch, promoted_head)``.

    ``(0, None)`` for ephemeral dicts and for durable stores that never saw
    a promotion — census order then decides the head, as before failover
    existed.
    """
    if isinstance(state, DurableState):
        return state.shard_epoch, state.promoted_head
    return 0, None


def delta_since(
    state: Dict[str, str], since: int
) -> Optional[List[WalRecord]]:
    """The mutation records after ``since``, or ``None`` if unavailable.

    ``None`` (ephemeral store, or the range was compacted into a snapshot)
    tells the catch-up primary to send a full transfer instead.
    """
    if isinstance(state, DurableState):
        return state.ops_since(since)
    return None


def apply_op(store: Dict[str, str], op: Tuple[Any, ...]) -> None:
    """Apply one catch-up op through a store's ordinary mutators."""
    kind = op[0]
    if kind == "put":
        store[op[1]] = op[2]
    elif kind == "del":
        store.pop(op[1], None)
    elif kind == "clear":
        store.clear()
    elif kind == "seal":
        pass
    elif kind == "promote":
        # Epoch fencing lives in the cluster layer; an ephemeral store has
        # nothing durable to stamp, so a promote record in a replayed delta
        # is inert here (DurableState handles it in _apply_raw).
        pass
    elif kind == "txn_prepare":
        log = getattr(store, "log_txn_prepare", None)
        if log is not None:
            log(op[1], op[2], granted=op[3])
    elif kind == "txn_decide":
        log = getattr(store, "log_txn_decide", None)
        if log is not None:
            log(op[1], op[2], op[3])
        elif op[2] == "commit":
            # A plain dict tracks no intents; the decide record is
            # self-contained, so the committed writes still land.
            for key, value in dict(op[3]).items():
                if value is None:
                    store.pop(key, None)
                else:
                    store[key] = value
    else:
        raise ValueError(f"unknown catch-up op kind {kind!r}")


def apply_catchup(
    state: Dict[str, str],
    mode: str,
    data: Any,
    target_seq: int,
) -> int:
    """Apply a catch-up transfer to ``state``; returns records applied.

    ``mode`` is ``"delta"`` (``data`` is a list of ``(seq, op)`` records)
    or ``"full"`` (``data`` is the primary's complete store).  Durable
    stores preserve the primary's sequence numbering (explicit-seq appends
    for deltas, an atomic :meth:`DurableState.install` for full transfers);
    plain dicts just mutate.
    """
    if mode == "full":
        contents = dict(data)
        if isinstance(state, DurableState):
            state.install(contents, target_seq)
        else:
            state.clear()
            state.update(contents)
        return len(contents)
    if mode != "delta":
        raise ValueError(f"unknown catch-up mode {mode!r}")
    applied = 0
    if isinstance(state, DurableState):
        for seq, op in data:
            state.apply_record(int(seq), tuple(op))
            applied += 1
        state.seal(target_seq)
    else:
        for _seq, op in data:
            apply_op(state, tuple(op))
            applied += 1
    return applied
