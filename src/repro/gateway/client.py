"""A small blocking client for the gateway's wire protocol.

:class:`GatewayClient` is what the tests and the load-generator benchmark
speak through: it owns one TCP connection, encodes commands in array form,
and parses reply frames incrementally.  The surface mirrors
:class:`~repro.cluster.ClusterClient` where it can (``put``/``get``/
``delete``/``scan``/``batch``) plus the gateway-only control commands
(``ping``/``health``/``stats``).

Two calling styles:

* **blocking** — each method sends one command and waits for its reply;
  a structured error frame raises :class:`GatewayError` carrying the
  stable ``code`` and ``retryable`` flag.  With ``retries=n`` the client
  resends a command up to ``n`` extra times when the frame says
  ``retryable`` (``BUSY``, ``REBALANCING``, ``TIMEOUT``, ``FAILOVER``,
  ...), sleeping a bounded, jittered backoff between attempts — enough to
  ride out an admission-control shed or a shard's failover window without
  caller-side loops.
* **pipelined** — ``send(...)`` fires a command without waiting and
  ``drain(n)`` collects ``n`` raw replies in order.  The benchmark uses
  this to keep many commands in flight per connection, which is exactly
  the shape the server's per-connection in-flight budget paces.  Raw
  pipelining bypasses the retry layer: error frames stay frames.
"""

from __future__ import annotations

import random
import socket
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..protocols.kvs import Request, RequestKind
from .protocol import (
    ArrayReply,
    BulkReply,
    ErrorReply,
    ProtocolError,
    Reply,
    SimpleReply,
    encode_command,
    parse_reply,
)

_RECV_SIZE = 65536

#: Retry backoff shape: base * 2**attempt seconds, capped, times a jitter
#: factor in [0.5, 1.5) — small enough to keep tests fast, spread enough to
#: avoid thundering-herd resends against a recovering shard.
_BACKOFF_BASE = 0.02
_BACKOFF_CAP = 0.25


class GatewayError(Exception):
    """A structured error frame, re-raised client-side.

    Attributes:
        code: The stable ``ERR_*`` code (``BUSY``, ``TIMEOUT``, ...).
        detail: The machine-readable detail mapping from the frame.
    """

    def __init__(self, reply: ErrorReply):
        super().__init__(f"[{reply.code}] {reply.message}")
        self.code = reply.code
        self.message = reply.message
        self.detail: Dict[str, Any] = dict(reply.detail)

    @property
    def retryable(self) -> bool:
        """Whether resending the same command later can succeed."""
        return bool(self.detail.get("retryable", False))


class GatewayClient:
    """One TCP connection to a :class:`~repro.gateway.server.GatewayServer`.

    Args:
        host: Gateway host.
        port: Gateway port.
        timeout: Socket timeout in seconds for connect and receive; ``None``
            blocks forever.
        retries: Extra attempts for a blocking command answered with a
            *retryable* error frame (see :data:`~repro.gateway.protocol.
            RETRYABLE_CODES`).  ``0`` — the default — surfaces the first
            error; non-retryable frames always surface immediately.

    Usable as a context manager; ``close()`` is idempotent.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: Optional[float] = 10.0,
        retries: int = 0,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries!r}")
        self.retries = retries
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._buffer = bytearray()
        self._start = 0
        self._closed = False
        self._rng = random.Random()

    # ------------------------------------------------------------ raw pipeline --

    def send(self, *args: str) -> None:
        """Fire one command (array form) without waiting for its reply."""
        self.sock.sendall(encode_command(args))

    def recv_reply(self) -> Reply:
        """Block until the next reply frame arrives, and return it raw."""
        while True:
            reply, self._start = parse_reply(bytes(self._buffer), self._start)
            if reply is not None:
                if self._start:
                    del self._buffer[: self._start]
                    self._start = 0
                return reply
            chunk = self.sock.recv(_RECV_SIZE)
            if not chunk:
                raise ConnectionError("gateway closed the connection")
            self._buffer.extend(chunk)

    def drain(self, count: int) -> List[Reply]:
        """Collect ``count`` raw replies, in order.  Errors stay frames."""
        return [self.recv_reply() for _ in range(count)]

    def call(self, *args: str) -> Reply:
        """Send one command and wait for its reply, raising on error frames.

        Retryable error frames are resent up to ``self.retries`` extra
        times with jittered exponential backoff; the last error raises.
        """
        attempt = 0
        while True:
            self.send(*args)
            reply = self.recv_reply()
            if not isinstance(reply, ErrorReply):
                return reply
            error = GatewayError(reply)
            if not error.retryable or attempt >= self.retries:
                raise error
            pause = min(_BACKOFF_CAP, _BACKOFF_BASE * (2**attempt))
            time.sleep(pause * (0.5 + self._rng.random()))
            attempt += 1

    # --------------------------------------------------------- blocking surface --

    def ping(self, token: Optional[str] = None) -> str:
        """Round-trip liveness check; echoes ``token`` when given."""
        reply = self.call("PING", token) if token is not None else self.call("PING")
        if isinstance(reply, SimpleReply):
            return reply.text
        if isinstance(reply, BulkReply) and reply.value is not None:
            return reply.value
        raise ProtocolError(f"unexpected PING reply: {reply!r}")

    def put(self, key: str, value: str) -> Optional[str]:
        """Store ``value`` under ``key``; return the previous value, if any."""
        return self._bulk(self.call("PUT", key, value))

    def get(self, key: str) -> Optional[str]:
        """Read ``key``; ``None`` when unbound."""
        return self._bulk(self.call("GET", key))

    def delete(self, key: str) -> Optional[str]:
        """Unbind ``key``; return the value it held, if any."""
        return self._bulk(self.call("DEL", key))

    def scan(self, prefix: str = "") -> List[Tuple[str, str]]:
        """All bindings under ``prefix``, sorted by key."""
        reply = self.call("SCAN", prefix) if prefix else self.call("SCAN")
        if not isinstance(reply, ArrayReply):
            raise ProtocolError(f"unexpected SCAN reply: {reply!r}")
        items: List[Tuple[str, str]] = []
        for pair in reply.items:
            if (
                not isinstance(pair, ArrayReply)
                or len(pair.items) != 2
                or not all(isinstance(part, BulkReply) for part in pair.items)
            ):
                raise ProtocolError(f"unexpected SCAN item: {pair!r}")
            key_part, value_part = pair.items
            items.append((key_part.value or "", value_part.value or ""))
        return items

    def batch(self, requests: Sequence[Request]) -> List[Optional[str]]:
        """Serve a mixed Put/Get/Del batch; one value-or-None per request."""
        args: List[str] = ["BATCH"]
        for request in requests:
            if request.kind is RequestKind.PUT:
                args.extend(("PUT", request.key, request.value or ""))
            elif request.kind is RequestKind.GET:
                args.extend(("GET", request.key))
            elif request.kind is RequestKind.DELETE:
                args.extend(("DEL", request.key))
            else:
                raise ValueError(f"cannot send {request.kind!r} through BATCH")
        reply = self.call(*args)
        if not isinstance(reply, ArrayReply):
            raise ProtocolError(f"unexpected BATCH reply: {reply!r}")
        return [self._bulk(item) for item in reply.items]

    def txn(self, requests: Sequence[Request]) -> str:
        """Commit a write-only set atomically across shards; return its txn id.

        Encodes ``requests`` as one ``MULTI (PUT k v | DEL k)+ EXEC`` frame;
        the gateway maps it onto a cross-shard two-phase commit.  Either
        every write applies or the server answers a retryable ``ABORTED``
        error frame and nothing was applied — in which case :meth:`call`'s
        ``retries=`` backoff (if enabled) resubmits the whole write set as a
        fresh transaction, which is safe precisely because an abort leaves
        no state behind.

        Raises:
            GatewayError: With ``code == "ABORTED"`` when the transaction
                lost a conflict (or a participant failed) on the final
                attempt.
            ValueError: On a read request — ``MULTI`` is write-only.
        """
        args: List[str] = ["MULTI"]
        for request in requests:
            if request.kind is RequestKind.PUT:
                args.extend(("PUT", request.key, request.value or ""))
            elif request.kind is RequestKind.DELETE:
                args.extend(("DEL", request.key))
            else:
                raise ValueError(f"cannot send {request.kind!r} through MULTI")
        args.append("EXEC")
        reply = self.call(*args)
        txn_id = self._bulk(reply)
        if txn_id is None:
            raise ProtocolError(f"unexpected MULTI reply: {reply!r}")
        return txn_id

    def health(self) -> Dict[str, Any]:
        """The gateway's per-shard health snapshot, decoded from JSON."""
        return self._json(self.call("HEALTH"))

    def stats(self) -> Dict[str, Any]:
        """Gateway counters plus cluster load, decoded from JSON."""
        return self._json(self.call("STATS"))

    # ------------------------------------------------------------------ plumbing --

    @staticmethod
    def _bulk(reply: Reply) -> Optional[str]:
        if isinstance(reply, BulkReply):
            return reply.value
        if isinstance(reply, SimpleReply):
            return reply.text
        raise ProtocolError(f"expected a bulk reply, got {reply!r}")

    @staticmethod
    def _json(reply: Reply) -> Dict[str, Any]:
        import json

        if not isinstance(reply, BulkReply) or reply.value is None:
            raise ProtocolError(f"expected a JSON bulk reply, got {reply!r}")
        return json.loads(reply.value)

    def close(self) -> None:
        """Idempotently close the connection."""
        if self._closed:
            return
        self._closed = True
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
