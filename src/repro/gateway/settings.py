"""Gateway configuration: one frozen dataclass, env-overridable.

:class:`GatewaySettings` gathers every operational knob of the gateway —
bind address, connection and in-flight caps, the admission high-water mark,
drain timeout — in one place with safe defaults, and
:meth:`GatewaySettings.from_env` builds one from ``GATEWAY_*`` environment
variables so deployments configure the server without code changes::

    GATEWAY_PORT=7400 GATEWAY_MAX_CONNECTIONS=256 python -m ...

Every field is validated at construction; a nonsensical value (negative
cap, zero in-flight budget) fails fast with :class:`ValueError` rather than
producing a server that accepts no work.
"""

from __future__ import annotations

import dataclasses
import os
import typing
from dataclasses import dataclass
from typing import Mapping, Optional

#: Environment-variable prefix for :meth:`GatewaySettings.from_env`.
ENV_PREFIX = "GATEWAY_"


@dataclass(frozen=True)
class GatewaySettings:
    """Operational knobs for :class:`~repro.gateway.server.GatewayServer`.

    Attributes:
        host: Interface to bind; loopback by default.
        port: TCP port; ``0`` asks the OS for an ephemeral port (the bound
            port is readable from ``server.address`` after start).
        max_connections: Hard cap on simultaneously accepted connections.
            The cap-plus-first excess connection is answered with a
            ``MAXCONN`` error and closed immediately.
        max_inflight_per_conn: Per-connection budget of commands submitted
            to the cluster but not yet answered.  When a client pipelines
            past it, the gateway simply stops reading that connection's
            socket — TCP flow control pushes back on the sender — rather
            than erroring.  This is the *backpressure* mechanism.
        admission_high_water: Cluster-wide in-flight threshold
            (:attr:`~repro.cluster.ClusterEngine.pending`) above which new
            data-plane commands are *shed* with a retryable ``BUSY`` error
            instead of queued.  This is the *admission control* mechanism:
            past saturation the gateway answers fast and poorly rather than
            slowly and catastrophically.  Control-plane commands (``PING``,
            ``HEALTH``, ``STATS``) are always admitted.
        admission_low_water: Once shedding has begun, the gateway keeps
            shedding until ``pending`` drops back *below or to* this mark —
            a hysteresis band that prevents admit/shed flapping when load
            hovers at the high-water mark.  ``0`` (the default) derives the
            mark as half the high-water mark; an explicit value must sit in
            ``1..admission_high_water``.
        drain_timeout: Seconds a graceful ``close()`` waits for in-flight
            commands to finish before abandoning them.
        accept_backlog: ``listen()`` backlog for the accept socket.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_connections: int = 128
    max_inflight_per_conn: int = 32
    admission_high_water: int = 512
    admission_low_water: int = 0
    drain_timeout: float = 5.0
    accept_backlog: int = 128

    def __post_init__(self) -> None:
        if self.port < 0 or self.port > 65535:
            raise ValueError(f"port must be in 0..65535, got {self.port!r}")
        if self.max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {self.max_connections!r}"
            )
        if self.max_inflight_per_conn < 1:
            raise ValueError(
                "max_inflight_per_conn must be >= 1, "
                f"got {self.max_inflight_per_conn!r}"
            )
        if self.admission_high_water < 1:
            raise ValueError(
                f"admission_high_water must be >= 1, got {self.admission_high_water!r}"
            )
        if self.admission_low_water < 0:
            raise ValueError(
                f"admission_low_water must be >= 0, got {self.admission_low_water!r}"
            )
        if self.admission_low_water > self.admission_high_water:
            raise ValueError(
                "admission_low_water must not exceed admission_high_water, "
                f"got {self.admission_low_water!r} > {self.admission_high_water!r}"
            )
        if self.drain_timeout < 0:
            raise ValueError(f"drain_timeout must be >= 0, got {self.drain_timeout!r}")
        if self.accept_backlog < 1:
            raise ValueError(f"accept_backlog must be >= 1, got {self.accept_backlog!r}")

    @property
    def low_water(self) -> int:
        """The re-admission mark: explicit, or half the high-water mark."""
        return self.admission_low_water or max(1, self.admission_high_water // 2)

    @classmethod
    def from_env(
        cls, env: Optional[Mapping[str, str]] = None, **overrides: object
    ) -> "GatewaySettings":
        """Build settings from ``GATEWAY_*`` environment variables.

        Each field reads ``GATEWAY_<FIELD_UPPERCASED>`` (``GATEWAY_PORT``,
        ``GATEWAY_MAX_INFLIGHT_PER_CONN``, ...), falling back to the
        dataclass default.  Explicit ``overrides`` win over the
        environment.

        Args:
            env: Environment mapping; ``os.environ`` when omitted.
            **overrides: Field values that take precedence over ``env``.

        Raises:
            ValueError: An env value that does not parse as the field's
                type, an unknown override, or an invalid resulting config.
        """
        if env is None:
            env = os.environ
        # ``dataclasses.fields(cls)[i].type`` is a *string* under
        # ``from __future__ import annotations``; resolve the actual types
        # once instead of string-matching annotation spellings (which silently
        # passed raw strings through for anything but the exact spellings
        # ``"int"``/``"float"``).
        try:
            hints = typing.get_type_hints(cls)
        except Exception as exc:
            raise ValueError(
                f"could not resolve {cls.__name__} field annotations: {exc}"
            ) from exc
        parsers = {str: str, int: int, float: float}
        values: dict = {}
        for f in dataclasses.fields(cls):
            hint = hints[f.name]
            parse = parsers.get(hint)
            if parse is None:
                raise ValueError(
                    f"field {f.name!r} has unsupported annotation {hint!r} for "
                    "from_env; supported types are str, int, and float"
                )
            raw = env.get(ENV_PREFIX + f.name.upper())
            if raw is None:
                continue
            try:
                values[f.name] = parse(raw)
            except ValueError:
                raise ValueError(
                    f"{ENV_PREFIX}{f.name.upper()}={raw!r} is not a valid "
                    f"{hint.__name__}"
                ) from None
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(overrides) - known
        if unknown:
            raise ValueError(f"unknown settings override(s): {sorted(unknown)}")
        values.update(overrides)
        return cls(**values)
