"""The gateway's RESP-like wire protocol: framing, commands, replies, errors.

The gateway speaks a deliberately small, Redis-flavoured text protocol over
TCP.  Everything on the wire is a *frame* terminated by CRLF (a bare LF is
tolerated on input, never emitted):

**Requests** arrive in either of two encodings:

* *array form* (what :class:`~repro.gateway.client.GatewayClient` always
  sends) — an argument-count header followed by one length-prefixed bulk
  string per argument::

      *3\r\n$3\r\nPUT\r\n$4\r\nuser\r\n$3\r\nada\r\n

* *inline form* (for humans with ``nc``) — one whitespace-separated line::

      PUT user ada\r\n

**Replies** are typed by their first byte:

===========  =======================================  =====================
first byte   frame                                    meaning
===========  =======================================  =====================
``+``        ``+OK\r\n``                              simple string
``$``        ``$3\r\nada\r\n`` / ``$-1\r\n``          bulk string / null
``:``        ``:42\r\n``                              integer
``*``        ``*2\r\n`` + two reply frames            array (nested)
``-``        ``-{"code": ..., "message": ...}\r\n``   structured error
===========  =======================================  =====================

Errors are *machine readable*: the payload after ``-`` is a single-line JSON
object ``{"code": ..., "message": ..., "detail": {...}}`` whose ``code`` is
one of the stable ``ERR_*`` constants below and whose ``detail`` always
carries a boolean ``retryable`` telling the client whether backing off and
resending the same command can succeed.  :func:`reply_for_exception` maps the
cluster's typed failures (:class:`~repro.core.errors.ChoreoTimeout`,
:class:`~repro.cluster.ClusterClosed`,
:class:`~repro.cluster.ClusterRebalancing`, ...) onto those codes so a
network client sees the same structured failure taxonomy an in-process
:class:`~repro.cluster.ClusterClient` caller does.

Parsing is **incremental**: :func:`parse_command` and :func:`parse_reply`
take ``(buffer, start)`` and return ``(parsed, new_start)`` — or
``(None, start)`` when the buffer does not yet hold a complete frame — so
the socket loops can append received bytes and re-try without ever blocking
mid-frame.  Malformed input raises :class:`ProtocolError`; its ``fatal``
flag separates "this connection's stream is unparseable, hang up" (bad
framing, oversize frames) from "this command was wrong, answer
``BADREQUEST`` and keep reading" (bad arity, unknown verb), which the server
distinguishes via :exc:`CommandError`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.errors import ChoreographyRuntimeError, ChoreoTimeout
from ..cluster.engine import ClusterClosed, ClusterRebalancing, TxnAborted, TxnConflict
from ..faults import CrashFault
from ..protocols.kvs import Request, Response, ResponseKind, StaleEpoch

CRLF = b"\r\n"

# Frame limits.  A stream that exceeds them is hostile or corrupt; the
# parser raises a *fatal* ProtocolError and the server hangs up.
MAX_BULK = 1 << 20  #: largest single argument / bulk payload, in bytes
MAX_ARGS = 1024  #: most arguments in one array-form command
MAX_INLINE = 1 << 16  #: longest inline-form line, in bytes

# --------------------------------------------------------------- error codes --

ERR_BADREQUEST = "BADREQUEST"  #: malformed command (unknown verb, bad arity)
ERR_TOOBIG = "TOOBIG"  #: a frame limit was exceeded (connection is closed)
ERR_BUSY = "BUSY"  #: admission control shed the command; back off and retry
ERR_MAXCONN = "MAXCONN"  #: connection limit reached; the gateway hangs up
ERR_DRAINING = "DRAINING"  #: gateway is shutting down; retry elsewhere/later
ERR_TIMEOUT = "TIMEOUT"  #: the shard run timed out (ChoreoTimeout root cause)
ERR_UNAVAILABLE = "UNAVAILABLE"  #: the cluster is closed
ERR_REBALANCING = "REBALANCING"  #: control-plane op owns the cluster; retry
ERR_FAILOVER = "FAILOVER"  #: a replica crashed / epoch moved; the shard is failing over
ERR_FAILED = "FAILED"  #: the shard choreography failed (replica loss, no successor)
ERR_ABORTED = "ABORTED"  #: a MULTI..EXEC transaction aborted; nothing was applied
ERR_INTERNAL = "INTERNAL"  #: unexpected gateway-side exception

#: Codes for which resending the same command later can succeed.  ``ABORTED``
#: is retryable in the 2PC sense: the transaction applied *nothing*, so
#: re-submitting the same write set as a fresh transaction is always safe
#: (though a client holding ``expects``-style guards should re-read first).
RETRYABLE_CODES = frozenset(
    {
        ERR_BUSY,
        ERR_MAXCONN,
        ERR_DRAINING,
        ERR_TIMEOUT,
        ERR_REBALANCING,
        ERR_FAILOVER,
        ERR_ABORTED,
    }
)


class ProtocolError(Exception):
    """The byte stream violated the wire protocol.

    Args:
        message: What was malformed.
        fatal: ``True`` when the *stream* can no longer be parsed (framing
            damage, oversize frame) and the connection must close; ``False``
            when only the current command was bad and the connection can
            answer ``BADREQUEST`` and continue.
        code: The ``ERR_*`` code the server answers with before acting on
            ``fatal``.
    """

    def __init__(self, message: str, *, fatal: bool = True, code: str = ERR_BADREQUEST):
        super().__init__(message)
        self.fatal = fatal
        self.code = code


class CommandError(ProtocolError):
    """A well-framed command that cannot be executed (non-fatal).

    Carries the ``ERR_*`` code the server should answer with; the connection
    stays open.
    """

    def __init__(self, message: str, *, code: str = ERR_BADREQUEST):
        super().__init__(message, fatal=False, code=code)


# ------------------------------------------------------------------ commands --

#: Verbs that touch the data plane and are subject to admission control.
DATA_VERBS = frozenset({"GET", "PUT", "DEL", "BATCH", "SCAN", "MULTI"})
#: Control-plane verbs, always admitted (health checks must work under load).
CONTROL_VERBS = frozenset({"PING", "HEALTH", "STATS"})
ALL_VERBS = DATA_VERBS | CONTROL_VERBS


@dataclass(frozen=True)
class Command:
    """A parsed gateway command: a verb plus its (already validated) args."""

    verb: str
    args: Tuple[str, ...] = ()

    @property
    def is_data_plane(self) -> bool:
        """Whether this command consumes cluster capacity (vs. control)."""
        return self.verb in DATA_VERBS

    def batch_requests(self) -> List[Request]:
        """The KVS :class:`Request` list encoded in a ``BATCH`` command.

        ``BATCH`` args are a flat sequence of sub-commands::

            BATCH PUT k1 v1 GET k2 DEL k3

        Raises:
            CommandError: If this is not a BATCH or the tail is malformed.
        """
        if self.verb != "BATCH":
            raise CommandError(f"not a BATCH command: {self.verb}")
        requests: List[Request] = []
        args = list(self.args)
        index = 0
        while index < len(args):
            sub = args[index].upper()
            if sub == "PUT":
                if index + 2 >= len(args):
                    raise CommandError("BATCH PUT needs a key and a value")
                requests.append(Request.put(args[index + 1], args[index + 2]))
                index += 3
            elif sub == "GET":
                if index + 1 >= len(args):
                    raise CommandError("BATCH GET needs a key")
                requests.append(Request.get(args[index + 1]))
                index += 2
            elif sub == "DEL":
                if index + 1 >= len(args):
                    raise CommandError("BATCH DEL needs a key")
                requests.append(Request.delete(args[index + 1]))
                index += 2
            else:
                raise CommandError(f"unknown BATCH sub-command: {args[index]!r}")
        if not requests:
            raise CommandError("BATCH needs at least one sub-command")
        return requests

    def txn_requests(self) -> List[Request]:
        """The write set encoded in a ``MULTI .. EXEC`` command.

        The grammar is the write-only subset of ``BATCH``, closed by a
        literal ``EXEC``::

            MULTI (PUT key value | DEL key)+ EXEC

        The whole command arrives as one frame (there is no open
        transaction state on the connection); the gateway maps it onto one
        cross-shard two-phase commit
        (:meth:`~repro.cluster.ClusterEngine.submit_txn`) — every write
        applies atomically, or the client gets a retryable ``ABORTED``
        error frame and nothing was applied.

        Raises:
            CommandError: Not a MULTI, a read sub-command, a missing
                ``EXEC`` terminator, or a malformed tail.
        """
        if self.verb != "MULTI":
            raise CommandError(f"not a MULTI command: {self.verb}")
        args = list(self.args)
        if not args or args[-1].upper() != "EXEC":
            raise CommandError("MULTI must end with EXEC")
        body = args[:-1]
        requests: List[Request] = []
        index = 0
        while index < len(body):
            sub = body[index].upper()
            if sub == "PUT":
                if index + 2 >= len(body):
                    raise CommandError("MULTI PUT needs a key and a value")
                requests.append(Request.put(body[index + 1], body[index + 2]))
                index += 3
            elif sub == "DEL":
                if index + 1 >= len(body):
                    raise CommandError("MULTI DEL needs a key")
                requests.append(Request.delete(body[index + 1]))
                index += 2
            elif sub in ("GET", "SCAN"):
                raise CommandError(f"MULTI is write-only; {sub} is not allowed")
            else:
                raise CommandError(f"unknown MULTI sub-command: {body[index]!r}")
        if not requests:
            raise CommandError("MULTI needs at least one write before EXEC")
        return requests


#: verb -> (min_args, max_args); None = unbounded.
_ARITY: Dict[str, Tuple[int, Optional[int]]] = {
    "PING": (0, 1),
    "GET": (1, 1),
    "PUT": (2, 2),
    "DEL": (1, 1),
    "SCAN": (0, 1),
    "BATCH": (2, None),
    "MULTI": (3, None),
    "HEALTH": (0, 0),
    "STATS": (0, 0),
}


def command_from_args(args: Sequence[str]) -> Command:
    """Validate a decoded argument vector into a :class:`Command`.

    Raises:
        CommandError: Empty vector, unknown verb, or wrong arity — all
            non-fatal (answer ``BADREQUEST``, keep the connection).
    """
    if not args:
        raise CommandError("empty command")
    verb = args[0].upper()
    if verb not in ALL_VERBS:
        raise CommandError(f"unknown command: {args[0]!r}")
    low, high = _ARITY[verb]
    rest = tuple(args[1:])
    if len(rest) < low or (high is not None and len(rest) > high):
        expected = f"{low}" if high == low else f"{low}..{'*' if high is None else high}"
        raise CommandError(
            f"{verb} takes {expected} argument(s), got {len(rest)}"
        )
    command = Command(verb, rest)
    if verb == "BATCH":
        command.batch_requests()  # validate the tail now, not at execution
    elif verb == "MULTI":
        command.txn_requests()
    return command


# ------------------------------------------------------------------- replies --


@dataclass(frozen=True)
class SimpleReply:
    """``+text`` — a short status string (``+OK``, ``+PONG``)."""

    text: str


@dataclass(frozen=True)
class BulkReply:
    """``$len`` — one value, or the null bulk (``$-1``) for an absent one."""

    value: Optional[str]


@dataclass(frozen=True)
class IntReply:
    """``:n`` — an integer."""

    value: int


@dataclass(frozen=True)
class ArrayReply:
    """``*n`` — a sequence of nested replies."""

    items: Tuple["Reply", ...]


@dataclass(frozen=True)
class ErrorReply:
    """``-{json}`` — a structured error.

    ``detail`` always includes ``retryable`` (bool); see
    :data:`RETRYABLE_CODES`.
    """

    code: str
    message: str
    detail: Mapping[str, object] = field(default_factory=dict)

    @property
    def retryable(self) -> bool:
        return bool(self.detail.get("retryable", False))


Reply = Union[SimpleReply, BulkReply, IntReply, ArrayReply, ErrorReply]

OK = SimpleReply("OK")
PONG = SimpleReply("PONG")


def error_reply(code: str, message: str, **detail: object) -> ErrorReply:
    """Build an :class:`ErrorReply`, stamping ``retryable`` into the detail."""
    detail.setdefault("retryable", code in RETRYABLE_CODES)
    return ErrorReply(code=code, message=message, detail=detail)


def reply_for_exception(exc: BaseException) -> ErrorReply:
    """Map a cluster/gateway exception onto the stable error-code schema.

    The taxonomy the gateway promises its clients:

    * :class:`~repro.cluster.ClusterClosed` → ``UNAVAILABLE``
    * :class:`~repro.cluster.ClusterRebalancing` → ``REBALANCING``
    * :class:`~repro.core.errors.ChoreoTimeout` (bare or as the root cause
      of a :class:`~repro.core.errors.ChoreographyRuntimeError`) →
      ``TIMEOUT`` with ``waiter``/``peer``/``seconds`` in the detail
    * a :class:`ChoreographyRuntimeError` rooted in a
      :class:`~repro.protocols.kvs.StaleEpoch` fence or a replica
      :class:`~repro.faults.CrashFault` → retryable ``FAILOVER`` (the shard
      is promoting a new head; resending after backoff lands on it)
    * any other :class:`ChoreographyRuntimeError` → ``FAILED`` with the
      blamed ``location`` and original error type
    * :class:`~repro.cluster.TxnConflict` / :class:`~repro.cluster.TxnAborted`
      → retryable ``ABORTED`` with the transaction id (and the conflicting
      ``keys``, for a conflict) in the detail; nothing was applied, so a
      fresh attempt is safe
    * :class:`CommandError` → its own code (``BADREQUEST`` by default)
    * anything else → ``INTERNAL``
    """
    if isinstance(exc, TxnConflict):
        return error_reply(
            ERR_ABORTED, str(exc), txn_id=exc.txn_id, keys=list(exc.keys)
        )
    if isinstance(exc, TxnAborted):
        return error_reply(ERR_ABORTED, str(exc), txn_id=exc.txn_id)
    if isinstance(exc, ClusterClosed):
        return error_reply(ERR_UNAVAILABLE, str(exc))
    if isinstance(exc, ClusterRebalancing):
        return error_reply(ERR_REBALANCING, str(exc))
    if isinstance(exc, ChoreoTimeout):
        return error_reply(
            ERR_TIMEOUT, str(exc), waiter=exc.waiter, peer=exc.peer, seconds=exc.seconds
        )
    if isinstance(exc, ChoreographyRuntimeError):
        root = exc.original
        failures = getattr(exc, "failures", None) or {exc.location: root}
        for location, failure in failures.items():
            if isinstance(failure, StaleEpoch):
                return error_reply(
                    ERR_FAILOVER,
                    str(failure),
                    location=location,
                    bound_epoch=failure.bound_epoch,
                    current_epoch=failure.current_epoch,
                )
        for location, failure in failures.items():
            if isinstance(failure, CrashFault):
                return error_reply(
                    ERR_FAILOVER,
                    f"replica {location!r} crashed; the shard is failing over",
                    location=location,
                    error=type(failure).__name__,
                )
        if isinstance(root, ChoreoTimeout):
            return error_reply(
                ERR_TIMEOUT,
                str(root),
                location=exc.location,
                waiter=root.waiter,
                peer=root.peer,
                seconds=root.seconds,
            )
        return error_reply(
            ERR_FAILED,
            str(root) or type(root).__name__,
            location=exc.location,
            error=type(root).__name__,
        )
    if isinstance(exc, CommandError):
        return error_reply(exc.code, str(exc))
    return error_reply(ERR_INTERNAL, str(exc) or type(exc).__name__, error=type(exc).__name__)


def reply_for_response(response: Response) -> Reply:
    """Render a KVS :class:`Response` as a wire reply.

    ``Found`` → bulk value; ``NotFound`` → null bulk; anything else (the
    batch sentinel ``Stopped``) → its kind as a simple string.
    """
    if response.kind is ResponseKind.FOUND:
        return BulkReply(response.value)
    if response.kind is ResponseKind.NOT_FOUND:
        return BulkReply(None)
    return SimpleReply(response.kind.value.upper())


# ------------------------------------------------------------------ encoding --


def _bulk(payload: bytes) -> bytes:
    return b"$%d\r\n%s\r\n" % (len(payload), payload)


def encode_command(args: Sequence[str]) -> bytes:
    """Encode an argument vector in array form (what the client sends)."""
    if not args:
        raise ProtocolError("cannot encode an empty command")
    parts = [b"*%d\r\n" % len(args)]
    parts.extend(_bulk(arg.encode("utf-8")) for arg in args)
    return b"".join(parts)


def encode_reply(reply: Reply) -> bytes:
    """Encode any :class:`Reply` variant as its wire frame."""
    if isinstance(reply, SimpleReply):
        return b"+%s\r\n" % reply.text.encode("utf-8")
    if isinstance(reply, BulkReply):
        if reply.value is None:
            return b"$-1\r\n"
        return _bulk(reply.value.encode("utf-8"))
    if isinstance(reply, IntReply):
        return b":%d\r\n" % reply.value
    if isinstance(reply, ArrayReply):
        parts = [b"*%d\r\n" % len(reply.items)]
        parts.extend(encode_reply(item) for item in reply.items)
        return b"".join(parts)
    if isinstance(reply, ErrorReply):
        payload = json.dumps(
            {"code": reply.code, "message": reply.message, "detail": dict(reply.detail)},
            separators=(",", ":"),
        )
        return b"-%s\r\n" % payload.encode("utf-8")
    raise ProtocolError(f"cannot encode reply: {reply!r}")


# ------------------------------------------------------------------- parsing --


def _find_line(buffer: bytes, start: int, limit: int) -> Tuple[Optional[bytes], int]:
    """One LF-terminated line from ``buffer[start:]``, sans terminator.

    Returns ``(None, start)`` when no full line has arrived yet; raises a
    fatal :class:`ProtocolError` when the unterminated prefix already
    exceeds ``limit``.
    """
    end = buffer.find(b"\n", start)
    if end == -1:
        if len(buffer) - start > limit:
            raise ProtocolError(
                f"line exceeds {limit} bytes without a terminator",
                fatal=True,
                code=ERR_TOOBIG,
            )
        return None, start
    if end - start > limit:
        raise ProtocolError(f"line exceeds {limit} bytes", fatal=True, code=ERR_TOOBIG)
    line = buffer[start:end]
    if line.endswith(b"\r"):
        line = line[:-1]
    return line, end + 1


def _parse_int(token: bytes, what: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise ProtocolError(f"bad {what}: {token!r}", fatal=True) from None


#: In-band marker for the null bulk (``$-1``): distinguishes "parsed a null"
#: from "frame incomplete" (plain ``None``) in the incremental parsers.
_NULL_SENTINEL = "\0__NULL__"


def _parse_bulk(buffer: bytes, start: int) -> Tuple[Optional[str], int]:
    """One ``$``-prefixed bulk string.  ``(None, start)`` = incomplete."""
    header, pos = _find_line(buffer, start, MAX_INLINE)
    if header is None:
        return None, start
    if not header.startswith(b"$"):
        raise ProtocolError(f"expected bulk header, got {header!r}", fatal=True)
    length = _parse_int(header[1:], "bulk length")
    if length == -1:
        return _NULL_SENTINEL, pos
    if length < 0 or length > MAX_BULK:
        raise ProtocolError(
            f"bulk length {length} out of range", fatal=True, code=ERR_TOOBIG
        )
    if len(buffer) - pos < length + 1:  # payload + at least the LF
        return None, start
    payload = buffer[pos : pos + length]
    tail = buffer[pos + length : pos + length + 2]
    if tail.startswith(b"\r\n"):
        consumed = pos + length + 2
    elif tail.startswith(b"\n"):
        consumed = pos + length + 1
    elif tail == b"\r":  # terminator only half-arrived: wait for the LF
        return None, start
    else:
        raise ProtocolError("bulk payload not followed by CRLF", fatal=True)
    try:
        return payload.decode("utf-8"), consumed
    except UnicodeDecodeError:
        raise ProtocolError("bulk payload is not valid UTF-8", fatal=True) from None


def parse_command(buffer: bytes, start: int = 0) -> Tuple[Optional[List[str]], int]:
    """One command's argument vector from ``buffer[start:]``, incrementally.

    Accepts both array form (``*``-prefixed) and inline form (anything
    else).  Blank inline lines are skipped.  Returns ``(args, new_start)``,
    or ``(None, start)`` when the buffer holds no complete command yet.

    Raises:
        ProtocolError: Fatal framing damage (bad headers, oversize frames,
            non-UTF-8 payloads).
    """
    while True:
        if start >= len(buffer):
            return None, start
        if buffer[start : start + 1] != b"*":
            line, pos = _find_line(buffer, start, MAX_INLINE)
            if line is None:
                return None, start
            try:
                text = line.decode("utf-8")
            except UnicodeDecodeError:
                raise ProtocolError("inline command is not valid UTF-8", fatal=True) from None
            args = text.split()
            if not args:  # blank line: tolerate and keep scanning
                start = pos
                continue
            return args, pos
        header, pos = _find_line(buffer, start, MAX_INLINE)
        if header is None:
            return None, start
        count = _parse_int(header[1:], "argument count")
        if count <= 0 or count > MAX_ARGS:
            raise ProtocolError(
                f"argument count {count} out of range", fatal=True, code=ERR_TOOBIG
            )
        args = []
        for _ in range(count):
            arg, pos = _parse_bulk(buffer, pos)
            if arg is None:
                return None, start
            if arg == _NULL_SENTINEL:
                raise ProtocolError("null bulk not allowed in commands", fatal=True)
            args.append(arg)
        return args, pos


def parse_reply(buffer: bytes, start: int = 0) -> Tuple[Optional[Reply], int]:
    """One reply frame from ``buffer[start:]``, incrementally.

    Returns ``(reply, new_start)`` or ``(None, start)`` when incomplete.

    Raises:
        ProtocolError: Fatal framing damage.
    """
    if start >= len(buffer):
        return None, start
    kind = buffer[start : start + 1]
    if kind == b"$":
        value, pos = _parse_bulk(buffer, start)
        if value is None:
            return None, start
        if value == _NULL_SENTINEL:
            return BulkReply(None), pos
        return BulkReply(value), pos
    line, pos = _find_line(buffer, start, MAX_INLINE)
    if line is None:
        return None, start
    if kind == b"+":
        return SimpleReply(line[1:].decode("utf-8")), pos
    if kind == b":":
        return IntReply(_parse_int(line[1:], "integer reply")), pos
    if kind == b"-":
        try:
            payload = json.loads(line[1:].decode("utf-8"))
            return (
                ErrorReply(
                    code=str(payload["code"]),
                    message=str(payload["message"]),
                    detail=dict(payload.get("detail", {})),
                ),
                pos,
            )
        except (ValueError, KeyError, TypeError):
            raise ProtocolError(f"malformed error payload: {line!r}", fatal=True) from None
    if kind == b"*":
        count = _parse_int(line[1:], "array length")
        if count < 0 or count > MAX_ARGS:
            raise ProtocolError(f"array length {count} out of range", fatal=True)
        items: List[Reply] = []
        for _ in range(count):
            item, pos = parse_reply(buffer, pos)
            if item is None:
                return None, start
            items.append(item)
        return ArrayReply(tuple(items)), pos
    raise ProtocolError(f"unknown reply type byte: {kind!r}", fatal=True)
