"""The network front door: a TCP gateway over the sharded cluster.

Everything below this package sits *in process*: choreographies, warm
engines, the sharded :class:`~repro.cluster.ClusterEngine`, the
:class:`~repro.cluster.ClusterClient` facade.  This package puts a wire on
the front:

* :mod:`~repro.gateway.protocol` — a RESP-like framing (array-of-bulk
  requests, typed replies, single-line JSON error frames with stable
  ``code``/``message``/``detail`` schema) with incremental parsers;
* :class:`~repro.gateway.settings.GatewaySettings` — env-overridable
  operational knobs (``GATEWAY_PORT=...``, caps, high-water marks);
* :class:`~repro.gateway.server.GatewayServer` — the threaded accept loop
  with per-connection **backpressure** (an in-flight budget enforced via
  TCP flow control) and cluster-wide **admission control** (retryable
  ``BUSY`` shedding past the ``pending`` high-water mark, sticky until
  load falls back to the low-water mark), plus graceful drain-then-close;
* :class:`~repro.gateway.client.GatewayClient` — the blocking/pipelined
  client the tests and ``benchmarks/bench_gateway.py`` drive load through,
  with opt-in ``retries=`` backoff on retryable error frames.

Cross-shard transactions ride the same wire: ``MULTI (PUT k v | DEL k)+
EXEC`` arrives as one frame, maps onto one
:meth:`~repro.cluster.ClusterEngine.submit_txn` two-phase commit, and
answers either the transaction id or a retryable ``ABORTED`` error frame
(nothing was applied; resubmitting is safe).

See ``docs/gateway.md`` for the wire grammar, the error-code table, and a
saturation walkthrough.
"""

from .client import GatewayClient, GatewayError
from .protocol import (
    ERR_ABORTED,
    ERR_BADREQUEST,
    ERR_BUSY,
    ERR_DRAINING,
    ERR_FAILED,
    ERR_FAILOVER,
    ERR_INTERNAL,
    ERR_MAXCONN,
    ERR_REBALANCING,
    ERR_TIMEOUT,
    ERR_TOOBIG,
    ERR_UNAVAILABLE,
    RETRYABLE_CODES,
    ArrayReply,
    BulkReply,
    Command,
    CommandError,
    ErrorReply,
    IntReply,
    ProtocolError,
    Reply,
    SimpleReply,
    command_from_args,
    encode_command,
    encode_reply,
    error_reply,
    parse_command,
    parse_reply,
    reply_for_exception,
    reply_for_response,
)
from .server import GatewayServer
from .settings import GatewaySettings

__all__ = [
    "ERR_ABORTED",
    "ERR_BADREQUEST",
    "ERR_BUSY",
    "ERR_DRAINING",
    "ERR_FAILED",
    "ERR_FAILOVER",
    "ERR_INTERNAL",
    "ERR_MAXCONN",
    "ERR_REBALANCING",
    "ERR_TIMEOUT",
    "ERR_TOOBIG",
    "ERR_UNAVAILABLE",
    "RETRYABLE_CODES",
    "ArrayReply",
    "BulkReply",
    "Command",
    "CommandError",
    "ErrorReply",
    "GatewayClient",
    "GatewayError",
    "GatewayServer",
    "GatewaySettings",
    "IntReply",
    "ProtocolError",
    "Reply",
    "SimpleReply",
    "command_from_args",
    "encode_command",
    "encode_reply",
    "error_reply",
    "parse_command",
    "parse_reply",
    "reply_for_exception",
    "reply_for_response",
]
