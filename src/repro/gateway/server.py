"""The gateway server: TCP front door over a :class:`ClusterClient`.

:class:`GatewayServer` turns the in-process cluster API into a network
service.  The threading model mirrors the cluster's own pipelined shape:

* one **accept thread** admits connections (or answers ``MAXCONN`` and
  hangs up past ``max_connections``);
* per connection, one **reader thread** parses commands incrementally off
  the socket and *submits* them to the cluster without waiting — a
  pipelining client keeps every shard busy from a single connection;
* per connection, one **writer thread** drains a FIFO queue of pending
  replies, waiting each cluster Future in submission order, so replies are
  delivered in request order no matter how shard runs interleave.

Two distinct overload defenses, deliberately separated:

* **Backpressure** (per connection): the reader acquires a slot from a
  semaphore of ``max_inflight_per_conn`` before each data-plane submit.
  When a client pipelines past its budget the reader blocks — it stops
  draining the socket, the kernel's receive window fills, and TCP pushes
  back on the sender.  No error, no drop; the client is just paced.
* **Admission control** (cluster-wide): when the cluster's total in-flight
  load (:attr:`ClusterEngine.pending`) climbs above
  ``admission_high_water``, new data-plane commands are answered with a
  retryable ``BUSY`` error *immediately*, without touching the cluster —
  and shedding is *sticky*: it continues until load falls back to the
  ``low_water`` mark, a hysteresis band that keeps the gateway from
  flapping between admit and shed when load hovers at the threshold.
  Past saturation the gateway sheds load fast instead of queueing without
  bound; control-plane commands (``PING``/``HEALTH``/``STATS``) are always
  admitted so operators can still see in.

``close()`` is a graceful drain: stop accepting, answer ``DRAINING`` to
new data-plane commands, wait up to ``drain_timeout`` seconds for
in-flight replies to flush, then tear the sockets down.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from queue import Empty, Queue
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..cluster.client import ClusterClient
from .protocol import (
    ERR_BUSY,
    ERR_DRAINING,
    ERR_MAXCONN,
    PONG,
    ArrayReply,
    BulkReply,
    Command,
    CommandError,
    ProtocolError,
    Reply,
    command_from_args,
    encode_reply,
    error_reply,
    parse_command,
    reply_for_exception,
    reply_for_response,
)
from .settings import GatewaySettings

_RECV_SIZE = 65536
#: Writer-queue poll interval; bounds how long shutdown waits on an idle queue.
_QUEUE_POLL = 0.1

#: A queued reply: either ready now, or a thunk the writer resolves (waiting
#: on cluster Futures), plus whether it holds an in-flight slot to release.
_QueueItem = Tuple[Callable[[], Reply], bool]


class _Connection:
    """One accepted client socket plus its reader/writer thread pair."""

    def __init__(self, server: "GatewayServer", sock: socket.socket, peer: str):
        self.server = server
        self.sock = sock
        self.peer = peer
        self.queue: "Queue[Optional[_QueueItem]]" = Queue()
        self.inflight = threading.Semaphore(server.settings.max_inflight_per_conn)
        self.closed = threading.Event()
        self.reader = threading.Thread(
            target=self._read_loop, name=f"gw-read-{peer}", daemon=True
        )
        self.writer = threading.Thread(
            target=self._write_loop, name=f"gw-write-{peer}", daemon=True
        )

    def start(self) -> None:
        self.reader.start()
        self.writer.start()

    # ---------------------------------------------------------------- reader --

    def _read_loop(self) -> None:
        buffer = bytearray()
        start = 0
        try:
            while not self.closed.is_set():
                try:
                    chunk = self.sock.recv(_RECV_SIZE)
                except OSError:
                    break
                if not chunk:
                    break
                buffer.extend(chunk)
                while True:
                    try:
                        args, start = parse_command(bytes(buffer), start)
                    except ProtocolError as exc:
                        # Framing damage is always fatal: answer with the
                        # typed error, then hang up (the stream cursor is
                        # unrecoverable).  Per-command problems surface as
                        # CommandError inside _dispatch instead.
                        self.server._count("protocol_errors")
                        self._enqueue_ready(error_reply(exc.code, str(exc)))
                        return
                    if args is None:
                        break
                    self._dispatch(args)
                if start:
                    del buffer[:start]
                    start = 0
        finally:
            self._finish_queue()

    def _dispatch(self, args: List[str]) -> None:
        """Validate, admit, submit, and enqueue the reply for one command."""
        self.server._count("commands")
        try:
            command = command_from_args(args)
        except CommandError as exc:
            self.server._count("protocol_errors")
            self._enqueue_ready(reply_for_exception(exc))
            return
        if command.is_data_plane:
            if self.server._draining.is_set():
                self.server._count("rejected_draining")
                self._enqueue_ready(
                    error_reply(ERR_DRAINING, "gateway is shutting down")
                )
                return
            pending = self.server.client.cluster.pending
            if not self.server._admit(pending):
                self.server._count("shed_busy")
                self._enqueue_ready(
                    error_reply(
                        ERR_BUSY,
                        "cluster is saturated, retry with backoff",
                        pending=pending,
                        high_water=self.server.settings.admission_high_water,
                        low_water=self.server.settings.low_water,
                    )
                )
                return
            # Backpressure: block the reader until an in-flight slot frees.
            self.inflight.acquire()
            try:
                producer = self.server._submit(command)
            except BaseException as exc:  # noqa: BLE001 - typed reply instead
                self.inflight.release()
                self._enqueue_ready(reply_for_exception(exc))
                return
            self.server._inflight_started()
            self.queue.put((producer, True))
        else:
            self._enqueue_ready(self.server._control(command))

    def _enqueue_ready(self, reply: Reply) -> None:
        self.queue.put(((lambda: reply), False))

    def _finish_queue(self) -> None:
        self.queue.put(None)

    # ---------------------------------------------------------------- writer --

    def _write_loop(self) -> None:
        try:
            while True:
                try:
                    item = self.queue.get(timeout=_QUEUE_POLL)
                except Empty:
                    if self.closed.is_set():
                        break
                    continue
                if item is None:
                    break
                producer, holds_slot = item
                broken = False
                try:
                    try:
                        reply = producer()
                    except BaseException as exc:  # noqa: BLE001 - a frame
                        reply = reply_for_exception(exc)
                    try:
                        self.sock.sendall(encode_reply(reply))
                    except OSError:
                        broken = True
                finally:
                    # Release only after the reply bytes are on the socket:
                    # the drain in close() waits on this count, and waking
                    # it before the send lets the shutdown race the flush.
                    if holds_slot:
                        self.inflight.release()
                        self.server._inflight_done()
                if broken:
                    break
        finally:
            self.close()
            self.server._forget(self)

    def close(self) -> None:
        """Idempotently tear the socket down and wake both loops."""
        if self.closed.is_set():
            return
        self.closed.set()
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class GatewayServer:
    """A TCP gateway in front of a :class:`ClusterClient`.

    The server *borrows* the client — ``close()`` never touches the
    cluster, so one cluster can sit behind a gateway and still serve
    in-process callers and tests.

    Args:
        client: The cluster facade every data-plane command goes through.
        settings: Operational knobs; :class:`GatewaySettings` defaults
            (loopback, ephemeral port) when omitted.

    Example::

        with ClusterClient(shards=2, replication=2) as kvs:
            with GatewayServer(kvs) as server:
                host, port = server.address
                ...  # point GatewayClient (or nc) at host:port
    """

    def __init__(
        self, client: ClusterClient, settings: Optional[GatewaySettings] = None
    ):
        self.client = client
        self.settings = settings if settings is not None else GatewaySettings()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: Set[_Connection] = set()
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {
            "accepted": 0,
            "commands": 0,
            "shed_busy": 0,
            "rejected_maxconn": 0,
            "rejected_draining": 0,
            "protocol_errors": 0,
        }
        self._inflight = 0
        self._shedding = False
        self._idle = threading.Condition(self._lock)
        self._draining = threading.Event()
        self._closed = threading.Event()
        self._started = False

    # ----------------------------------------------------------------- lifecycle --

    def start(self) -> "GatewayServer":
        """Bind, listen, and spawn the accept thread.  Idempotent."""
        if self._started:
            return self
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.settings.host, self.settings.port))
        listener.listen(self.settings.accept_backlog)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="gw-accept", daemon=True
        )
        self._started = True
        self._accept_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — useful with ``port=0``."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[:2]

    def close(self) -> None:
        """Gracefully drain and stop.  Idempotent.

        Stops accepting, answers ``DRAINING`` to new data-plane commands,
        waits up to ``drain_timeout`` seconds for already-submitted
        commands to be answered, then closes every connection.
        """
        if self._closed.is_set():
            return
        self._draining.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        deadline = time.monotonic() + self.settings.drain_timeout
        with self._idle:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(remaining)
        self._closed.set()
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=1.0)

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -------------------------------------------------------------------- accept --

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closed.is_set():
            try:
                sock, addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutting down
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            peer = f"{addr[0]}:{addr[1]}"
            with self._lock:
                over_cap = len(self._connections) >= self.settings.max_connections
                if not over_cap:
                    connection = _Connection(self, sock, peer)
                    self._connections.add(connection)
                    self._counters["accepted"] += 1
            if over_cap:
                self._count("rejected_maxconn")
                try:
                    sock.sendall(
                        encode_reply(
                            error_reply(
                                ERR_MAXCONN,
                                "connection limit reached",
                                max_connections=self.settings.max_connections,
                            )
                        )
                    )
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            connection.start()

    def _forget(self, connection: _Connection) -> None:
        with self._lock:
            self._connections.discard(connection)

    # ------------------------------------------------------------------ execution --

    def _submit(self, command: Command) -> Callable[[], Reply]:
        """Submit a data-plane command now; return the reply thunk.

        Submission happens on the reader thread (so ordering across a
        connection's commands matches arrival order); the returned thunk is
        resolved by the writer thread, which is where Future waiting —
        potentially slow — belongs.
        """
        client = self.client
        if command.verb == "GET":
            future = client.get_async(command.args[0])
            return lambda: reply_for_response(future.result())
        if command.verb == "PUT":
            future = client.put_async(command.args[0], command.args[1])
            return lambda: reply_for_response(future.result())
        if command.verb == "DEL":
            future = client.delete_async(command.args[0])
            return lambda: reply_for_response(future.result())
        if command.verb == "BATCH":
            futures = client.cluster.submit_batch(command.batch_requests())

            def batch_reply() -> Reply:
                return ArrayReply(
                    tuple(reply_for_response(f.result()) for f in futures)
                )

            return batch_reply
        if command.verb == "MULTI":
            # One cross-shard 2PC; the Future raises TxnConflict/TxnAborted
            # on abort, which reply_for_exception maps to a retryable
            # ABORTED frame (the writer thread wraps the thunk).
            txn_future = client.cluster.submit_txn(command.txn_requests())

            def txn_reply() -> Reply:
                result = txn_future.result()
                return BulkReply(result.txn_id)

            return txn_reply
        if command.verb == "SCAN":
            prefix = command.args[0] if command.args else ""
            shard_futures = client.cluster.submit_scan(prefix)

            def scan_reply() -> Reply:
                items: List[Tuple[str, str]] = []
                for future in shard_futures.values():
                    items.extend(client.cluster.response_of(future.result()))
                return ArrayReply(
                    tuple(
                        ArrayReply((BulkReply(key), BulkReply(value)))
                        for key, value in sorted(items)
                    )
                )

            return scan_reply
        raise CommandError(f"unroutable command: {command.verb}")

    def _control(self, command: Command) -> Reply:
        """Answer a control-plane command inline (never touches a shard)."""
        if command.verb == "PING":
            return BulkReply(command.args[0]) if command.args else PONG
        if command.verb == "HEALTH":
            health = {
                shard_id: {
                    "primary": h.primary,
                    "replicas": dict(h.replicas),
                    "down": list(h.down),
                    "degraded": h.degraded,
                    "pending": h.pending,
                    "epoch": h.epoch,
                    "roles": dict(h.roles),
                }
                for shard_id, h in self.client.health().items()
            }
            return BulkReply(json.dumps(health, sort_keys=True))
        if command.verb == "STATS":
            return BulkReply(json.dumps(self.metrics(), sort_keys=True))
        raise CommandError(f"unroutable control command: {command.verb}")

    # ------------------------------------------------------------------- plumbing --

    def _count(self, counter: str) -> None:
        with self._lock:
            self._counters[counter] += 1

    def _admit(self, pending: int) -> bool:
        """Admission-control decision for one data-plane command.

        Sticky hysteresis: start shedding when ``pending`` climbs past the
        high-water mark, keep shedding until it falls back to the low-water
        mark.  The band prevents admit/shed flapping around the threshold.
        """
        with self._lock:
            if self._shedding:
                if pending <= self.settings.low_water:
                    self._shedding = False
            elif pending > self.settings.admission_high_water:
                self._shedding = True
            return not self._shedding

    def _inflight_started(self) -> None:
        with self._lock:
            self._inflight += 1

    def _inflight_done(self) -> None:
        with self._idle:
            self._inflight -= 1
            if self._inflight <= 0:
                self._idle.notify_all()

    def metrics(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of gateway counters and cluster load."""
        with self._lock:
            counters = dict(self._counters)
            connections = len(self._connections)
            inflight = self._inflight
            shedding = self._shedding
        stats = self.client.stats
        counters.update(
            connections=connections,
            inflight=inflight,
            shedding=shedding,
            cluster_pending=self.client.cluster.pending,
            cluster_messages=stats.total_messages,
            cluster_bytes=stats.total_bytes,
            draining=self._draining.is_set(),
        )
        return counters
