"""Replicated key-value store choreographies.

Two variants are provided, matching the paper's two presentations of the case
study:

* :func:`kvs_request` / :func:`kvs_serve` — the MultiChor version of Fig. 2:
  a client talks to a *primary* server, the primary multicasts the request to
  all the servers, the servers handle it inside a conclave (so the client is
  not bothered with their Knowledge-of-Choice traffic), writes can silently
  corrupt a replica, and a second conclave — re-using the *same* multiply-
  located request for KoC, with no additional messages — compares state hashes
  and resynchronises if needed.

* :func:`kvs_with_backups` — the ChoRus version of Appendix B: a single server
  with a parametric list of backups; Puts are replicated to the backups, whose
  acknowledgements are gathered before the server answers the client.

Both choreographies are census polymorphic: the number of servers/backups is
whatever the caller passes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.located import Faceted, Located
from ..core.locations import Census, Location, LocationsLike, as_census
from ..core.ops import ChoreoOp
from . import crypto


class RequestKind(enum.Enum):
    """The three request forms of the paper's KVS (Fig. 2, line 1)."""

    PUT = "put"
    GET = "get"
    STOP = "stop"


@dataclass(frozen=True)
class Request:
    """A client request against the replicated store."""

    kind: RequestKind
    key: Optional[str] = None
    value: Optional[str] = None

    @staticmethod
    def put(key: str, value: str) -> "Request":
        return Request(RequestKind.PUT, key, value)

    @staticmethod
    def get(key: str) -> "Request":
        return Request(RequestKind.GET, key)

    @staticmethod
    def stop() -> "Request":
        return Request(RequestKind.STOP)


class ResponseKind(enum.Enum):
    """The response forms: a found value, a miss, or the shutdown acknowledgement."""

    FOUND = "found"
    NOT_FOUND = "not_found"
    STOPPED = "stopped"


@dataclass(frozen=True)
class Response:
    """The server's answer to a request."""

    kind: ResponseKind
    value: Optional[str] = None

    @staticmethod
    def found(value: str) -> "Response":
        return Response(ResponseKind.FOUND, value)

    @staticmethod
    def not_found() -> "Response":
        return Response(ResponseKind.NOT_FOUND)

    @staticmethod
    def stopped() -> "Response":
        return Response(ResponseKind.STOPPED)


# -- local (non-choreographic) state handling ----------------------------------------

State = Dict[str, str]


def update_state(
    state: State, key: str, value: str, *, fault_rate: float = 0.0, rng=None
) -> Response:
    """Store ``value`` under ``key`` and return the previous binding.

    With probability ``fault_rate`` the wrong value is silently written — the
    paper's deliberately unreliable ``updateState`` that makes the hash-check /
    resynch phase meaningful.
    """
    previous = state.get(key)
    written = value
    if fault_rate > 0.0 and rng is not None and rng.random() < fault_rate:
        written = value + "#corrupted"
    state[key] = written
    if previous is None:
        return Response.not_found()
    return Response.found(previous)


def lookup_state(state: State, key: str) -> Response:
    """Read ``key`` from the store."""
    value = state.get(key)
    if value is None:
        return Response.not_found()
    return Response.found(value)


def hash_state(state: State) -> int:
    """A deterministic digest of a replica's contents, used to detect divergence."""
    return hash(tuple(sorted(state.items())))


def make_replica_states(op: ChoreoOp, servers: LocationsLike) -> Faceted[State]:
    """Create one empty, private store per server (the ``Faceted`` stateRefs of Fig. 2)."""
    return op.parallel(as_census(servers), lambda _server, _un: {})


# -- the Fig. 2 choreography ---------------------------------------------------------


def kvs_request(
    op: ChoreoOp,
    client: Location,
    primary: Location,
    servers: LocationsLike,
    state_refs: Faceted[State],
    request: Located[Request],
    *,
    fault_rate: float = 0.0,
    seed: int = 0,
) -> Located[Response]:
    """Serve one request against the replicated store (the ``kvs`` choreography of Fig. 2).

    The census of ``op`` must contain the client, the primary, and every
    server; the primary must be one of the servers.  Returns the response
    located at the client.
    """
    server_census = as_census(servers)
    op.census.require_member(client)
    op.census.require_subset(server_census)
    server_census.require_member(primary)

    # Client sends the request to the primary, which forwards it to all servers.
    request_at_primary = op.comm(client, primary, request)
    request_shared = op.multicast(primary, server_census, request_at_primary)

    # Phase 1 (conclave of the servers): handle the request.  The client is not
    # in this conclave, so the servers' branching costs it no messages.
    def handle(sub: ChoreoOp) -> Located[Response]:
        incoming = sub.naked(request_shared)
        if incoming.kind is RequestKind.PUT:

            def apply_put(server: Location, un) -> Response:
                rng = crypto.party_rng(seed, server, f"put|{incoming.key}")
                return update_state(
                    un(state_refs), incoming.key, incoming.value,
                    fault_rate=fault_rate, rng=rng,
                )

            responses = sub.parallel(server_census, apply_put)
            # The primary waits for an acknowledgement from every server before
            # answering the client (Fig. 2 line 28).
            sub.fanin(
                server_census,
                [primary],
                lambda server: sub.comm(
                    server, primary, sub.locally(server, lambda _un: True)
                ),
            )
            return responses.localize(primary)
        if incoming.kind is RequestKind.GET:
            return sub.locally(primary, lambda un: lookup_state(un(state_refs), incoming.key))
        return sub.locally(primary, lambda _un: Response.stopped())

    response_at_primary = op.conclave_to(server_census, [primary], handle)
    response = op.comm(primary, client, response_at_primary)

    # Phase 2 (second conclave): after the client already has its answer, the
    # servers check replica hashes and resynchronise if necessary.  Branching
    # re-uses the multiply-located request — no new KoC communication.
    def verify(sub: ChoreoOp) -> bool:
        incoming = sub.naked(request_shared)
        if incoming.kind is not RequestKind.PUT:
            return False
        digests_faceted = sub.parallel(
            server_census, lambda _server, un: hash_state(un(state_refs))
        )
        digests = sub.gather(server_census, [primary], digests_faceted)
        needs_resynch = sub.locally(
            primary, lambda un: len(set(un(digests).values())) > 1
        )
        if sub.broadcast(primary, needs_resynch):
            resynch(sub, primary, server_census, state_refs)
            return True
        return False

    op.conclave(server_census, verify)
    return response


def resynch(
    op: ChoreoOp,
    primary: Location,
    servers: LocationsLike,
    state_refs: Faceted[State],
) -> None:
    """Restore replica agreement by copying the primary's store to every server."""
    server_census = as_census(servers)
    authoritative = op.locally(primary, lambda un: dict(un(state_refs)))
    shared = op.multicast(primary, server_census, authoritative)

    def overwrite(_server: Location, un) -> None:
        replica = un(state_refs)
        replica.clear()
        replica.update(un(shared))

    op.parallel(server_census, overwrite)


def kvs_serve(
    op: ChoreoOp,
    client: Location,
    primary: Location,
    servers: LocationsLike,
    requests: Sequence[Request],
    *,
    fault_rate: float = 0.0,
    seed: int = 0,
) -> List[Response]:
    """Serve a whole session of requests, returning the client's responses.

    The request list is client data; the choreography stops early when it
    serves a ``Stop`` request.  The responses are returned as plain values at
    the client (and placeholders elsewhere).
    """
    server_census = as_census(servers)
    state_refs = make_replica_states(op, server_census)
    responses: List[Response] = []
    for index, request in enumerate(requests):
        located_request = op.locally(client, lambda _un, _r=request: _r)
        answer = kvs_request(
            op, client, primary, server_census, state_refs, located_request,
            fault_rate=fault_rate, seed=seed + index,
        )
        if answer.is_present():
            responses.append(answer.peek())
        if request.kind is RequestKind.STOP:
            break
    return responses


# -- the Appendix B (ChoRus) variant --------------------------------------------------


def kvs_with_backups(
    op: ChoreoOp,
    client: Location,
    server: Location,
    backups: LocationsLike,
    state_refs: Faceted[State],
    request: Located[Request],
) -> Located[Response]:
    """A client request against a server with a parametric list of backups.

    Mirrors Appendix B: the request travels client → server, the server and
    its backups handle it in a conclave, Put requests are replicated to every
    backup and their acknowledgements gathered before the server applies the
    write itself, and the response travels back server → client.
    """
    backup_census = as_census(backups)
    op.census.require_member(client)
    op.census.require_member(server)
    op.census.require_subset(backup_census)
    cluster = as_census([server]).union(backup_census)

    request_at_server = op.comm(client, server, request)

    def handle(sub: ChoreoOp) -> Located[Response]:
        incoming = sub.broadcast(server, request_at_server)
        if incoming.kind is RequestKind.PUT:
            outcomes = sub.parallel(
                backup_census,
                lambda _backup, un: update_state(un(state_refs), incoming.key, incoming.value),
            )
            gathered = sub.gather(backup_census, [server], outcomes)

            def finish(un) -> Response:
                acks = un(gathered)
                if all(reply.kind in (ResponseKind.FOUND, ResponseKind.NOT_FOUND)
                       for reply in acks.values()):
                    return update_state(un(state_refs), incoming.key, incoming.value)
                return Response.not_found()

            return sub.locally(server, finish)
        if incoming.kind is RequestKind.GET:
            return sub.locally(server, lambda un: lookup_state(un(state_refs), incoming.key))
        return sub.locally(server, lambda _un: Response.stopped())

    response_at_server = op.conclave_to(cluster, [server], handle)
    return op.comm(server, client, response_at_server)
